//! Edge-case and failure-injection integration tests.

use bitdecoding::baselines::DecodeSystem;
use bitdecoding::{
    AttentionConfig, BitDecoder, BitDecodingSys, DecodeShape, FlashDecoding, GpuArch, QuantScheme,
};

#[test]
fn decode_with_empty_cache_returns_zeros() {
    let dec = BitDecoder::builder(GpuArch::rtx4090())
        .attention(AttentionConfig::gqa(4, 2, 16))
        .build();
    let cache = dec.new_cache(1);
    let q = vec![vec![vec![0.5f32; 16]; 4]];
    let out = dec.decode(&q, &cache).unwrap();
    for head in &out.outputs[0] {
        for &x in head {
            assert_eq!(x, 0.0, "empty context must yield zero attention output");
        }
    }
}

#[test]
fn decode_with_residual_only_cache() {
    // Fewer tokens than one residual block: everything stays FP16.
    let dec = BitDecoder::builder(GpuArch::rtx4090())
        .attention(AttentionConfig::gqa(4, 2, 16))
        .build();
    let mut cache = dec.new_cache(1);
    let codec = dec.codec();
    let kv: Vec<Vec<f32>> = (0..7).map(|t| vec![0.1 * t as f32; 16]).collect();
    for head in 0..cache.heads() {
        cache.prefill(head, &kv, &kv, &codec).unwrap();
    }
    assert!(cache.packed_blocks(0).is_empty());
    assert_eq!(cache.residual_len(0), 7);
    let q = vec![vec![vec![0.5f32; 16]; 4]];
    let out = dec.decode(&q, &cache).unwrap();
    assert!(out.outputs[0][0].iter().any(|&x| x != 0.0));
}

#[test]
fn single_token_context() {
    let dec = BitDecoder::builder(GpuArch::a100())
        .attention(AttentionConfig::mha(2, 16))
        .build();
    let mut cache = dec.new_cache(1);
    let codec = dec.codec();
    let token = vec![0.25f32; 16];
    for head in 0..cache.heads() {
        cache.append_token(head, &token, &token, &codec).unwrap();
    }
    let q = vec![vec![vec![1.0f32; 16]; 2]];
    let out = dec.decode(&q, &cache).unwrap();
    // Attention over a single token is exactly that token's V.
    for head in &out.outputs[0] {
        for &x in head {
            assert!((x - 0.25).abs() < 1e-3);
        }
    }
}

#[test]
fn extreme_values_survive_quantization() {
    // Values at the FP16 edge must not produce NaN/Inf anywhere.
    let dec = BitDecoder::builder(GpuArch::rtx4090())
        .attention(AttentionConfig::gqa(4, 2, 16))
        .scheme(QuantScheme::kc2())
        .build();
    let mut cache = dec.new_cache(1);
    let codec = dec.codec();
    let kv: Vec<Vec<f32>> = (0..130)
        .map(|t| {
            (0..16)
                .map(|c| if (t + c) % 7 == 0 { 3000.0 } else { -0.01 })
                .collect()
        })
        .collect();
    for head in 0..cache.heads() {
        cache.prefill(head, &kv, &kv, &codec).unwrap();
    }
    let q = vec![vec![vec![0.01f32; 16]; 4]];
    let out = dec.decode(&q, &cache).unwrap();
    for head in &out.outputs[0] {
        for &x in head {
            assert!(x.is_finite(), "output must stay finite, got {x}");
        }
    }
}

#[test]
fn zero_length_shapes_price_to_launch_overhead() {
    let sys = BitDecodingSys::kc4();
    let arch = GpuArch::a100();
    let shape = DecodeShape::new(1, AttentionConfig::gqa(32, 8, 128), 1).with_residual(1);
    let lat = sys.latency_s(&shape, &arch);
    assert!(lat > 0.0 && lat < 100e-6, "tiny shape latency {lat}");
}

#[test]
fn latency_monotone_in_batch_and_length() {
    let sys = FlashDecoding::v2();
    let arch = GpuArch::h100();
    let attn = AttentionConfig::gqa(32, 8, 128);
    let mut last = 0.0;
    for len in [1024usize, 4096, 16384, 65536] {
        let t = sys.latency_s(&DecodeShape::new(4, attn, len), &arch);
        assert!(t > last, "latency must grow with context");
        last = t;
    }
    let mut last = 0.0;
    for bs in [1usize, 4, 16, 64] {
        let t = sys.latency_s(&DecodeShape::new(bs, attn, 8192), &arch);
        assert!(t > last * 0.99, "latency must not shrink with batch");
        last = t;
    }
}

#[test]
fn mqa_extreme_grouping_works() {
    // MQA with 32 query heads per single KV head: the query transform
    // fills two full 16-row MMA tiles.
    let attn = AttentionConfig::mqa(32, 32);
    let dec = BitDecoder::builder(GpuArch::h100()).attention(attn).build();
    let mut cache = dec.new_cache(1);
    let codec = dec.codec();
    let kv: Vec<Vec<f32>> = (0..150)
        .map(|t| vec![(t as f32 * 0.01).sin(); 32])
        .collect();
    cache.prefill(0, &kv, &kv, &codec).unwrap();
    let q = vec![(0..32).map(|h| vec![0.1 * (h % 5) as f32; 32]).collect()];
    let out = dec.decode(&q, &cache).unwrap();
    assert_eq!(out.outputs[0].len(), 32);
}

#[test]
fn all_archs_price_all_integer_schemes() {
    let attn = AttentionConfig::gqa(32, 8, 128);
    let shape = DecodeShape::new(8, attn, 8192).with_residual(64);
    for arch in GpuArch::all() {
        for scheme in [
            QuantScheme::kt4(),
            QuantScheme::kc4(),
            QuantScheme::kt2(),
            QuantScheme::kc2(),
        ] {
            let sys = BitDecodingSys::new(scheme);
            let lat = sys.latency_s(&shape, &arch);
            assert!(lat.is_finite() && lat > 0.0, "{} {}", arch.name, scheme);
        }
    }
}

#[test]
fn fp4_scheme_on_non_blackwell_falls_back_to_dequant() {
    // MXFP4 data on an A100 must run the SM80 dequant path, not panic.
    let sys = BitDecodingSys::new(QuantScheme::mxfp4());
    let shape = DecodeShape::new(8, AttentionConfig::gqa(32, 8, 128), 8192).with_residual(64);
    let lat = sys.latency(&shape, &GpuArch::a100());
    assert!(lat.total.is_finite());
    assert!(lat.dequant_fraction() > 0.0, "fallback must dequantize");
}
