//! Integration tests for the model-level memory behaviour and the
//! accuracy/efficiency trade-off (paper Fig. 12a OOM, Table I).

use bitdecoding::accuracy::{evaluate_scheme, longbench_proxy, FP16_LONGBENCH};
use bitdecoding::baselines::{BitDecodingSys, FlashDecoding, Kivi};
use bitdecoding::llm::{max_throughput, Engine, MemoryModel, ModelConfig, WeightPrecision};
use bitdecoding::{GpuArch, QuantScheme};

#[test]
fn kivi_oom_reproduces_fig12a() {
    let model = ModelConfig::llama31_8b();
    let mem = MemoryModel::new(&model, &GpuArch::a100(), WeightPrecision::Fp16);
    let kivi = Kivi::int4();
    let bd = BitDecodingSys::kc4();
    // 64K fits for both; 128K only for BitDecoding.
    assert!(mem.check(&model, &kivi, 1, 65536).is_ok());
    assert!(mem.check(&model, &bd, 1, 65536).is_ok());
    assert!(mem.check(&model, &kivi, 1, 131072).is_err());
    assert!(mem.check(&model, &bd, 1, 131072).is_ok());
}

#[test]
fn table1_ordering_holds() {
    // Throughput: INT2 > INT4 > FP16; accuracy proxy: FP16 ≥ INT4 > INT2.
    let model = ModelConfig::llama31_8b();
    let arch = GpuArch::a100();
    let fp16 = max_throughput(
        model,
        &FlashDecoding::v2(),
        arch.clone(),
        WeightPrecision::Fp16,
        32768,
    );
    let int4 = max_throughput(
        model,
        &BitDecodingSys::kc4(),
        arch.clone(),
        WeightPrecision::Fp16,
        32768,
    );
    let int2 = max_throughput(
        model,
        &BitDecodingSys::kc2(),
        arch,
        WeightPrecision::Fp16,
        32768,
    );
    assert!(int4.tokens_per_s > 2.0 * fp16.tokens_per_s);
    assert!(int2.tokens_per_s > int4.tokens_per_s);

    let acc4 = longbench_proxy(&evaluate_scheme(QuantScheme::kc4(), 64, 512, 2));
    let acc2 = longbench_proxy(&evaluate_scheme(QuantScheme::kc2(), 64, 512, 2));
    assert!(acc4 <= FP16_LONGBENCH);
    assert!(acc2 < acc4);
    assert!(FP16_LONGBENCH - acc4 < 0.5, "INT4 drop should be small");
}

#[test]
fn decode_latency_speedup_grows_with_context() {
    // Fig. 12a measures decode latency: the prefill is identical across
    // attention systems and would wash the ratio out.
    let model = ModelConfig::llama31_8b();
    let arch = GpuArch::a100();
    let fp16 = FlashDecoding::v2();
    let bd = BitDecodingSys::kc4();
    let mut last = 0.0;
    for len in [16384usize, 65536, 131072] {
        let base = Engine::new(model, &fp16, arch.clone()).decode_step_latency(1, len);
        let ours = Engine::new(model, &bd, arch.clone()).decode_step_latency(1, len);
        let sp = base / ours;
        assert!(sp > last, "speedup must grow with context: {sp} at {len}");
        last = sp;
    }
    assert!(last > 1.2, "128K decode speedup {last}");
}

#[test]
fn serving_across_all_models_prefers_bitdecoding() {
    let arch = GpuArch::a100();
    for model in ModelConfig::all() {
        let fp16 = max_throughput(
            model,
            &FlashDecoding::v2(),
            arch.clone(),
            WeightPrecision::Fp16,
            32768,
        );
        let bd = max_throughput(
            model,
            &BitDecodingSys::kc4().paged(true),
            arch.clone(),
            WeightPrecision::Fp16,
            32768,
        );
        assert!(
            bd.tokens_per_s > 1.8 * fp16.tokens_per_s,
            "{}: bd {} vs fp16 {}",
            model.name,
            bd.tokens_per_s,
            fp16.tokens_per_s
        );
        assert!(
            bd.batch > fp16.batch,
            "{}: larger batch must be admissible",
            model.name
        );
    }
}
