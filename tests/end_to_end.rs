//! Cross-crate integration tests: the full pipeline from numeric formats
//! through fragment-true caching to functional decoding and pricing.

use bitdecoding::core::reference_attention;
use bitdecoding::{
    AttentionConfig, BitDecoder, DecodeShape, GpuArch, OptimizationFlags, QuantScheme,
};

fn synth_kv(len: usize, dim: usize, seed: usize) -> (Vec<Vec<f32>>, Vec<Vec<f32>>) {
    let k = (0..len)
        .map(|t| {
            (0..dim)
                .map(|c| ((seed + t * dim + c) as f32 * 0.37).sin())
                .collect()
        })
        .collect();
    let v = (0..len)
        .map(|t| {
            (0..dim)
                .map(|c| ((seed + t * dim + c) as f32 * 0.53).cos())
                .collect()
        })
        .collect();
    (k, v)
}

fn synth_q(attn: &AttentionConfig, seed: usize) -> Vec<Vec<f32>> {
    (0..attn.heads_q)
        .map(|h| {
            (0..attn.head_dim)
                .map(|c| ((seed + h * attn.head_dim + c) as f32 * 0.71).sin())
                .collect()
        })
        .collect()
}

/// Functional decode matches FP32 reference attention within quantization
/// tolerance for every integer scheme, attention variant and architecture.
#[test]
fn decode_matches_reference_across_schemes_and_variants() {
    let cases = [
        (AttentionConfig::mha(4, 32), QuantScheme::kc4(), 0.05f32),
        (AttentionConfig::gqa(8, 2, 32), QuantScheme::kc4(), 0.05),
        (AttentionConfig::gqa(8, 2, 32), QuantScheme::kt4(), 0.08),
        (AttentionConfig::mqa(4, 32), QuantScheme::kc4(), 0.05),
        (AttentionConfig::gqa(8, 2, 32), QuantScheme::kc2(), 0.35),
    ];
    for arch in [GpuArch::rtx4090(), GpuArch::a100(), GpuArch::h100()] {
        for (attn, scheme, tol) in &cases {
            let dec = BitDecoder::builder(arch.clone())
                .attention(*attn)
                .scheme(*scheme)
                .build();
            let mut cache = dec.new_cache(1);
            let codec = dec.codec();
            let len = 300; // blocks + ragged residual
            let mut stored = Vec::new();
            for head in 0..cache.heads() {
                let (k, v) = synth_kv(len, attn.head_dim, head * 1000);
                cache.prefill(head, &k, &v, &codec).unwrap();
                stored.push((k, v));
            }
            let q = vec![synth_q(attn, 7)];
            let out = dec.decode(&q, &cache).unwrap();
            let gq = attn.group_factor();
            for h in 0..attn.heads_q {
                let (k, v) = &stored[h / gq];
                let reference = reference_attention(&[q[0][h].clone()], k, v, attn.scale());
                for (got, want) in out.outputs[0][h].iter().zip(&reference[0]) {
                    assert!(
                        (got - want).abs() < *tol,
                        "{} {} on {}: head {h}: {got} vs {want}",
                        attn,
                        scheme,
                        arch.name
                    );
                }
            }
        }
    }
}

/// Incremental decode: appending tokens one by one (with mid-stream block
/// flushes) gives the same answer as bulk prefill.
#[test]
fn incremental_append_equals_prefill() {
    let attn = AttentionConfig::gqa(4, 2, 32);
    let dec = BitDecoder::builder(GpuArch::rtx4090())
        .attention(attn)
        .scheme(QuantScheme::kc4())
        .build();
    let codec = dec.codec();
    let len = 200;

    let mut bulk = dec.new_cache(1);
    let mut incremental = dec.new_cache(1);
    for head in 0..bulk.heads() {
        let (k, v) = synth_kv(len, 32, head * 31);
        bulk.prefill(head, &k, &v, &codec).unwrap();
        for t in 0..len {
            incremental
                .append_token(head, &k[t], &v[t], &codec)
                .unwrap();
        }
        assert_eq!(bulk.len(head), incremental.len(head));
        assert_eq!(bulk.residual_len(head), incremental.residual_len(head));
    }
    let q = vec![synth_q(&attn, 3)];
    let a = dec.decode(&q, &bulk).unwrap();
    let b = dec.decode(&q, &incremental).unwrap();
    for (x, y) in a.outputs[0].iter().zip(&b.outputs[0]) {
        for (p, r) in x.iter().zip(y) {
            // Prefill quantizes blocks at identical boundaries, so outputs
            // must agree to FP16 noise.
            assert!((p - r).abs() < 1e-4, "{p} vs {r}");
        }
    }
}

/// The ablation matrix: every disabled optimization must cost performance,
/// and only cooperative-softmax / layout violations may cost correctness.
#[test]
fn ablations_cost_performance_not_correctness() {
    let attn = AttentionConfig::gqa(32, 8, 128);
    let shape = DecodeShape::new(8, attn, 16384).with_residual(64);
    let arch = GpuArch::rtx4090();

    let full = BitDecoder::builder(arch.clone()).attention(attn).build();
    let t_full = full.latency(&shape).total_s;

    for (name, flags) in [
        (
            "no layout induction",
            OptimizationFlags {
                layout_induction: false,
                ..OptimizationFlags::ALL
            },
        ),
        (
            "no warp parallelism",
            OptimizationFlags {
                warp_parallelism: false,
                cooperative_softmax: false,
                ..OptimizationFlags::ALL
            },
        ),
        (
            "no pipeline",
            OptimizationFlags {
                software_pipeline: false,
                ..OptimizationFlags::ALL
            },
        ),
    ] {
        let ablated = BitDecoder::builder(arch.clone())
            .attention(attn)
            .flags(flags)
            .build();
        let t = ablated.latency(&shape).total_s;
        assert!(t > t_full * 1.02, "{name}: {t} should exceed full {t_full}");
    }
}

/// Speedup-shape assertions straight from the paper's headline claims.
#[test]
fn headline_speedup_shapes_hold() {
    use bitdecoding::baselines::{speedup, BitDecodingSys, CudaOnly, FlashDecoding, Kivi};

    let gqa = AttentionConfig::gqa(32, 8, 128);
    let mha = AttentionConfig::mha(32, 128);
    let shape_gqa = DecodeShape::new(8, gqa, 8192).with_residual(64);
    let shape_mha = DecodeShape::new(8, mha, 8192).with_residual(64);

    let flash = FlashDecoding::v2();
    let bd = BitDecodingSys::kc4();

    // BitDecoding wins everywhere it runs.
    for arch in GpuArch::all() {
        let sp = speedup(&bd, &flash, &shape_gqa, &arch);
        assert!(sp > 1.5, "{}: BD speedup {sp}", arch.name);
    }

    // KIVI holds on MHA but collapses under GQA (4090).
    let ada = GpuArch::rtx4090();
    let kivi_mha = speedup(&Kivi::int4(), &flash, &shape_mha, &ada);
    let kivi_gqa = speedup(&Kivi::int4(), &flash, &shape_gqa, &ada);
    assert!(kivi_mha > 1.0 && kivi_gqa < kivi_mha * 0.75);

    // QServe beats FP16 on Ada but loses on the A100 for GQA.
    let qserve = CudaOnly::qserve();
    assert!(speedup(&qserve, &flash, &shape_gqa, &ada) > 1.0);
    assert!(speedup(&qserve, &flash, &shape_gqa, &GpuArch::a100()) < 1.0);

    // 2-bit beats 4-bit on bandwidth-starved GPUs; the gap narrows on A100.
    let kc2 = BitDecodingSys::kc2();
    let gap_ada = speedup(&kc2, &bd, &shape_gqa, &ada);
    let gap_a100 = speedup(&kc2, &bd, &shape_gqa, &GpuArch::a100());
    assert!(gap_ada > 1.0);
    assert!(gap_a100 < gap_ada);
}

/// FP4 on Blackwell: native path, no dequantization, biggest speedups.
#[test]
fn blackwell_fp4_path_is_fastest() {
    use bitdecoding::baselines::{BitDecodingSys, DecodeSystem, FlashDecoding};
    let attn = AttentionConfig::gqa(32, 8, 128);
    let shape = DecodeShape::new(32, attn, 8192).with_residual(64);
    let arch = GpuArch::rtx5090();
    let flash = FlashDecoding::v2();
    let fp4 = BitDecodingSys::new(QuantScheme::mxfp4());
    let int4 = BitDecodingSys::kc4();
    let t_flash = flash.latency_s(&shape, &arch);
    let t_fp4 = fp4.latency_s(&shape, &arch);
    let t_int4 = int4.latency_s(&shape, &arch);
    assert!(t_fp4 < t_flash / 2.5, "fp4 {t_fp4} vs flash {t_flash}");
    // Native FP4 avoids dequantization; at minimum it is competitive.
    assert!(t_fp4 < t_int4 * 1.05, "fp4 {t_fp4} vs int4 {t_int4}");
    assert!(fp4.latency(&shape, &arch).dequant_fraction() < 1e-9);
}
