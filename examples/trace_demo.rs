//! Observability end to end: a bursty over-subscribed workload served with
//! every `bd-obs` surface enabled — span tracing on the dual clock, the
//! structured JSONL event log, and request-lifecycle SLO tracking.
//!
//! The demo
//!
//! 1. serves one big early request, a shared-prompt fork cluster (a parent
//!    plus two children admitted copy-on-write off its live pages, so the
//!    scheduler forms cascade shared-prefix attention groups), and four
//!    small late arrivals through a 2-device session under `FcfsPreempt`,
//!    with [`ObsConfig::all`];
//! 2. writes the Chrome `trace_event` timeline to
//!    `target/trace_demo.trace.json` (load it at <https://ui.perfetto.dev>)
//!    and the event log to `target/trace_demo.events.jsonl`;
//! 3. asserts the three observability surfaces **reconcile exactly** with
//!    the session's own `ServeSummary`: lifecycle counts match summary
//!    counters, event-log counts match lifecycle transitions, wall `step`
//!    spans match `summary.steps`, modeled `execute` spans match
//!    `steps x devices`, wall `shared_attn` spans match the cascade group
//!    units the summary counted, the `serve.shared_attn.*` and
//!    `serve.prefix_cache.*` registry counters match the summary's
//!    group/pages-saved and radix hit/miss/bytes-reused totals, the
//!    `prefix_cache` event-log field sums match the same totals, and the
//!    TTFT p99 is finite.
//!
//! A radix-cache twin rides along: one request repeats the fork parent's
//! prompt *without* forking, so the content-addressed prefix cache adopts
//! the parent's sealed prompt pages on both devices and the counters
//! above have something nonzero to reconcile.
//!
//! Run with: `cargo run --release --example trace_demo`

use bitdecoding::core::{AttentionConfig, BitDecoder};
use bitdecoding::serve::{
    ClockDomain, FcfsPreempt, ObsConfig, Quantiles, ServeConfig, ServeSession, SynthSequence,
};
use bitdecoding::{GpuArch, Partitioning, QuantScheme};

/// (seed, prompt, gen, arrival step) — one big request that owns the pool
/// from step 0, then a burst of four small requests arriving at steps 4-10.
const REQUESTS: [(u64, usize, usize, usize); 5] = [
    (0, 320, 24, 0),
    (4, 48, 6, 4),
    (5, 48, 4, 6),
    (6, 48, 6, 8),
    (7, 48, 4, 10),
];

/// The fork cluster: a parent whose 128-token prompt (one sealed block,
/// four pages) is shared copy-on-write by two children, submitted through
/// `submit_forked_at` while the parent is live. While two or more cluster
/// members are resident, every step forms one cascade group per KV head
/// that walks the shared packed prefix pages once.
const FORK_PARENT: (u64, usize, usize, usize) = (1, 128, 10, 1);
const FORK_CHILDREN: [(u64, usize, usize); 2] = [(2, 128, 6), (3, 128, 8)];

/// The radix twin: (gen seed, prompt, gen, arrival step). Repeats the
/// fork parent's 128-token prompt as a plain `submit_at` — no fork call —
/// so admission adopts the parent's sealed prompt run straight from the
/// content-addressed prefix cache on every device.
const RADIX_TWIN: (u64, usize, usize, usize) = (9, 128, 6, 3);

/// Sums a `u64` field over every retained event-log line with the given
/// event name: the event-log half of the counter reconciliation.
fn field_sum(lines: impl Iterator<Item = impl AsRef<str>>, event: &str, key: &str) -> u64 {
    let event_needle = format!("\"event\":\"{event}\"");
    let key_needle = format!("\"{key}\":");
    let mut sum = 0;
    for line in lines {
        let line = line.as_ref();
        if !line.contains(&event_needle) {
            continue;
        }
        let start = line.find(&key_needle).expect("field present") + key_needle.len();
        let digits: String = line[start..]
            .chars()
            .take_while(char::is_ascii_digit)
            .collect();
        sum += digits.parse::<u64>().expect("u64 field");
    }
    sum
}

fn fmt_q(q: &Quantiles) -> String {
    format!(
        "n {:>3}  p50 {:>7.1}  p90 {:>7.1}  p99 {:>7.1}  max {:>7.1}",
        q.count, q.p50, q.p90, q.p99, q.max
    )
}

fn main() {
    let attn = AttentionConfig::gqa(8, 2, 64);
    let decoder = BitDecoder::builder(GpuArch::rtx4090())
        .attention(attn)
        .scheme(QuantScheme::kc4())
        .paged(true)
        .build();

    // 20 pages x 32 tokens: the big request reserves 11 pages and the fork
    // cluster 7 physical (5 parent + 1 private tail per child), so the
    // burst forces queueing and swap-out preemptions — exactly the regime
    // where TTFT/TBT/queue-wait distributions are interesting.
    let config = ServeConfig::new(20, 32, 2, 8).with_devices(2, Partitioning::HeadContiguous);
    let mut session = ServeSession::new(decoder, config)
        .with_policy(Box::new(FcfsPreempt::default()))
        .with_obs(ObsConfig::all());

    println!("=== bd-obs: span traces, event log, and SLO histograms ===\n");
    println!("pool 20 pages x 32 tokens, 2 devices, FcfsPreempt; burst of 4 + fork cluster of 3 behind 1 big\n");

    for &(seed, prompt, gen, at) in &REQUESTS {
        session
            .submit_at(at, Box::new(SynthSequence::new(attn, seed, prompt, gen)))
            .expect("request fits the pool");
    }
    let (pseed, pprompt, pgen, pat) = FORK_PARENT;
    let parent = session
        .submit_at(
            pat,
            Box::new(SynthSequence::forked(attn, pseed, pseed, pprompt, pgen)),
        )
        .expect("parent fits the pool");
    for (i, &(seed, prompt, gen)) in FORK_CHILDREN.iter().enumerate() {
        session
            .submit_forked_at(
                pat + 1 + i,
                parent,
                Box::new(SynthSequence::forked(attn, pseed, seed, prompt, gen)),
            )
            .expect("child fits the pool");
    }
    let (tseed, tprompt, tgen, tat) = RADIX_TWIN;
    session
        .submit_at(
            tat,
            Box::new(SynthSequence::forked(attn, pseed, tseed, tprompt, tgen)),
        )
        .expect("twin fits the pool");
    let submitted = REQUESTS.len() + 1 + FORK_CHILDREN.len() + 1;
    let summary = session.run_to_completion();
    let slo = &summary.slo;

    // --- lifecycle <-> summary reconciliation -------------------------
    assert_eq!(slo.submitted as usize, submitted);
    assert_eq!(slo.completed as usize, summary.completed);
    assert_eq!(slo.preemptions as usize, summary.preemptions);
    assert_eq!(slo.resumes as usize, summary.resumes);
    let gen_tokens: u64 = REQUESTS
        .iter()
        .map(|&(_, _, gen, _)| gen as u64)
        .sum::<u64>()
        + pgen as u64
        + FORK_CHILDREN
            .iter()
            .map(|&(_, _, gen)| gen as u64)
            .sum::<u64>()
        + tgen as u64;
    assert_eq!(slo.tokens, gen_tokens, "every generated token counted once");
    assert!(slo.ttft_steps.p99.is_finite(), "TTFT p99 (steps) is finite");
    assert!(slo.ttft_s.p99.is_finite(), "TTFT p99 (seconds) is finite");
    assert!(summary.preemptions > 0, "the burst forces preemptions");
    assert_eq!(summary.forks, 2, "both children admitted by CoW forking");
    assert!(summary.shared_attn_groups > 0, "the cluster formed groups");

    // --- event log <-> summary reconciliation -------------------------
    let events = session.event_log();
    assert_eq!(events.dropped(), 0, "event ring never overflowed");
    assert_eq!(events.count_event("submit_at") as usize, REQUESTS.len() + 2);
    assert_eq!(
        events.count_event("submit_forked") as usize,
        FORK_CHILDREN.len()
    );
    assert_eq!(events.count_event("complete") as usize, summary.completed);
    assert_eq!(events.count_event("preempt") as usize, summary.preemptions);
    assert_eq!(events.count_event("swap_in") as usize, summary.resumes);
    assert_eq!(events.count_event("fork_admit") as usize, summary.forks);
    let admits = events.count_event("admit")
        + events.count_event("fork_admit")
        + events.count_event("swap_in");
    assert_eq!(admits, slo.admitted + slo.resumes);
    let shared_attn_steps = events.count_event("shared_attn") as usize;
    assert!(
        shared_attn_steps >= 1 && shared_attn_steps <= summary.steps,
        "one shared_attn event per step that formed groups"
    );

    // --- metrics registry <-> summary reconciliation ------------------
    let reg = session.metrics_registry();
    assert_eq!(
        reg.counter("serve.shared_attn.groups"),
        summary.shared_attn_groups as u64,
        "registry group counter matches the summary"
    );
    assert_eq!(
        reg.counter("serve.shared_attn.pages_saved"),
        summary.prefix_pages_walked_saved as u64,
        "registry pages-saved counter matches the summary"
    );
    assert!(
        reg.counter("serve.shared_attn.sharers") >= 2 * reg.counter("serve.shared_attn.groups"),
        "every cascade group has at least two sharers"
    );

    // --- radix prefix cache: summary <-> registry <-> event log -------
    // The twin repeats the parent's prompt without forking, so it must
    // adopt the sealed prompt run from the cache on both devices.
    assert!(
        summary.prefix_cache_hits >= session.devices(),
        "the radix twin did not adopt the parent's prompt pages"
    );
    assert!(summary.prefix_pages_reused > 0);
    assert!(summary.prefix_bytes_reused > 0);
    for (counter, total) in [
        ("serve.prefix_cache.hits", summary.prefix_cache_hits),
        ("serve.prefix_cache.misses", summary.prefix_cache_misses),
        (
            "serve.prefix_cache.pages_reused",
            summary.prefix_pages_reused,
        ),
        (
            "serve.prefix_cache.bytes_reused",
            summary.prefix_bytes_reused,
        ),
        (
            "serve.prefix_cache.evicted_subtrees",
            summary.prefix_subtrees_evicted,
        ),
    ] {
        assert_eq!(
            reg.counter(counter),
            total as u64,
            "registry {counter} matches the summary"
        );
    }
    for (field, total) in [
        ("hits", summary.prefix_cache_hits),
        ("misses", summary.prefix_cache_misses),
        ("pages_reused", summary.prefix_pages_reused),
        ("bytes_reused", summary.prefix_bytes_reused),
        ("evicted_subtrees", summary.prefix_subtrees_evicted),
    ] {
        assert_eq!(
            field_sum(events.lines(), "prefix_cache", field),
            total as u64,
            "event-log prefix_cache `{field}` sums to the summary total"
        );
    }
    assert!(events.count_event("prefix_cache") >= 1);

    // --- span trace <-> summary reconciliation ------------------------
    let tracer = session.tracer();
    assert_eq!(tracer.dropped(), 0, "span ring never overflowed");
    let spans = tracer.snapshot();
    let wall_steps = spans
        .iter()
        .filter(|s| s.name == "step" && s.domain == ClockDomain::Wall)
        .count();
    assert_eq!(wall_steps, summary.steps, "one wall `step` span per step");
    let modeled_exec = spans
        .iter()
        .filter(|s| s.name == "execute" && s.domain == ClockDomain::Modeled)
        .count();
    assert_eq!(
        modeled_exec,
        summary.steps * summary.devices,
        "one modeled `execute` span per device per step"
    );
    let shared_attn_spans = spans
        .iter()
        .filter(|s| s.name == "shared_attn" && s.domain == ClockDomain::Wall)
        .count();
    assert_eq!(
        shared_attn_spans, summary.shared_attn_groups,
        "one wall `shared_attn` span per cascade group unit executed"
    );

    // --- export -------------------------------------------------------
    let out_dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("target");
    std::fs::create_dir_all(&out_dir).expect("create target dir");
    let trace_path = out_dir.join("trace_demo.trace.json");
    let events_path = out_dir.join("trace_demo.events.jsonl");
    std::fs::write(&trace_path, tracer.chrome_trace_json()).expect("write trace");
    std::fs::write(&events_path, events.to_jsonl()).expect("write event log");

    println!(
        "steps {}  completed {}/{}  preemptions {}  resumes {}  forks {}  tokens {}",
        summary.steps,
        summary.completed,
        submitted,
        summary.preemptions,
        summary.resumes,
        summary.forks,
        slo.tokens
    );
    println!(
        "cascade: {} group units over {} steps, {} prefix pages not re-walked",
        summary.shared_attn_groups, shared_attn_steps, summary.prefix_pages_walked_saved
    );
    println!(
        "radix cache: {} hits {} misses, {} pages / {} KiB adopted, {} subtrees evicted",
        summary.prefix_cache_hits,
        summary.prefix_cache_misses,
        summary.prefix_pages_reused,
        summary.prefix_bytes_reused / 1024,
        summary.prefix_subtrees_evicted,
    );
    println!("ttft  (steps)  {}", fmt_q(&slo.ttft_steps));
    println!("tbt   (steps)  {}", fmt_q(&slo.tbt_steps));
    println!("queue (steps)  {}", fmt_q(&slo.queue_wait_steps));
    println!("goodput tok/s  {}", fmt_q(&slo.goodput_tok_s));
    println!(
        "\n{} spans ({} wall `step`, {} modeled `execute`, {} wall `shared_attn`), {} log events",
        spans.len(),
        wall_steps,
        modeled_exec,
        shared_attn_spans,
        events.recorded()
    );
    println!("trace written to  {}", trace_path.display());
    println!("events written to {}", events_path.display());
    println!("open the trace at https://ui.perfetto.dev (drag and drop the file)");
    println!("\nOK: spans, events, metrics, and SLO histograms reconcile with ServeSummary");
}
