//! Quickstart: build a quantized KV cache, decode one step with
//! BitDecoding, verify the output against full-precision attention, and
//! read the latency report.
//!
//! Run with: `cargo run --release --example quickstart`

use bitdecoding::core::reference_attention;
use bitdecoding::{AttentionConfig, BitDecoder, GpuArch, QuantScheme};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A LLaMA-3-style GQA head group on an RTX 4090, 4-bit channel-wise.
    let attn = AttentionConfig::gqa(8, 2, 64);
    let dec = BitDecoder::builder(GpuArch::rtx4090())
        .attention(attn)
        .scheme(QuantScheme::kc4())
        .build();

    // Prefill 500 tokens of synthetic context into the cache. The codec is
    // the fragment-true quantizer shared by the Residual and Packing
    // kernels — the layout-induction trick of the paper.
    let mut cache = dec.new_cache(1);
    let codec = dec.codec();
    let context: Vec<Vec<f32>> = (0..500)
        .map(|t| {
            (0..64)
                .map(|c| ((t * 64 + c) as f32 * 0.37).sin())
                .collect()
        })
        .collect();
    let values: Vec<Vec<f32>> = (0..500)
        .map(|t| {
            (0..64)
                .map(|c| ((t * 64 + c) as f32 * 0.53).cos())
                .collect()
        })
        .collect();
    for head in 0..cache.heads() {
        cache.prefill(head, &context, &values, &codec)?;
    }
    println!(
        "cache: {} tokens packed in {} blocks + {} FP16 residual tokens ({} KiB total)",
        cache.len(0),
        cache.packed_blocks(0).len(),
        cache.residual_len(0),
        cache.total_bytes() / 1024,
    );

    // One decode step.
    let q: Vec<Vec<Vec<f32>>> = vec![(0..8)
        .map(|h| {
            (0..64)
                .map(|c| ((h * 64 + c) as f32 * 0.71).sin())
                .collect()
        })
        .collect()];
    let out = dec.decode(&q, &cache)?;

    // Check against FP32 attention over the original (unquantized) values.
    let mut worst = 0.0f32;
    for (q_head, out_head) in q[0].iter().zip(&out.outputs[0]) {
        let reference = reference_attention(
            std::slice::from_ref(q_head),
            &context,
            &values,
            attn.scale(),
        );
        for (got, want) in out_head.iter().zip(&reference[0]) {
            worst = worst.max((got - want).abs());
        }
    }
    println!("max |output - fp32 reference| = {worst:.4} (4-bit cache)");

    // The priced report for this step on the configured GPU.
    println!("\n{}", out.report);
    println!(
        "tensor-core utilization {:.1}%, dequant share {:.1}%",
        out.report.tc_utilization() * 100.0,
        out.report.dequant_fraction() * 100.0
    );
    Ok(())
}
