//! Tensor-parallel decode end to end: six concurrent sequences decode
//! with their KV heads sharded across **four simulated devices**, each
//! with its own page arena and pinned worker group; per-head softmax
//! partials merge through the exact all-reduce, and every emitted token
//! stream is verified **bitwise** against both a single-device session and
//! the per-sequence contiguous `BitDecoder::decode` path.
//!
//! Run with: `cargo run --release --example shard_demo`

use bitdecoding::core::{AttentionConfig, BitDecoder};
use bitdecoding::kvcache::Partitioning;
use bitdecoding::serve::{replay_contiguous, ServeConfig, ServeSession, SynthSequence};
use bitdecoding::{GpuArch, QuantScheme};

fn main() {
    let attn = AttentionConfig::gqa(8, 4, 64);
    let scheme = QuantScheme::kc4();
    let arch = GpuArch::rtx4090();
    let devices = 4;
    let sequences = 6;
    let gen_tokens = 5;
    let decoder = BitDecoder::builder(arch)
        .attention(attn)
        .scheme(scheme)
        .paged(true)
        .build();

    let config = ServeConfig::new(256, 64, 2, 8).with_devices(devices, Partitioning::HeadModulo);
    println!("=== bd-serve: tensor-parallel decode over sharded packed KV ===\n");
    println!(
        "{attn}, {scheme}, {} devices ({}), {} pages x {} tokens per device, {} workers per device\n",
        devices,
        config.partitioning,
        config.total_pages,
        config.page_tokens,
        config.workers,
    );

    let requests: Vec<(u64, usize)> = (0..sequences)
        .map(|i| (i as u64, 256 + 96 * (i % 3)))
        .collect();

    let mut session = ServeSession::new(decoder.clone(), config);
    let ids: Vec<_> = requests
        .iter()
        .map(|&(seed, prompt)| {
            session
                .submit(Box::new(SynthSequence::new(attn, seed, prompt, gen_tokens)))
                .expect("request fits the pool")
        })
        .collect();

    println!(
        "{:>5} {:>6} {:>10} {:>12} {:>10} {:>14} {:>12}",
        "step", "batch", "kv_tokens", "ar_bytes/dev", "ar_model_us", "kv_tok/s", "dev_util"
    );
    while let Some(m) = session.step() {
        let util: Vec<String> = m
            .per_device
            .iter()
            .map(|d| format!("{:.0}%", d.utilization * 100.0))
            .collect();
        println!(
            "{:>5} {:>6} {:>10} {:>12.0} {:>10.1} {:>14.0} {:>12}",
            m.step,
            m.batch,
            m.kv_tokens,
            m.allreduce_bytes_per_device,
            m.modeled_interconnect_s * 1e6,
            m.kv_tokens_per_s,
            util.join("/"),
        );
    }

    // A single-device twin of the same workload.
    let mut solo = ServeSession::new(decoder.clone(), ServeConfig::new(1024, 64, 2, 8));
    let solo_ids: Vec<_> = requests
        .iter()
        .map(|&(seed, prompt)| {
            solo.submit(Box::new(SynthSequence::new(attn, seed, prompt, gen_tokens)))
                .expect("request fits the pool")
        })
        .collect();
    solo.run_to_completion();

    // Bitwise verification against BOTH ground truths.
    let mut verified = 0;
    for ((&(seed, prompt), &id), &sid) in requests.iter().zip(&ids).zip(&solo_ids) {
        let want = replay_contiguous(
            &decoder,
            &mut SynthSequence::new(attn, seed, prompt, gen_tokens),
        );
        let got = session.stream(id).expect("submitted request");
        assert_eq!(
            got, want,
            "sharded stream of request {id} diverged from contiguous decode"
        );
        assert_eq!(
            got,
            solo.stream(sid).expect("submitted request"),
            "sharded stream of request {id} diverged from the single-device session"
        );
        assert!(session.is_finished(id));
        verified += 1;
    }

    // A heterogeneous twin: the same workload on the mixed 2×H100 + 2×A100
    // fleet, heads apportioned by each device's modeled throughput. The
    // fabric only prices communication — the streams stay bitwise.
    let topo = bitdecoding::builtin_topology("mixed_h100_a100").expect("shipped topology");
    println!(
        "\nheterogeneous fleet `{}`: {:?}",
        topo.name(),
        topo.device_archs()
            .iter()
            .map(|a| a.name.as_str())
            .collect::<Vec<_>>(),
    );
    let het_config = ServeConfig::new(256, 64, 2, 8).with_topology(topo);
    let mut het = ServeSession::new(decoder.clone(), het_config);
    let het_ids: Vec<_> = requests
        .iter()
        .map(|&(seed, prompt)| {
            het.submit(Box::new(SynthSequence::new(attn, seed, prompt, gen_tokens)))
                .expect("request fits the pool")
        })
        .collect();
    het.run_to_completion();
    for (&(seed, prompt), &id) in requests.iter().zip(&het_ids) {
        let want = replay_contiguous(
            &decoder,
            &mut SynthSequence::new(attn, seed, prompt, gen_tokens),
        );
        assert_eq!(
            het.stream(id).expect("submitted request"),
            want,
            "heterogeneous stream of request {id} diverged from contiguous decode"
        );
    }
    let het_heads: Vec<usize> = (0..het.devices())
        .map(|d| {
            het.store()
                .device_stats(bitdecoding::kvcache::DeviceId(d as u32))
                .heads
        })
        .collect();
    println!(
        "weighted head apportionment across H100/H100/A100/A100: {het_heads:?} — all {} streams bitwise-identical to contiguous decode",
        requests.len(),
    );

    println!("\nper-device storage after drain:");
    for d in 0..session.devices() {
        let stats = session
            .store()
            .device_stats(bitdecoding::kvcache::DeviceId(d as u32));
        println!(
            "  dev{d}: {} heads, {}/{} pages free, {} sequences evicted ({} pages recycled)",
            stats.heads,
            stats.free_pages,
            stats.total_pages,
            stats.evicted_seqs,
            stats.evicted_pages,
        );
    }
    println!(
        "\nverified: {verified}/{sequences} token streams bitwise-identical to single-device serve AND contiguous BitDecoder::decode across {devices} devices"
    );
}
