//! Multi-tenant paged serving: admit as many 32K-context sequences as the
//! page pool allows and measure sustained decode throughput — the paper's
//! "Pages" setting (§VI-B, Fig. 13).
//!
//! Run with: `cargo run --release --example paged_serving`

use bitdecoding::kvcache::PagedPool;
use bitdecoding::llm::{max_throughput, MemoryModel, ModelConfig, WeightPrecision};
use bitdecoding::{BitDecodingSys, CudaOnly, DecodeSystem, FlashDecoding, GpuArch};

fn main() {
    let arch = GpuArch::a100();
    let seq_len = 32768;
    println!("=== Paged serving at {seq_len} tokens/sequence on {arch} ===\n");

    // Demonstrate the page pool directly: admission, growth, release.
    let model = ModelConfig::llama31_8b();
    let bd = BitDecodingSys::kc4().paged(true);
    let mem = MemoryModel::new(&model, &arch, WeightPrecision::Fp16);
    let bytes_per_token =
        bd.kv_bytes_per_token(&model.attention()) * model.layers as f64 / model.gpus as f64;
    let mut pool = PagedPool::with_budget(mem.free_bytes(), 64, bytes_per_token);
    println!(
        "page pool: {} pages x {} tokens ({:.1} GB budget)",
        pool.total_pages(),
        pool.page_tokens(),
        mem.free_bytes() / 1e9
    );
    let mut admitted = Vec::new();
    loop {
        let seq = pool.admit();
        if pool.grow(seq, seq_len).is_err() {
            pool.release(seq);
            break;
        }
        admitted.push(seq);
    }
    println!(
        "admitted {} sequences, pool utilization {:.1}%",
        admitted.len(),
        pool.utilization() * 100.0
    );
    // A finished sequence frees pages for a new admission.
    pool.release(admitted.pop().expect("at least one"));
    let replacement = pool.admit();
    assert!(pool.grow(replacement, seq_len).is_ok());
    println!("released one sequence and admitted a replacement\n");

    // Throughput table across models and systems.
    println!(
        "{:<18}{:>22}{:>22}{:>22}",
        "model", "FlashDecoding-v2", "QServe (W4)", "BitDecoding KC-4"
    );
    let fp16 = FlashDecoding::v2();
    let qserve = CudaOnly::qserve();
    for model in ModelConfig::all() {
        let f = max_throughput(model, &fp16, arch.clone(), WeightPrecision::Fp16, seq_len);
        let q = max_throughput(model, &qserve, arch.clone(), WeightPrecision::Int4, seq_len);
        let b = max_throughput(model, &bd, arch.clone(), WeightPrecision::Fp16, seq_len);
        println!(
            "{:<18}{:>14.1} (bs{:>3}){:>14.1} (bs{:>3}){:>14.1} (bs{:>3})",
            model.name, f.tokens_per_s, f.batch, q.tokens_per_s, q.batch, b.tokens_per_s, b.batch
        );
    }
}
