//! Preemption under page pressure, end to end: a big request owns an
//! over-subscribed page pool when small requests arrive. Under plain FCFS
//! the small requests starve behind it; under `FcfsPreempt` the scheduler
//! swaps the big sequence out (packed pages + FP16 residual window into a
//! host-side blob), serves the small ones, and swaps it back in bitwise.
//!
//! The demo runs the same workload under `Fcfs`, `FcfsPreempt`, and
//! `ShortestRemainingFirst` and asserts that
//!
//! 1. every stream under every policy is **bitwise identical** to the
//!    uninterrupted per-sequence contiguous decode — preemption moves
//!    *when* sequences run, never *what* they emit — and
//! 2. the late small requests complete in **strictly fewer steps** under
//!    `FcfsPreempt` than under `Fcfs` (no head-of-line starvation).
//!
//! Run with: `cargo run --release --example preempt_demo`

use bitdecoding::core::{AttentionConfig, BitDecoder};
use bitdecoding::serve::{
    replay_contiguous, FcfsPreempt, SchedulerPolicy, ServeConfig, ServeSession,
    ShortestRemainingFirst, SynthSequence,
};
use bitdecoding::{GpuArch, QuantScheme};

/// (seed, prompt, gen, arrival step) — one big early request plus three
/// small late arrivals.
const REQUESTS: [(u64, usize, usize, usize); 4] =
    [(0, 448, 40, 0), (1, 48, 4, 5), (2, 48, 4, 6), (3, 48, 4, 7)];

fn run(
    decoder: &BitDecoder,
    attn: AttentionConfig,
    policy: Option<Box<dyn SchedulerPolicy>>,
) -> (ServeSession, Vec<u64>) {
    // 16 pages × 32 tokens: request 0 alone reserves 16 pages — the pool
    // is sized for roughly half the offered load.
    let mut session = ServeSession::new(decoder.clone(), ServeConfig::new(16, 32, 2, 8));
    if let Some(p) = policy {
        session = session.with_policy(p);
    }
    let ids = REQUESTS
        .iter()
        .map(|&(seed, prompt, gen, at)| {
            session
                .submit_at(at, Box::new(SynthSequence::new(attn, seed, prompt, gen)))
                .expect("request fits the pool")
        })
        .collect();
    session.run_to_completion();
    (session, ids)
}

fn main() {
    let attn = AttentionConfig::gqa(8, 2, 64);
    let decoder = BitDecoder::builder(GpuArch::rtx4090())
        .attention(attn)
        .scheme(QuantScheme::kc4())
        .paged(true)
        .build();

    println!("=== bd-serve: scheduler policies under page pressure ===\n");
    println!("pool 16 pages x 32 tokens; request 0 reserves all 16; small requests arrive at steps 5-7\n");

    let runs: Vec<(ServeSession, Vec<u64>)> = vec![
        run(&decoder, attn, None),
        run(&decoder, attn, Some(Box::new(FcfsPreempt::default()))),
        run(&decoder, attn, Some(Box::new(ShortestRemainingFirst))),
    ];

    println!(
        "{:>26} {:>10} {:>10} {:>10} {:>10} {:>12}",
        "policy", "req0_done", "req1_done", "req2_done", "req3_done", "swap_KiB"
    );
    for (session, ids) in &runs {
        let done: Vec<usize> = ids
            .iter()
            .map(|id| session.completion_step(*id).expect("completed"))
            .collect();
        let swapped: f64 = session.metrics().iter().map(|m| m.swap_bytes).sum();
        println!(
            "{:>26} {:>10} {:>10} {:>10} {:>10} {:>12.1}",
            session.policy_label(),
            done[0],
            done[1],
            done[2],
            done[3],
            swapped / 1024.0,
        );
    }

    // 1. Bitwise identity under every policy.
    let mut verified = 0;
    for (session, ids) in &runs {
        for (&(seed, prompt, gen, _), id) in REQUESTS.iter().zip(ids) {
            let want =
                replay_contiguous(&decoder, &mut SynthSequence::new(attn, seed, prompt, gen));
            assert_eq!(
                session.stream(*id).expect("submitted"),
                want,
                "{}: stream {id} diverged from contiguous decode",
                session.policy_label()
            );
            verified += 1;
        }
    }

    // 2. No head-of-line starvation: each late small request completes
    // strictly earlier under FcfsPreempt than under Fcfs.
    let (fcfs, fcfs_ids) = &runs[0];
    let (pre, pre_ids) = &runs[1];
    let mut preempt_wins = 0;
    for i in 1..REQUESTS.len() {
        let f = fcfs.completion_step(fcfs_ids[i]).unwrap();
        let p = pre.completion_step(pre_ids[i]).unwrap();
        assert!(
            p < f,
            "request {i}: FcfsPreempt ({p}) not strictly earlier than Fcfs ({f})"
        );
        preempt_wins += 1;
    }
    let preemptions: usize = pre.metrics().iter().map(|m| m.preempted).sum();
    assert!(preemptions > 0, "the preempting run never preempted");

    println!(
        "\nverified: {verified}/12 streams bitwise-identical to contiguous decode across 3 policies"
    );
    println!(
        "verified: {preempt_wins}/3 late arrivals complete strictly earlier under fcfs-preempt ({preemptions} preemptions)"
    );
}
