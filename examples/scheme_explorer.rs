//! Quantization-scheme explorer: sweep every supported cache format across
//! accuracy (on outlier-structured synthetic KV) and kernel speed on each
//! evaluation GPU — the efficiency/accuracy trade-off of paper Table I,
//! widened to the full scheme space.
//!
//! Run with: `cargo run --release --example scheme_explorer`

use bitdecoding::accuracy::{evaluate_scheme, longbench_proxy};
use bitdecoding::{
    AttentionConfig, BitDecodingSys, DecodeShape, DecodeSystem, FlashDecoding, GpuArch, QuantScheme,
};

fn main() {
    let schemes = [
        QuantScheme::kt4(),
        QuantScheme::kc4(),
        QuantScheme::kt2(),
        QuantScheme::kc2(),
        QuantScheme::mxfp4(),
        QuantScheme::nvfp4(),
    ];

    println!("=== Accuracy on outlier-structured synthetic KV (d=128, 1K tokens) ===\n");
    println!(
        "{:<10}{:>14}{:>12}{:>12}{:>12}{:>18}",
        "scheme", "bytes/token", "rel-RMSE", "cosine", "attn-KL", "LongBench proxy"
    );
    for scheme in schemes {
        let acc = evaluate_scheme(scheme, 128, 1024, 2);
        println!(
            "{:<10}{:>14.1}{:>12.4}{:>12.5}{:>12.5}{:>18.2}",
            scheme.label(),
            scheme.bytes_per_token(128),
            acc.output_rel_rmse,
            acc.cosine,
            acc.attn_kl,
            longbench_proxy(&acc)
        );
    }

    println!("\n=== Kernel speedup over FP16 (GQA 32/8, len=32K, bs=8) ===\n");
    let attn = AttentionConfig::gqa(32, 8, 128);
    let shape = DecodeShape::new(8, attn, 32768).with_residual(64);
    let fp16 = FlashDecoding::v2();
    print!("{:<10}", "scheme");
    let archs = GpuArch::all();
    for arch in &archs {
        print!("{:>14}", arch.name);
    }
    println!();
    for scheme in schemes {
        // FP4 schemes need Blackwell's native MMA; elsewhere they run the
        // dequant path like any 4-bit cache.
        let sys = BitDecodingSys::new(scheme);
        print!("{:<10}", scheme.label());
        for arch in &archs {
            let sp = fp16.latency_s(&shape, arch) / sys.latency_s(&shape, arch);
            print!("{:>13.2}x", sp);
        }
        println!();
    }
    println!("\nChannel-wise (KC) buys accuracy at slightly more metadata traffic;");
    println!("2-bit doubles the bandwidth win; FP4 needs Blackwell to skip dequant.");
}
