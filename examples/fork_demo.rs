//! Copy-on-write prefix sharing, end to end: eight requests carry the
//! same 1024-token system prompt — the dominant serving pattern — and
//! seven of them are admitted through `ServeSession::submit_forked`, so
//! their prompt pages **alias the parent's** copy-on-write instead of
//! being quantized and stored again per sequence.
//!
//! The demo runs the identical workload with and without sharing and
//! asserts that
//!
//! 1. every stream in both runs is **bitwise identical** to the
//!    per-sequence contiguous decode — sharing changes where bytes live,
//!    never what they are — and
//! 2. the shared run's peak physical page usage is **strictly below** the
//!    unshared run's at equal output, with the saved bytes reported.
//!
//! Run with: `cargo run --release --example fork_demo`

use bitdecoding::core::{AttentionConfig, BitDecoder};
use bitdecoding::serve::{replay_contiguous, ServeConfig, ServeSession, SynthSequence};
use bitdecoding::{GpuArch, QuantScheme};

const PROMPT_SEED: u64 = 0xBD;
const PROMPT: usize = 1024;
const GEN: usize = 8;
const SEQUENCES: usize = 8;
const PAGE_TOKENS: usize = 64;

fn run(decoder: &BitDecoder, attn: AttentionConfig, share: bool) -> (ServeSession, Vec<u64>) {
    let pages_per_seq = (PROMPT + GEN).div_ceil(PAGE_TOKENS) + 1;
    // The unshared arm is the *cold* baseline: the content-addressed radix
    // cache (on by default) would otherwise dedup the identical prompts
    // even without a single fork, collapsing the comparison.
    let config = ServeConfig::new(SEQUENCES * pages_per_seq, PAGE_TOKENS, 2, SEQUENCES)
        .with_prefix_cache(share);
    let mut session = ServeSession::new(decoder.clone(), config);
    let mut ids: Vec<u64> = Vec::with_capacity(SEQUENCES);
    for i in 0..SEQUENCES {
        let model = Box::new(SynthSequence::forked(
            attn,
            PROMPT_SEED,
            i as u64,
            PROMPT,
            GEN,
        ));
        let id = if share && i > 0 {
            session
                .submit_forked(ids[0], model)
                .expect("parent was submitted")
        } else {
            session.submit(model).expect("request fits the pool")
        };
        ids.push(id);
    }
    session.run_to_completion();
    (session, ids)
}

fn main() {
    let attn = AttentionConfig::gqa(8, 2, 64);
    let decoder = BitDecoder::builder(GpuArch::rtx4090())
        .attention(attn)
        .scheme(QuantScheme::kc4())
        .paged(true)
        .build();

    println!("=== bd-serve: copy-on-write shared-prompt admission ===\n");
    println!("{SEQUENCES} requests x ({PROMPT}-token shared prompt + {GEN} generated tokens), {PAGE_TOKENS}-token pages\n");

    let (unshared, unshared_ids) = run(&decoder, attn, false);
    let (shared, shared_ids) = run(&decoder, attn, true);

    println!(
        "{:>10} {:>12} {:>12} {:>8} {:>16}",
        "mode", "peak_pages", "shared_pages", "forks", "bytes_deduped"
    );
    for (label, session) in [("unshared", &unshared), ("shared", &shared)] {
        let peak = session
            .metrics()
            .iter()
            .map(|m| m.physical_pages)
            .max()
            .unwrap_or(0);
        let shared_pages = session
            .metrics()
            .iter()
            .map(|m| m.shared_pages)
            .max()
            .unwrap_or(0);
        let forks: usize = session.metrics().iter().map(|m| m.forked).sum();
        let deduped = session
            .metrics()
            .iter()
            .map(|m| m.shared_bytes_saved)
            .max()
            .unwrap_or(0);
        println!(
            "{:>10} {:>12} {:>12} {:>8} {:>13} KiB",
            label,
            peak,
            shared_pages,
            forks,
            deduped / 1024,
        );
    }

    // 1. Bitwise identity: both runs equal each other and the
    //    per-sequence contiguous ground truth.
    let mut verified = 0;
    for i in 0..SEQUENCES {
        let want = replay_contiguous(
            &decoder,
            &mut SynthSequence::forked(attn, PROMPT_SEED, i as u64, PROMPT, GEN),
        );
        for (label, session, ids) in [
            ("unshared", &unshared, &unshared_ids),
            ("shared", &shared, &shared_ids),
        ] {
            assert_eq!(
                session.stream(ids[i]).expect("submitted"),
                want,
                "{label}: stream {i} diverged from contiguous decode"
            );
            verified += 1;
        }
    }

    // 2. Strictly smaller footprint at equal output.
    let peak = |s: &ServeSession| s.metrics().iter().map(|m| m.physical_pages).max().unwrap();
    let (up, sp) = (peak(&unshared), peak(&shared));
    assert!(
        sp < up,
        "sharing did not shrink the page footprint ({sp} vs {up})"
    );
    let forks: usize = shared.metrics().iter().map(|m| m.forked).sum();
    assert_eq!(forks, SEQUENCES - 1, "every child admitted by forking");

    println!("\nverified: {verified}/16 streams bitwise-identical to contiguous decode");
    println!(
        "verified: shared run peaks at {sp} physical pages vs {up} unshared ({} fewer, {forks} forks)",
        up - sp
    );
}
