//! Graceful degradation end to end: five concurrent sequences decode
//! across **four simulated devices** when a fault plan kills one device
//! mid-run. The session quarantines it, rebuilds the placement over the
//! three survivors, and recovers every affected sequence by
//! recompute-from-prompt re-admission — then every surviving stream is
//! verified **bitwise** against the uninterrupted contiguous
//! `BitDecoder::decode` replay: the loss changed *when* tokens arrived,
//! never *which* tokens.
//!
//! Run with: `cargo run --release --example fault_demo`

use bitdecoding::core::{AttentionConfig, BitDecoder};
use bitdecoding::kvcache::Partitioning;
use bitdecoding::serve::{replay_contiguous, FaultPlan, ServeConfig, ServeSession, SynthSequence};
use bitdecoding::{GpuArch, QuantScheme};

fn main() {
    let attn = AttentionConfig::gqa(8, 4, 64);
    let scheme = QuantScheme::kc4();
    let devices = 4;
    let sequences = 5;
    let gen_tokens = 8;
    let kill_step = 3;
    let decoder = BitDecoder::builder(GpuArch::rtx4090())
        .attention(attn)
        .scheme(scheme)
        .paged(true)
        .build();

    let config = ServeConfig::new(256, 64, 2, 8).with_devices(devices, Partitioning::HeadModulo);
    println!("=== bd-serve: device loss mid-run, recovery, bitwise streams ===\n");
    println!(
        "{attn}, {scheme}, {devices} devices ({}), {} pages x {} tokens per device",
        config.partitioning, config.total_pages, config.page_tokens,
    );
    println!("fault plan: kill device 2 at decode step {kill_step}\n");

    let plan = FaultPlan::new().device_loss(kill_step, 2);
    let mut session = ServeSession::new(decoder.clone(), config).with_faults(plan);
    let requests: Vec<(u64, usize)> = (0..sequences)
        .map(|i| (i as u64, 192 + 64 * (i % 3)))
        .collect();
    let ids: Vec<_> = requests
        .iter()
        .map(|&(seed, prompt)| {
            session
                .submit(Box::new(SynthSequence::new(attn, seed, prompt, gen_tokens)))
                .expect("request fits the pool")
        })
        .collect();

    println!(
        "{:>5} {:>5} {:>8} {:>7} {:>7} {:>10} {:>9} {:>9}",
        "step", "batch", "devices", "faults", "recov", "kv_tokens", "degraded", "completed"
    );
    while let Some(m) = session.step() {
        println!(
            "{:>5} {:>5} {:>8} {:>7} {:>7} {:>10} {:>9} {:>9}",
            m.step,
            m.batch,
            m.devices,
            m.faults_injected,
            m.recoveries,
            m.kv_tokens,
            m.degraded,
            m.completed,
        );
    }

    let run = session.metrics();
    let summary_faults: usize = run.iter().map(|m| m.faults_injected).sum();
    let recoveries: usize = run.iter().map(|m| m.recoveries).sum();
    assert_eq!(summary_faults, 1, "the planned loss must fire exactly once");
    assert!(recoveries >= 1, "in-flight sequences must recover");
    assert_eq!(session.devices(), devices - 1);
    assert_eq!(session.lost_devices(), &[2]);

    println!(
        "\nsurviving devices: {}   lost: {:?}",
        session.devices(),
        session.lost_devices()
    );
    println!("faults injected: {summary_faults}   recompute recoveries: {recoveries}");

    // The acceptance bar: every stream — including those mid-decode when
    // the device died — is bitwise identical to an uninterrupted
    // contiguous replay.
    for (i, (&(seed, prompt), id)) in requests.iter().zip(&ids).enumerate() {
        let stream = session.stream(*id).expect("request completed");
        let mut model = SynthSequence::new(attn, seed, prompt, gen_tokens);
        let want = replay_contiguous(&decoder, &mut model);
        assert_eq!(
            stream,
            want.as_slice(),
            "request {i} diverged after device loss"
        );
        println!(
            "request {i}: {} tokens, bitwise == contiguous replay  [{}]",
            stream.len(),
            stream
                .iter()
                .take(4)
                .map(|t| format!("{t:08x}"))
                .collect::<Vec<_>>()
                .join(" "),
        );
    }
    assert_eq!(
        session.store().free_pages(),
        session.store().devices() * 256,
        "pages leaked across the rebuild"
    );
    println!(
        "\nall {sequences} streams bitwise identical to uninterrupted replay; no pages leaked"
    );
}
