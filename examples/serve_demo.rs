//! The batched decode runtime end to end: eight concurrent sequences
//! decode through `PagedKvStore`'s page-table indirection on a persistent
//! worker pool, and every emitted token stream is verified **bitwise**
//! against the per-sequence contiguous `BitDecoder::decode` path.
//!
//! Run with: `cargo run --release --example serve_demo`

use bitdecoding::core::{AttentionConfig, BitDecoder};
use bitdecoding::serve::{replay_contiguous, ServeConfig, ServeSession, SynthSequence};
use bitdecoding::{GpuArch, QuantScheme};

fn main() {
    let attn = AttentionConfig::gqa(8, 2, 64);
    let scheme = QuantScheme::kc4();
    let arch = GpuArch::rtx4090();
    let sequences = 8;
    let gen_tokens = 6;
    let decoder = BitDecoder::builder(arch)
        .attention(attn)
        .scheme(scheme)
        .paged(true)
        .build();

    let config = ServeConfig::new(1024, 64, 4, 16);
    println!("=== bd-serve: batched decode over paged packed KV ===\n");
    println!(
        "{attn}, {scheme}, {} pages x {} tokens, {} workers, max batch {}\n",
        config.total_pages, config.page_tokens, config.workers, config.max_batch
    );

    let mut session = ServeSession::new(decoder.clone(), config);
    let requests: Vec<(u64, usize)> = (0..sequences)
        .map(|i| (i as u64, 512 + 128 * (i % 4)))
        .collect();
    let ids: Vec<_> = requests
        .iter()
        .map(|&(seed, prompt)| {
            session
                .submit(Box::new(SynthSequence::new(attn, seed, prompt, gen_tokens)))
                .expect("request fits the pool")
        })
        .collect();

    println!(
        "{:>5} {:>6} {:>10} {:>10} {:>14} {:>12} {:>10}",
        "step", "batch", "kv_tokens", "wall_ms", "kv_tok/s", "dequant_ops", "pool_util"
    );
    while let Some(m) = session.step() {
        println!(
            "{:>5} {:>6} {:>10} {:>10.2} {:>14.0} {:>12} {:>9.1}%",
            m.step,
            m.batch,
            m.kv_tokens,
            m.wall_s * 1e3,
            m.kv_tokens_per_s,
            m.dequant.total(),
            m.pool_utilization * 100.0,
        );
    }

    // Bitwise verification: every stream must equal the single-sequence
    // contiguous decode of the same request.
    let mut verified = 0;
    for (&(seed, prompt), &id) in requests.iter().zip(&ids) {
        let want = replay_contiguous(
            &decoder,
            &mut SynthSequence::new(attn, seed, prompt, gen_tokens),
        );
        let got = session.stream(id).expect("submitted request");
        assert_eq!(
            got, want,
            "stream of request {id} diverged from contiguous decode"
        );
        assert!(session.is_finished(id));
        verified += 1;
    }
    println!("\nstreams ({gen_tokens} tokens each):");
    for (&(seed, prompt), &id) in requests.iter().zip(&ids) {
        let toks: Vec<String> = session
            .stream(id)
            .unwrap()
            .iter()
            .map(|t| format!("{t:08x}"))
            .collect();
        println!(
            "  req {id} (seed {seed}, prompt {prompt:>4}): {}",
            toks.join(" ")
        );
    }
    println!(
        "\nverified: {verified}/{sequences} token streams bitwise-identical to contiguous BitDecoder::decode"
    );
    println!(
        "pages in use after drain: {} (all recycled)",
        session.store().total_pages() - session.store().free_pages()
    );
}
