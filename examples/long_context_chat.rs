//! Long-context single-user decoding: the paper's motivating scenario
//! (§I). Streams decode steps for a 128K-context LLaMA-3.1-8B session and
//! compares BitDecoding's per-token latency and memory footprint against
//! the FP16 baseline and KIVI.
//!
//! Run with: `cargo run --release --example long_context_chat`

use bitdecoding::llm::{Engine, MemoryModel, ModelConfig, WeightPrecision};
use bitdecoding::{BitDecodingSys, DecodeSystem, FlashDecoding, GpuArch, Kivi};

fn main() {
    let model = ModelConfig::llama31_8b();
    let arch = GpuArch::a100();
    let mem = MemoryModel::new(&model, &arch, WeightPrecision::Fp16);

    println!("=== Long-context chat: {model} on {arch}, batch 1 ===\n");
    println!(
        "{:<22}{:>10}{:>14}{:>16}{:>14}",
        "system", "context", "KV memory", "ms/token", "vs FP16"
    );

    let fp16 = FlashDecoding::v2();
    let kivi = Kivi::int4();
    let kc4 = BitDecodingSys::kc4();
    let kc2 = BitDecodingSys::kc2();
    let systems: Vec<(&str, &dyn DecodeSystem)> = vec![
        ("FP16 FlashDecoding", &fp16),
        ("KIVI-4", &kivi),
        ("BitDecoding KC-4", &kc4),
        ("BitDecoding KC-2", &kc2),
    ];

    for len in [32768usize, 65536, 131072] {
        let fp16_step = Engine::new(model, &fp16, arch.clone()).decode_step_latency(1, len);
        for (name, sys) in &systems {
            let kv_gb = mem.seq_cache_bytes(&model, *sys, len) / 1e9;
            match mem.check(&model, *sys, 1, len) {
                Err(e) => {
                    println!(
                        "{:<22}{:>9}K{:>13.2}G{:>16}{:>14}",
                        name,
                        len / 1024,
                        kv_gb,
                        "OOM",
                        format!("({e})").chars().take(13).collect::<String>()
                    );
                }
                Ok(()) => {
                    let step = Engine::new(model, *sys, arch.clone()).decode_step_latency(1, len);
                    println!(
                        "{:<22}{:>9}K{:>13.2}G{:>15.2}ms{:>13.2}x",
                        name,
                        len / 1024,
                        kv_gb,
                        step * 1e3,
                        fp16_step / step
                    );
                }
            }
        }
        println!();
    }

    println!("Attention-layer speedup (isolating the kernel BitDecoding replaces):");
    for len in [32768usize, 131072] {
        let base = Engine::new(model, &fp16, arch.clone()).attention_step_latency(1, len);
        let bd = Engine::new(model, &kc4, arch.clone()).attention_step_latency(1, len);
        println!("  {:>4}K context: {:.2}x", len / 1024, base / bd);
    }
}
