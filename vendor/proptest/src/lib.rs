//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access, so this workspace vendors a
//! minimal property-testing harness covering the API surface its test
//! suites use: the [`proptest!`] macro with `name in strategy` and
//! `name: Type` parameters, [`prop_assert!`]/[`prop_assert_eq!`],
//! [`prop_oneof!`], range and tuple strategies, `Just`,
//! `prop::collection::vec`, and `any::<T>()`.
//!
//! Semantics differ from real proptest in one deliberate way: failing cases
//! are **not shrunk** — the failing inputs are reported as sampled. Case
//! generation is deterministic per test (seeded from the test path), so
//! failures reproduce across runs. The case count defaults to 32 and can be
//! raised with the `PROPTEST_CASES` environment variable.

/// Deterministic test-case generator state.
pub mod test_runner {
    /// Deterministic RNG driving case generation (SplitMix64).
    #[derive(Clone, Debug)]
    pub struct TestRng {
        base: u64,
        state: u64,
    }

    impl TestRng {
        /// Seeds the generator from a test's module path + name.
        pub fn from_name(name: &str) -> Self {
            // FNV-1a over the test path: stable across runs and platforms.
            let mut h = 0xCBF2_9CE4_8422_2325u64;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng { base: h, state: h }
        }

        /// Rewinds to the deterministic stream for case number `case`.
        pub fn reseed_case(&mut self, case: u64) {
            self.state = self.base ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            // Warm up so consecutive case seeds decorrelate.
            self.next_u64();
        }

        /// The next 64 uniform bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform integer in `[0, bound)`.
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0, "empty sample range");
            // Modulo bias is irrelevant at test-data scales.
            self.next_u64() % bound
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    /// Number of cases each property runs (override with `PROPTEST_CASES`).
    pub fn cases() -> u64 {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(32)
    }
}

/// Value-generation strategies.
pub mod strategy {
    use crate::test_runner::TestRng;

    /// A recipe for sampling values of one type.
    pub trait Strategy {
        /// The type of value produced.
        type Value;
        /// Samples one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;
    }

    /// A strategy producing one fixed value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {
            $(impl Strategy for ::std::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            })*
        };
    }
    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for ::std::ops::Range<f32> {
        type Value = f32;
        fn sample(&self, rng: &mut TestRng) -> f32 {
            let u = rng.unit_f64();
            (f64::from(self.start) + u * (f64::from(self.end) - f64::from(self.start))) as f32
        }
    }

    impl Strategy for ::std::ops::Range<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            let u = rng.unit_f64();
            self.start + u * (self.end - self.start)
        }
    }

    macro_rules! tuple_strategy {
        ($(($($name:ident),+))*) => {
            $(impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.sample(rng),)+)
                }
            })*
        };
    }
    tuple_strategy! { (A) (A, B) (A, B, C) (A, B, C, D) (A, B, C, D, E) }

    /// Uniform choice between boxed alternative strategies
    /// (the engine behind [`crate::prop_oneof!`]).
    pub struct Union<T> {
        options: Vec<Box<dyn Strategy<Value = T>>>,
    }

    impl<T> Union<T> {
        /// Builds a union; panics if no options are given.
        pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            let idx = rng.below(self.options.len() as u64) as usize;
            self.options[idx].sample(rng)
        }
    }

    /// Boxes a strategy for storage in a [`Union`].
    pub fn boxed<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
    where
        S: Strategy + 'static,
    {
        Box::new(s)
    }
}

/// `Arbitrary` values and the `any::<T>()` strategy.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical whole-domain generation strategy.
    pub trait Arbitrary: Sized {
        /// Samples an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! int_arbitrary {
        ($($t:ty),*) => {
            $(impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            })*
        };
    }
    int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f32 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            // Finite, sign-symmetric, covering several orders of magnitude.
            ((rng.unit_f64() - 0.5) * 2e6) as f32
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            (rng.unit_f64() - 0.5) * 2e12
        }
    }

    /// Strategy wrapper returned by [`any`].
    #[derive(Clone, Copy, Debug, Default)]
    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The whole-domain strategy for `T`, mirroring `proptest::arbitrary::any`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Inclusive-exclusive length bounds for generated collections.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<::std::ops::Range<usize>> for SizeRange {
        fn from(r: ::std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty collection size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with sampled length.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span.max(1)) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// A strategy producing vectors of `element` with length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// The `prop::` paths used inside test bodies.
pub mod prop {
    pub use crate::collection;
}

/// The commonly glob-imported names, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::prop;
    pub use crate::strategy::{Just, Strategy, Union};
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// Declares property tests. Each function parameter is either
/// `name in strategy` (sampled from the strategy) or `name: Type`
/// (sampled from the type's [`arbitrary::Arbitrary`] impl).
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($params:tt)*) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut __prop_rng = $crate::test_runner::TestRng::from_name(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                let __cases = $crate::test_runner::cases();
                for __case in 0..__cases {
                    __prop_rng.reseed_case(__case);
                    let __result: ::std::result::Result<(), ::std::string::String> = (|| {
                        $crate::__prop_bind!(__prop_rng, ($($params)*));
                        $body
                        #[allow(unreachable_code)]
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(__e) = __result {
                        panic!("property failed on case {__case}/{__cases}: {__e}");
                    }
                }
            }
        )*
    };
}

/// Internal: binds one `proptest!` parameter list.
#[doc(hidden)]
#[macro_export]
macro_rules! __prop_bind {
    ($rng:ident, ()) => {};
    ($rng:ident, (mut $name:ident in $strat:expr)) => {
        #[allow(unused_mut)]
        let mut $name = $crate::strategy::Strategy::sample(&($strat), &mut $rng);
    };
    ($rng:ident, (mut $name:ident in $strat:expr, $($rest:tt)*)) => {
        #[allow(unused_mut)]
        let mut $name = $crate::strategy::Strategy::sample(&($strat), &mut $rng);
        $crate::__prop_bind!($rng, ($($rest)*));
    };
    ($rng:ident, (mut $name:ident : $ty:ty)) => {
        #[allow(unused_mut)]
        let mut $name = <$ty as $crate::arbitrary::Arbitrary>::arbitrary(&mut $rng);
    };
    ($rng:ident, (mut $name:ident : $ty:ty, $($rest:tt)*)) => {
        #[allow(unused_mut)]
        let mut $name = <$ty as $crate::arbitrary::Arbitrary>::arbitrary(&mut $rng);
        $crate::__prop_bind!($rng, ($($rest)*));
    };
    ($rng:ident, ($name:ident in $strat:expr)) => {
        let $name = $crate::strategy::Strategy::sample(&($strat), &mut $rng);
    };
    ($rng:ident, ($name:ident in $strat:expr, $($rest:tt)*)) => {
        let $name = $crate::strategy::Strategy::sample(&($strat), &mut $rng);
        $crate::__prop_bind!($rng, ($($rest)*));
    };
    ($rng:ident, ($name:ident : $ty:ty)) => {
        let $name = <$ty as $crate::arbitrary::Arbitrary>::arbitrary(&mut $rng);
    };
    ($rng:ident, ($name:ident : $ty:ty, $($rest:tt)*)) => {
        let $name = <$ty as $crate::arbitrary::Arbitrary>::arbitrary(&mut $rng);
        $crate::__prop_bind!($rng, ($($rest)*));
    };
}

/// Asserts a condition inside a property, failing the case (not panicking
/// directly) on violation.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err(
                ::std::format!("assertion failed: {}", stringify!($cond)),
            );
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {}: {}",
                stringify!($cond),
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (__l, __r) = (&$left, &$right);
        if !(__l == __r) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                __l,
                __r,
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(__l == __r) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {} == {} ({})\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                ::std::format!($($fmt)+),
                __l,
                __r,
            ));
        }
    }};
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::boxed($strat)),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        /// Range strategies stay in bounds; Arbitrary params vary.
        #[test]
        fn ranges_in_bounds(x in 3usize..17, y in -2.0f32..2.0, seed: u64) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2.0..2.0).contains(&y), "y = {y}");
            let _ = seed;
        }

        /// Tuples, collections, and oneof compose.
        #[test]
        fn compound_strategies(v in prop::collection::vec((0usize..4, 1usize..9), 2..6),
                               pick in prop_oneof![Just(1usize), Just(2), Just(3)]) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            for (a, b) in v {
                prop_assert!(a < 4 && (1..9).contains(&b));
            }
            prop_assert!((1..=3).contains(&pick));
        }

        /// Exact-length vec form works.
        #[test]
        fn exact_length_vec(v in prop::collection::vec(0.0f64..1.0, 32)) {
            prop_assert_eq!(v.len(), 32);
        }

        /// `mut` bindings and early Ok returns are accepted.
        #[test]
        fn mut_and_early_return(mut v in prop::collection::vec(0u32..10, 1..5)) {
            v.push(3);
            if v.len() == 1 {
                return Ok(());
            }
            prop_assert!(!v.is_empty());
        }
    }

    #[test]
    fn determinism_across_runners() {
        let mut a = crate::test_runner::TestRng::from_name("x::y");
        let mut b = crate::test_runner::TestRng::from_name("x::y");
        a.reseed_case(5);
        b.reseed_case(5);
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
