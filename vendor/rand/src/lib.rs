//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access, so this workspace vendors a
//! minimal, deterministic implementation of the `rand` API surface it uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], [`Rng::random`] for the
//! common primitive types, and [`SliceRandom::shuffle`]. The generator is
//! SplitMix64 — statistically solid for the synthetic-data workloads here,
//! and fully reproducible under a seed (which the test suites rely on).
//!
//! It is **not** a cryptographic or distribution-exact replacement for the
//! real crate; calibrated constants elsewhere in the workspace were derived
//! against this generator.

/// Distribution of "standard" values a generator can produce directly:
/// uniform bits for integers, uniform `[0, 1)` for floats, fair coin for
/// `bool` — mirroring `rand`'s `StandardUniform`.
pub trait Standard: Sized {
    /// Samples one value from the generator.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

/// A source of random bits plus the `random::<T>()` convenience method.
pub trait Rng {
    /// Returns the next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// Samples a value of a [`Standard`]-distributed type.
    fn random<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }
}

/// Construction of a generator from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The workspace's standard generator: SplitMix64.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng {
                // Avoid the all-zero fixed point and decorrelate small seeds.
                state: seed ^ 0x9E37_79B9_7F4A_7C15,
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea, Flood 2014).
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

impl Standard for f32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 24 high bits → uniform [0, 1) at full f32 resolution.
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for f64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! int_standard {
    ($($t:ty),*) => {
        $(impl Standard for $t {
            fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        })*
    };
}
int_standard!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Random operations on slices, mirroring `rand::seq::SliceRandom`.
pub trait SliceRandom {
    /// Shuffles the slice in place (Fisher–Yates).
    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
}

impl<T> SliceRandom for [T] {
    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            // Modulo bias is negligible for the small index ranges used here.
            let j = (rng.next_u64() % (i as u64 + 1)) as usize;
            self.swap(i, j);
        }
    }
}

/// The commonly glob-imported names, mirroring `rand::prelude`.
pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::{Rng, SeedableRng, SliceRandom, Standard};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_under_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn floats_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f32 = rng.random();
            assert!((0.0..1.0).contains(&x));
            let y: f64 = rng.random();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn mean_is_roughly_half() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.random::<f64>()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut v: Vec<usize> = (0..64).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..64).collect::<Vec<_>>());
        assert_ne!(v, (0..64).collect::<Vec<_>>(), "64 elements should move");
    }
}
