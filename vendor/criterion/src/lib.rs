//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no network access, so this workspace vendors a
//! minimal wall-clock benchmark runner covering the API surface its benches
//! use: [`Criterion::bench_function`], [`Bencher::iter`],
//! [`Bencher::iter_batched`], [`BatchSize`], and the
//! [`criterion_group!`]/[`criterion_main!`] macros.
//!
//! No statistics beyond min/mean are computed and no reports are written —
//! each bench prints one line. Iteration counts adapt to a small per-bench
//! time budget so slow functional-simulation benches stay tractable.

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box`, mirroring `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// How batched setup values are grouped (accepted for API compatibility;
/// the shim runs one setup per timed invocation regardless).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One batch per iteration.
    PerIteration,
}

/// Per-bench measurement driver.
pub struct Bencher {
    /// Nanoseconds per iteration observed (min over measurement rounds).
    best_ns: f64,
    /// Mean nanoseconds per iteration.
    mean_ns: f64,
    budget: Duration,
}

impl Bencher {
    fn new(budget: Duration) -> Self {
        Bencher {
            best_ns: f64::NAN,
            mean_ns: f64::NAN,
            budget,
        }
    }

    /// Times `f` repeatedly until the time budget is spent.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up + calibration round.
        let t0 = Instant::now();
        std_black_box(f());
        let once = t0.elapsed();
        let per_round = ((self.budget.as_secs_f64() / 8.0) / once.as_secs_f64().max(1e-9))
            .clamp(1.0, 1e6) as u64;

        let mut best = f64::INFINITY;
        let mut total = 0.0f64;
        let mut iters = 0u64;
        let start = Instant::now();
        while start.elapsed() < self.budget {
            let t = Instant::now();
            for _ in 0..per_round {
                std_black_box(f());
            }
            let ns = t.elapsed().as_secs_f64() * 1e9 / per_round as f64;
            best = best.min(ns);
            total += ns * per_round as f64;
            iters += per_round;
        }
        self.best_ns = best;
        self.mean_ns = total / iters as f64;
    }

    /// Times `routine` on fresh values from `setup`, excluding setup time.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let mut best = f64::INFINITY;
        let mut total = 0.0f64;
        let mut iters = 0u64;
        let start = Instant::now();
        // Measure at least a handful of iterations even if each is slow.
        while start.elapsed() < self.budget || iters < 5 {
            let input = setup();
            let t = Instant::now();
            std_black_box(routine(input));
            let ns = t.elapsed().as_secs_f64() * 1e9;
            best = best.min(ns);
            total += ns;
            iters += 1;
            if iters >= 1_000_000 {
                break;
            }
        }
        self.best_ns = best;
        self.mean_ns = total / iters as f64;
    }
}

/// The bench registry / runner.
pub struct Criterion {
    budget: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        let ms = std::env::var("BENCH_BUDGET_MS")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(300u64);
        Criterion {
            budget: Duration::from_millis(ms),
        }
    }
}

impl Criterion {
    /// Runs one named benchmark and prints a one-line summary.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new(self.budget);
        f(&mut b);
        println!(
            "bench {name:<48} {:>14} ns/iter (mean {:>14})",
            format_ns(b.best_ns),
            format_ns(b.mean_ns)
        );
        self
    }
}

fn format_ns(ns: f64) -> String {
    if !ns.is_finite() {
        "n/a".to_owned()
    } else if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.2} us", ns / 1e3)
    } else {
        format!("{ns:.1}")
    }
}

/// Declares a bench group function running each target in order.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the bench binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_measures_something() {
        let mut c = Criterion {
            budget: Duration::from_millis(10),
        };
        c.bench_function("noop_sum", |b| {
            b.iter(|| (0..100u64).sum::<u64>());
        });
        c.bench_function("batched", |b| {
            b.iter_batched(
                || vec![1u64; 64],
                |v| v.iter().sum::<u64>(),
                BatchSize::SmallInput,
            );
        });
    }
}
