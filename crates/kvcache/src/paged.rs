//! Paged KV-cache management in the PagedAttention style (paper §VI-A,
//! the "Page" evaluation setting).
//!
//! The pool hands out fixed-size pages (tokens per page) to sequences on
//! demand; a per-sequence page table maps logical block indices to physical
//! pages. The serving simulator uses this for admission control (max batch
//! under a memory budget) and the kernel profiles charge the extra
//! page-table indirection traffic.
//!
//! Physical pages are **reference-counted** so several sequences can map
//! the same page (copy-on-write prefix sharing): [`PagedPool::adopt`]
//! admits a sequence whose table prefix aliases already-allocated pages,
//! [`PagedPool::cow`] gives a writer a private copy of one shared table
//! slot, and [`PagedPool::release`] only returns a page to the free list
//! when its last reference drops. Every page carries a **generation**
//! ([`PagedPool::generation`]) that bumps when the page is freed, so a
//! stale reference (e.g. recorded in a swapped-out blob) can detect that
//! its page was recycled.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// A physical page identifier.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PageId(pub u32);

/// A sequence identifier issued by the pool.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SeqId(pub u32);

/// Pool exhaustion error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PagedOom {
    /// Pages requested beyond availability.
    pub requested: usize,
    /// Pages still free.
    pub free: usize,
}

impl fmt::Display for PagedOom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "page pool exhausted: requested {} pages, {} free",
            self.requested, self.free
        )
    }
}

impl std::error::Error for PagedOom {}

/// A fixed-capacity page pool with per-sequence page tables.
///
/// Allocation is **deterministic**: the free list is an ordered set and
/// `grow` always hands out the lowest-numbered free page, and the
/// per-sequence tables are ordered maps — so a given admit/grow/release
/// history produces the identical physical page assignment in every
/// process. Serve runs over the pool are therefore reproducible
/// bit-for-bit across machines.
#[derive(Clone, Debug)]
pub struct PagedPool {
    page_tokens: usize,
    free: BTreeSet<PageId>,
    tables: BTreeMap<SeqId, Vec<PageId>>,
    seq_lens: BTreeMap<SeqId, usize>,
    /// Reference count per **allocated** page (absent = free). A page is
    /// shared when its count exceeds one.
    refs: BTreeMap<PageId, u32>,
    /// Free-generation per page: bumped every time the page returns to the
    /// free list, so stale references can detect recycling. Absent = never
    /// freed (generation 0).
    gens: BTreeMap<PageId, u64>,
    /// Pages holding one extra **cache pin** reference (at most one per
    /// page): the content-addressed prefix index keeps sealed prompt pages
    /// alive after their last sequence departs so later identical prompts
    /// can re-adopt them. Pinned pages are excluded from sharing
    /// accounting ([`PagedPool::seq_refcount`]).
    pinned: BTreeSet<PageId>,
    next_seq: u32,
    total_pages: usize,
}

impl PagedPool {
    /// Creates a pool of `total_pages` pages of `page_tokens` tokens each.
    ///
    /// # Panics
    ///
    /// Panics if `page_tokens` is zero.
    pub fn new(total_pages: usize, page_tokens: usize) -> Self {
        assert!(page_tokens > 0, "page size must be positive");
        PagedPool {
            page_tokens,
            free: (0..total_pages as u32).map(PageId).collect(),
            tables: BTreeMap::new(),
            seq_lens: BTreeMap::new(),
            refs: BTreeMap::new(),
            gens: BTreeMap::new(),
            pinned: BTreeSet::new(),
            next_seq: 0,
            total_pages,
        }
    }

    /// Sizes a pool from a byte budget: `budget / (page_tokens ×
    /// bytes_per_token)` pages.
    pub fn with_budget(budget_bytes: f64, page_tokens: usize, bytes_per_token: f64) -> Self {
        let pages = (budget_bytes / (page_tokens as f64 * bytes_per_token)).floor() as usize;
        PagedPool::new(pages, page_tokens)
    }

    /// Tokens per page.
    pub fn page_tokens(&self) -> usize {
        self.page_tokens
    }

    /// Pages not currently assigned.
    pub fn free_pages(&self) -> usize {
        self.free.len()
    }

    /// Total pool capacity in pages.
    pub fn total_pages(&self) -> usize {
        self.total_pages
    }

    /// Fraction of pages in use.
    pub fn utilization(&self) -> f64 {
        1.0 - self.free.len() as f64 / self.total_pages.max(1) as f64
    }

    /// Admits a new (empty) sequence.
    pub fn admit(&mut self) -> SeqId {
        let id = SeqId(self.next_seq);
        self.next_seq += 1;
        self.tables.insert(id, Vec::new());
        self.seq_lens.insert(id, 0);
        id
    }

    /// Grows a sequence to `new_len` tokens, allocating pages on demand.
    ///
    /// # Errors
    ///
    /// Returns [`PagedOom`] (leaving the sequence unchanged) when the pool
    /// cannot supply enough pages.
    ///
    /// # Panics
    ///
    /// Panics if the sequence is unknown or `new_len` shrinks the sequence.
    pub fn grow(&mut self, seq: SeqId, new_len: usize) -> Result<(), PagedOom> {
        let Some(&cur_len) = self.seq_lens.get(&seq) else {
            panic!("unknown sequence {seq:?}");
        };
        assert!(new_len >= cur_len, "sequences cannot shrink; free instead");
        let have = self.tables[&seq].len();
        let need = new_len.div_ceil(self.page_tokens);
        let extra = need.saturating_sub(have);
        if extra > self.free.len() {
            return Err(PagedOom {
                requested: extra,
                free: self.free.len(),
            });
        }
        for _ in 0..extra {
            // Lowest-numbered free page first: deterministic reuse.
            let Some(page) = self.free.pop_first() else {
                unreachable!("checked above");
            };
            self.refs.insert(page, 1);
            let Some(table) = self.tables.get_mut(&seq) else {
                unreachable!("table exists for every known sequence");
            };
            table.push(page);
        }
        self.seq_lens.insert(seq, new_len);
        Ok(())
    }

    /// Admits a new sequence whose table **adopts** existing pages:
    /// `slots[i] = Some(page)` aliases an already-allocated page at table
    /// slot `i` (its refcount is bumped — copy-on-write prefix sharing),
    /// `None` (and every slot past `slots`) draws a fresh page. The table
    /// is sized for `tokens` tokens (or `slots.len()`, whichever covers
    /// more) and `tokens` are reserved exactly as by a `grow` to `tokens`.
    ///
    /// # Errors
    ///
    /// Returns [`PagedOom`] — admitting nothing and bumping no refcount —
    /// when the pool cannot supply the fresh slots.
    ///
    /// # Panics
    ///
    /// Panics if any adopted page is not currently allocated.
    pub fn adopt(&mut self, slots: &[Option<PageId>], tokens: usize) -> Result<SeqId, PagedOom> {
        for page in slots.iter().flatten() {
            assert!(
                self.refs.contains_key(page),
                "cannot adopt free page {page:?}"
            );
        }
        let total_slots = tokens.div_ceil(self.page_tokens).max(slots.len());
        let fresh = total_slots - slots.iter().flatten().count();
        if fresh > self.free.len() {
            return Err(PagedOom {
                requested: fresh,
                free: self.free.len(),
            });
        }
        let mut table = Vec::with_capacity(total_slots);
        for i in 0..total_slots {
            match slots.get(i) {
                Some(Some(page)) => {
                    let Some(count) = self.refs.get_mut(page) else {
                        unreachable!("checked above");
                    };
                    *count += 1;
                    table.push(*page);
                }
                _ => {
                    let Some(page) = self.free.pop_first() else {
                        unreachable!("checked above");
                    };
                    self.refs.insert(page, 1);
                    table.push(page);
                }
            }
        }
        let id = SeqId(self.next_seq);
        self.next_seq += 1;
        self.tables.insert(id, table);
        self.seq_lens.insert(id, tokens);
        Ok(id)
    }

    /// Copy-on-write: replaces table slot `slot` of `seq` — which must map
    /// a **shared** page (refcount ≥ 2) — with a fresh private page,
    /// dropping one reference on the shared page. Returns
    /// `(shared_page, private_page)` so the caller can migrate the slot's
    /// data.
    ///
    /// # Errors
    ///
    /// Returns [`PagedOom`] (changing nothing) when no free page exists.
    ///
    /// # Panics
    ///
    /// Panics on an unknown sequence, an out-of-range slot, or a slot
    /// whose page is exclusively owned (nothing to copy from).
    pub fn cow(&mut self, seq: SeqId, slot: usize) -> Result<(PageId, PageId), PagedOom> {
        let old = self.tables[&seq][slot];
        let Some(count) = self.refs.get_mut(&old) else {
            panic!("cow on free page {old:?}");
        };
        assert!(*count >= 2, "cow on exclusively owned page {old:?}");
        let Some(new) = self.free.pop_first() else {
            return Err(PagedOom {
                requested: 1,
                free: 0,
            });
        };
        *count -= 1;
        self.refs.insert(new, 1);
        let Some(table) = self.tables.get_mut(&seq) else {
            unreachable!("table indexed above");
        };
        table[slot] = new;
        Ok((old, new))
    }

    /// Releases a sequence, dropping one reference on each of its pages;
    /// pages whose **last** reference dropped return to the free list (and
    /// bump their generation). Returns exactly those freed pages, in table
    /// order — pages still referenced by a sharing sequence stay allocated
    /// and are not listed.
    pub fn release(&mut self, seq: SeqId) -> Vec<PageId> {
        let mut freed = Vec::new();
        if let Some(pages) = self.tables.remove(&seq) {
            for page in pages {
                let Some(count) = self.refs.get_mut(&page) else {
                    unreachable!("every mapped page is allocated");
                };
                *count -= 1;
                if *count == 0 {
                    self.refs.remove(&page);
                    *self.gens.entry(page).or_insert(0) += 1;
                    self.free.insert(page);
                    freed.push(page);
                }
            }
            self.seq_lens.remove(&seq);
        }
        freed
    }

    /// References currently held on a page (0 = free).
    pub fn refcount(&self, page: PageId) -> u32 {
        self.refs.get(&page).copied().unwrap_or(0)
    }

    /// How many times the page has been freed **or mutated in place** —
    /// compare against a recorded value to detect that a page was recycled
    /// (or its frame rewritten) in between.
    pub fn generation(&self, page: PageId) -> u64 {
        self.gens.get(&page).copied().unwrap_or(0)
    }

    /// Invalidates outstanding references to a page without freeing it:
    /// the storage layer bumps this when it rewrites an allocated page's
    /// frame in place (reclaiming a departed sharer's blocks), so a
    /// swapped-out blob recorded against the old contents refuses to
    /// re-share it.
    pub(crate) fn bump_generation(&mut self, page: PageId) {
        *self.gens.entry(page).or_insert(0) += 1;
    }

    /// Pins a page on behalf of the prefix cache: one extra reference that
    /// keeps the page allocated (and its frame intact) after every
    /// sequence mapping it departs. A page carries at most one pin.
    ///
    /// # Panics
    ///
    /// Panics if the page is free or already pinned.
    pub(crate) fn pin_page(&mut self, page: PageId) {
        let Some(count) = self.refs.get_mut(&page) else {
            panic!("cannot pin free page {page:?}");
        };
        assert!(self.pinned.insert(page), "page {page:?} already pinned");
        *count += 1;
    }

    /// Drops a page's cache pin; when the pin was the last reference the
    /// page returns to the free list (bumping its generation). Returns
    /// `true` exactly when the page was freed, so the caller knows to drop
    /// its frame.
    ///
    /// # Panics
    ///
    /// Panics if the page is not pinned.
    pub(crate) fn unpin_page(&mut self, page: PageId) -> bool {
        assert!(self.pinned.remove(&page), "page {page:?} not pinned");
        let Some(count) = self.refs.get_mut(&page) else {
            unreachable!("pinned pages are allocated");
        };
        *count -= 1;
        if *count == 0 {
            self.refs.remove(&page);
            *self.gens.entry(page).or_insert(0) += 1;
            self.free.insert(page);
            true
        } else {
            false
        }
    }

    /// Whether the prefix cache holds a pin on this page.
    pub fn is_pinned(&self, page: PageId) -> bool {
        self.pinned.contains(&page)
    }

    /// References held on a page by **sequences** — the raw refcount minus
    /// the cache pin, if any. This is the count every sharing decision
    /// (copy-on-write, swap re-share, preemption accounting) consults, so
    /// cache pins are invisible to scheduling.
    pub fn seq_refcount(&self, page: PageId) -> u32 {
        let raw = self.refcount(page);
        raw - u32::from(raw > 0 && self.pinned.contains(&page))
    }

    /// Pinned pages no sequence maps any more — exactly the pages the
    /// prefix cache could return to the free list on demand.
    pub fn reclaimable_pages(&self) -> usize {
        self.pinned
            .iter()
            .filter(|&&p| self.seq_refcount(p) == 0)
            .count()
    }

    /// Allocated pages mapped by more than one sequence (cache pins do not
    /// count as sharers).
    pub fn shared_pages(&self) -> usize {
        self.refs
            .keys()
            .filter(|&&p| self.seq_refcount(p) > 1)
            .count()
    }

    /// Iterates every allocated page with its current refcount, in page
    /// order.
    pub fn refcounts(&self) -> impl Iterator<Item = (PageId, u32)> + '_ {
        self.refs.iter().map(|(&p, &c)| (p, c))
    }

    /// Table entries summed over all sequences — what the pool would hold
    /// without sharing. `logical_pages() - (total_pages() - free_pages())`
    /// is the number of pages sharing saves.
    pub fn logical_pages(&self) -> usize {
        self.tables.values().map(Vec::len).sum()
    }

    /// Current token length of a sequence.
    pub fn seq_len(&self, seq: SeqId) -> Option<usize> {
        self.seq_lens.get(&seq).copied()
    }

    /// The page table of a sequence (logical order).
    pub fn table(&self, seq: SeqId) -> Option<&[PageId]> {
        self.tables.get(&seq).map(Vec::as_slice)
    }

    /// Translates a token index to `(page, offset)`.
    ///
    /// # Panics
    ///
    /// Panics if the sequence is unknown or the token is beyond its length.
    pub fn translate(&self, seq: SeqId, token: usize) -> (PageId, usize) {
        let len = self.seq_lens[&seq];
        assert!(token < len, "token {token} beyond sequence length {len}");
        let table = &self.tables[&seq];
        (table[token / self.page_tokens], token % self.page_tokens)
    }

    /// Bytes of page-table metadata one attention pass over a sequence
    /// reads (8 B per entry: pointer-sized page descriptors).
    pub fn table_read_bytes(&self, seq: SeqId) -> f64 {
        self.tables.get(&seq).map_or(0.0, |t| t.len() as f64 * 8.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grow_allocates_pages_lazily() {
        let mut pool = PagedPool::new(10, 64);
        let s = pool.admit();
        pool.grow(s, 1).unwrap();
        assert_eq!(pool.table(s).unwrap().len(), 1);
        pool.grow(s, 64).unwrap();
        assert_eq!(pool.table(s).unwrap().len(), 1);
        pool.grow(s, 65).unwrap();
        assert_eq!(pool.table(s).unwrap().len(), 2);
        assert_eq!(pool.free_pages(), 8);
    }

    #[test]
    fn oom_leaves_state_unchanged() {
        let mut pool = PagedPool::new(2, 64);
        let s = pool.admit();
        pool.grow(s, 128).unwrap();
        let err = pool.grow(s, 129).unwrap_err();
        assert_eq!(
            err,
            PagedOom {
                requested: 1,
                free: 0
            }
        );
        assert_eq!(pool.seq_len(s), Some(128));
        assert_eq!(pool.table(s).unwrap().len(), 2);
    }

    #[test]
    fn release_returns_pages() {
        let mut pool = PagedPool::new(4, 16);
        let a = pool.admit();
        let b = pool.admit();
        pool.grow(a, 40).unwrap(); // 3 pages
        pool.grow(b, 10).unwrap(); // 1 page
        assert_eq!(pool.free_pages(), 0);
        pool.release(a);
        assert_eq!(pool.free_pages(), 3);
        pool.grow(b, 60).unwrap();
        assert_eq!(pool.free_pages(), 0);
    }

    #[test]
    fn translate_is_consistent_with_tables() {
        let mut pool = PagedPool::new(8, 32);
        let s = pool.admit();
        pool.grow(s, 100).unwrap();
        let (p0, o0) = pool.translate(s, 0);
        let (p2, o2) = pool.translate(s, 95);
        assert_eq!(o0, 0);
        assert_eq!(o2, 95 % 32);
        assert_eq!(p0, pool.table(s).unwrap()[0]);
        assert_eq!(p2, pool.table(s).unwrap()[95 / 32]);
    }

    #[test]
    fn allocation_is_deterministic_lowest_first() {
        // Regardless of the order pages were released in, the next grow
        // always receives the lowest-numbered free pages — the property
        // that makes serve runs reproducible across processes.
        let mut pool = PagedPool::new(6, 8);
        let a = pool.admit();
        let b = pool.admit();
        let c = pool.admit();
        pool.grow(a, 16).unwrap(); // pages 0,1
        pool.grow(b, 16).unwrap(); // pages 2,3
        pool.grow(c, 16).unwrap(); // pages 4,5
        pool.release(c); // frees {4,5}
        pool.release(a); // frees {0,1} — out of allocation order
        let d = pool.admit();
        pool.grow(d, 32).unwrap();
        assert_eq!(
            pool.table(d).unwrap(),
            &[PageId(0), PageId(1), PageId(4), PageId(5)]
        );
    }

    #[test]
    fn adopt_shares_pages_and_release_frees_at_refcount_zero() {
        let mut pool = PagedPool::new(6, 16);
        let a = pool.admit();
        pool.grow(a, 48).unwrap(); // pages 0,1,2
        let table: Vec<Option<PageId>> = pool.table(a).unwrap().iter().map(|&p| Some(p)).collect();
        let b = pool.adopt(&table[..2], 64).unwrap(); // share 0,1 + fresh 3,4
        assert_eq!(
            pool.table(b).unwrap(),
            &[PageId(0), PageId(1), PageId(3), PageId(4)]
        );
        assert_eq!(pool.refcount(PageId(0)), 2);
        assert_eq!(pool.refcount(PageId(2)), 1);
        assert_eq!(pool.shared_pages(), 2);
        assert_eq!(pool.logical_pages(), 7);
        assert_eq!(pool.free_pages(), 1);
        // Releasing the sharer frees only its private pages.
        assert_eq!(pool.release(b), vec![PageId(3), PageId(4)]);
        assert_eq!(pool.refcount(PageId(0)), 1);
        assert_eq!(pool.free_pages(), 3);
        assert_eq!(pool.release(a), vec![PageId(0), PageId(1), PageId(2)]);
        assert_eq!(pool.free_pages(), 6);
    }

    #[test]
    fn adopt_oom_bumps_no_refcount_and_burns_no_id() {
        let mut pool = PagedPool::new(3, 16);
        let a = pool.admit();
        pool.grow(a, 32).unwrap(); // pages 0,1
        let shared = [Some(PageId(0))];
        let err = pool.adopt(&shared, 48).unwrap_err(); // needs 2 fresh, 1 free
        assert_eq!(
            err,
            PagedOom {
                requested: 2,
                free: 1
            }
        );
        assert_eq!(pool.refcount(PageId(0)), 1);
        let b = pool.adopt(&shared, 32).unwrap();
        assert_eq!(b.0, a.0 + 1, "failed adopt consumed a SeqId");
    }

    #[test]
    fn cow_swaps_one_slot_for_a_private_page() {
        let mut pool = PagedPool::new(4, 16);
        let a = pool.admit();
        pool.grow(a, 32).unwrap(); // pages 0,1
        let table: Vec<Option<PageId>> = pool.table(a).unwrap().iter().map(|&p| Some(p)).collect();
        let b = pool.adopt(&table, 32).unwrap();
        let (old, new) = pool.cow(b, 1).unwrap();
        assert_eq!((old, new), (PageId(1), PageId(2)));
        assert_eq!(pool.table(b).unwrap(), &[PageId(0), PageId(2)]);
        assert_eq!(pool.table(a).unwrap(), &[PageId(0), PageId(1)]);
        assert_eq!(pool.refcount(PageId(1)), 1);
        // With every page now singly held, another cow is a caller bug.
        pool.grow(a, 48).unwrap(); // page 3: pool full
        assert_eq!(pool.cow(b, 0).unwrap_err().requested, 1);
    }

    #[test]
    fn generations_count_frees() {
        let mut pool = PagedPool::new(2, 16);
        assert_eq!(pool.generation(PageId(0)), 0);
        let a = pool.admit();
        pool.grow(a, 16).unwrap();
        pool.release(a);
        assert_eq!(pool.generation(PageId(0)), 1);
        let b = pool.admit();
        pool.grow(b, 16).unwrap();
        assert_eq!(pool.generation(PageId(0)), 1, "allocation does not bump");
        pool.release(b);
        assert_eq!(pool.generation(PageId(0)), 2);
    }

    #[test]
    fn pinned_pages_survive_release_and_free_on_unpin() {
        let mut pool = PagedPool::new(4, 16);
        let a = pool.admit();
        pool.grow(a, 32).unwrap(); // pages 0,1
        pool.pin_page(PageId(0));
        assert!(pool.is_pinned(PageId(0)));
        assert_eq!(pool.refcount(PageId(0)), 2);
        // Pins are invisible to sharing accounting.
        assert_eq!(pool.seq_refcount(PageId(0)), 1);
        assert_eq!(pool.shared_pages(), 0);
        assert_eq!(pool.reclaimable_pages(), 0);
        // Releasing the only sequence keeps the pinned page allocated.
        assert_eq!(pool.release(a), vec![PageId(1)]);
        assert_eq!(pool.refcount(PageId(0)), 1);
        assert_eq!(pool.seq_refcount(PageId(0)), 0);
        assert_eq!(pool.reclaimable_pages(), 1);
        assert_eq!(pool.free_pages(), 3);
        let gen = pool.generation(PageId(0));
        // Unpinning the orphaned page frees it and bumps its generation.
        assert!(pool.unpin_page(PageId(0)));
        assert_eq!(pool.free_pages(), 4);
        assert_eq!(pool.generation(PageId(0)), gen + 1);
    }

    #[test]
    fn unpin_with_live_sharers_keeps_the_page() {
        let mut pool = PagedPool::new(4, 16);
        let a = pool.admit();
        pool.grow(a, 16).unwrap(); // page 0
        pool.pin_page(PageId(0));
        assert!(!pool.unpin_page(PageId(0)), "sequence still maps the page");
        assert_eq!(pool.refcount(PageId(0)), 1);
        assert_eq!(pool.free_pages(), 3);
    }

    #[test]
    fn budget_sizing() {
        // 1 MiB budget, 64-token pages, 160 B/token → 102 pages.
        let pool = PagedPool::with_budget(1048576.0, 64, 160.0);
        assert_eq!(pool.total_pages(), 102);
        assert_eq!(pool.page_tokens(), 64);
    }

    #[test]
    fn utilization_tracks_allocation() {
        let mut pool = PagedPool::new(10, 16);
        assert_eq!(pool.utilization(), 0.0);
        let s = pool.admit();
        pool.grow(s, 80).unwrap();
        assert!((pool.utilization() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn table_read_bytes_scale_with_pages() {
        let mut pool = PagedPool::new(100, 64);
        let s = pool.admit();
        pool.grow(s, 64 * 10).unwrap();
        assert_eq!(pool.table_read_bytes(s), 80.0);
    }
}
