//! Content-addressed radix index over pinned page runs — the tree half of
//! the prefix cache in [`crate::store::PagedKvStore`].
//!
//! Each node covers one **page run**: the smallest span of pages whose
//! token count is a whole number of packed `Nr` blocks (`lcm(Nr,
//! page_tokens)` tokens), so adopting a run never splits a packed block
//! across an adopted/private boundary. Nodes are keyed by a chain hash
//! (FNV-1a over every packed byte of every run up to and including this
//! one, seeded with the scheme and page geometry), which makes a node's
//! key a content address for the entire prefix it terminates — position
//! is inherent, two different prefixes of the same bytes-so-far share a
//! path, and a lookup is a walk from the roots.
//!
//! The index itself stores no payload bytes. It records which physical
//! pages hold each run (the store pins those pages so they survive their
//! sequences) together with the page generations observed at registration,
//! so a recycled or rewritten page is detected before anything adopts it.
//! The store additionally byte-verifies candidate runs against the frames
//! on adoption — a hash collision can therefore never alias pages.
//!
//! Eviction works on **subtrees**: when the store needs pages back it
//! repeatedly removes the least-recently-used maximal subtree in which no
//! page is mapped by any live sequence, returning every page of the
//! subtree to the caller for unpinning.

use crate::paged::PageId;
use std::collections::BTreeMap;

/// One page run in the index. See the [module docs](self) for the keying
/// and eviction rules.
#[derive(Clone, Debug)]
pub(crate) struct RadixNode {
    /// Chain hash of the whole prefix this run terminates.
    pub key: u64,
    /// Physical pages of the run, in table order.
    pub pages: Vec<PageId>,
    /// Pool generation of each page, observed at registration.
    pub gens: Vec<u64>,
    /// Packed payload bytes the run holds (all heads, K and V).
    pub bytes: usize,
    /// Parent node, `None` for a first-run root.
    parent: Option<usize>,
    /// Child runs by chain hash.
    children: BTreeMap<u64, usize>,
    /// Logical LRU clock value of the last lookup or registration touch.
    pub last_use: u64,
}

/// The radix tree arena. All bookkeeping is ordered (`BTreeMap`s, index
/// tie-breaks), so identical histories build identical trees and evict in
/// identical order — the property that keeps cached serve runs
/// reproducible bit for bit.
#[derive(Clone, Debug, Default)]
pub(crate) struct RadixIndex {
    nodes: Vec<Option<RadixNode>>,
    free: Vec<usize>,
    roots: BTreeMap<u64, usize>,
    clock: u64,
}

impl RadixIndex {
    /// The child of `parent` (or the root) keyed by `key`.
    pub fn child(&self, parent: Option<usize>, key: u64) -> Option<usize> {
        match parent {
            None => self.roots.get(&key).copied(),
            Some(p) => self.node(p).children.get(&key).copied(),
        }
    }

    /// Immutable node access.
    ///
    /// # Panics
    ///
    /// Panics on a dangling id — ids are only valid until their subtree is
    /// removed.
    pub fn node(&self, id: usize) -> &RadixNode {
        match self.nodes.get(id) {
            Some(Some(n)) => n,
            _ => panic!("dangling radix node id {id}"),
        }
    }

    /// Marks a node recently used.
    pub fn touch(&mut self, id: usize) {
        self.clock += 1;
        let clock = self.clock;
        match self.nodes.get_mut(id) {
            Some(Some(n)) => n.last_use = clock,
            _ => panic!("dangling radix node id {id}"),
        }
    }

    /// Inserts a new run under `parent` (or as a root) and returns its id.
    pub fn insert(
        &mut self,
        parent: Option<usize>,
        key: u64,
        pages: Vec<PageId>,
        gens: Vec<u64>,
        bytes: usize,
    ) -> usize {
        self.clock += 1;
        let node = RadixNode {
            key,
            pages,
            gens,
            bytes,
            parent,
            children: BTreeMap::new(),
            last_use: self.clock,
        };
        let id = match self.free.pop() {
            Some(slot) => {
                self.nodes[slot] = Some(node);
                slot
            }
            None => {
                self.nodes.push(Some(node));
                self.nodes.len() - 1
            }
        };
        match parent {
            None => {
                let prev = self.roots.insert(key, id);
                debug_assert!(prev.is_none(), "duplicate root key");
            }
            Some(p) => {
                let Some(Some(parent_node)) = self.nodes.get_mut(p) else {
                    panic!("dangling radix parent id {p}");
                };
                let prev = parent_node.children.insert(key, id);
                debug_assert!(prev.is_none(), "duplicate child key");
            }
        }
        id
    }

    /// Removes a node and its whole subtree, returning every page the
    /// subtree held (parent-first order) so the caller can unpin them.
    pub fn remove_subtree(&mut self, id: usize) -> Vec<PageId> {
        // Detach from the parent (or the root set) first.
        let (parent, key) = {
            let n = self.node(id);
            (n.parent, n.key)
        };
        match parent {
            None => {
                self.roots.remove(&key);
            }
            Some(p) => {
                if let Some(Some(parent_node)) = self.nodes.get_mut(p) {
                    parent_node.children.remove(&key);
                }
            }
        }
        let mut pages = Vec::new();
        let mut stack = vec![id];
        while let Some(cur) = stack.pop() {
            let Some(node) = self.nodes.get_mut(cur).and_then(Option::take) else {
                panic!("dangling radix node id {cur}");
            };
            pages.extend(node.pages);
            stack.extend(node.children.values().copied());
            self.free.push(cur);
        }
        pages
    }

    /// Whether every page of the subtree rooted at `id` satisfies
    /// `evictable`, together with the subtree's most recent use.
    fn subtree_info(&self, id: usize, evictable: &impl Fn(PageId) -> bool) -> (bool, u64) {
        let n = self.node(id);
        let mut clean = n.pages.iter().all(|&p| evictable(p));
        let mut recency = n.last_use;
        for &c in n.children.values() {
            let (child_clean, child_recency) = self.subtree_info(c, evictable);
            clean &= child_clean;
            recency = recency.max(child_recency);
        }
        (clean, recency)
    }

    /// Removes the least-recently-used **maximal** subtree in which every
    /// page satisfies `evictable`, returning its pages — or `None` when no
    /// such subtree exists. Recency of a subtree is its most recent use;
    /// ties break on the lower node id, keeping eviction deterministic.
    pub fn evict_lru_subtree(
        &mut self,
        evictable: &impl Fn(PageId) -> bool,
    ) -> Option<Vec<PageId>> {
        let mut best: Option<(u64, usize)> = None;
        let mut stack: Vec<usize> = self.roots.values().copied().collect();
        while let Some(id) = stack.pop() {
            let (clean, recency) = self.subtree_info(id, evictable);
            if clean {
                let better =
                    best.is_none_or(|(br, bid)| recency < br || (recency == br && id < bid));
                if better {
                    best = Some((recency, id));
                }
            } else {
                stack.extend(self.node(id).children.values().copied());
            }
        }
        best.map(|(_, id)| self.remove_subtree(id))
    }

    /// Number of live runs in the index.
    pub fn node_count(&self) -> usize {
        self.nodes.iter().flatten().count()
    }

    /// Every page the index currently holds, in arena order — the leak
    /// audit surface: this must equal the store's pinned-page set exactly.
    pub fn all_pages(&self) -> Vec<PageId> {
        self.nodes
            .iter()
            .flatten()
            .flat_map(|n| n.pages.iter().copied())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pages(ids: &[u32]) -> Vec<PageId> {
        ids.iter().map(|&p| PageId(p)).collect()
    }

    #[test]
    fn chain_walk_and_touch() {
        let mut idx = RadixIndex::default();
        let a = idx.insert(None, 10, pages(&[0, 1]), vec![0, 0], 100);
        let b = idx.insert(Some(a), 20, pages(&[2, 3]), vec![0, 0], 100);
        assert_eq!(idx.child(None, 10), Some(a));
        assert_eq!(idx.child(Some(a), 20), Some(b));
        assert_eq!(idx.child(Some(a), 99), None);
        assert_eq!(idx.child(None, 20), None);
        assert_eq!(idx.node_count(), 2);
        let before = idx.node(a).last_use;
        idx.touch(a);
        assert!(idx.node(a).last_use > before);
    }

    #[test]
    fn remove_subtree_collects_descendants_and_recycles_slots() {
        let mut idx = RadixIndex::default();
        let a = idx.insert(None, 1, pages(&[0]), vec![0], 1);
        let b = idx.insert(Some(a), 2, pages(&[1]), vec![0], 1);
        let _c = idx.insert(Some(b), 3, pages(&[2, 3]), vec![0, 0], 2);
        let other = idx.insert(None, 9, pages(&[7]), vec![0], 1);
        let mut removed = idx.remove_subtree(b);
        removed.sort();
        assert_eq!(removed, pages(&[1, 2, 3]));
        assert_eq!(idx.node_count(), 2);
        assert_eq!(idx.child(Some(a), 2), None);
        assert_eq!(idx.child(None, 9), Some(other));
        // Freed arena slots are reused.
        let d = idx.insert(Some(a), 4, pages(&[5]), vec![0], 1);
        assert!(d == b || d < idx.nodes.len());
        assert_eq!(idx.child(Some(a), 4), Some(d));
    }

    #[test]
    fn lru_eviction_takes_the_coldest_clean_subtree() {
        let mut idx = RadixIndex::default();
        let a = idx.insert(None, 1, pages(&[0]), vec![0], 1); // cold chain
        let _a2 = idx.insert(Some(a), 2, pages(&[1]), vec![0], 1);
        let b = idx.insert(None, 5, pages(&[2]), vec![0], 1); // warm chain
        idx.touch(b);
        // Everything evictable: the coldest maximal subtree is chain `a`.
        let mut evicted = idx.evict_lru_subtree(&|_| true).unwrap();
        evicted.sort();
        assert_eq!(evicted, pages(&[0, 1]));
        assert_eq!(idx.node_count(), 1);
        // Only `b` remains; evicting again removes it, then nothing.
        assert_eq!(idx.evict_lru_subtree(&|_| true).unwrap(), pages(&[2]));
        assert!(idx.evict_lru_subtree(&|_| true).is_none());
    }

    #[test]
    fn referenced_pages_pin_their_ancestors_out_of_eviction() {
        let mut idx = RadixIndex::default();
        let a = idx.insert(None, 1, pages(&[0]), vec![0], 1);
        let b = idx.insert(Some(a), 2, pages(&[1]), vec![0], 1);
        let _deep = idx.insert(Some(b), 3, pages(&[2]), vec![0], 1);
        // Page 1 (middle run) is still mapped by a sequence: only the
        // deep run below it is evictable — not the root, not the chain.
        let evicted = idx.evict_lru_subtree(&|p| p != PageId(1)).unwrap();
        assert_eq!(evicted, pages(&[2]));
        assert_eq!(idx.node_count(), 2);
        // Now nothing below the referenced run remains evictable except
        // nothing — the referenced run blocks its whole subtree.
        assert!(idx.evict_lru_subtree(&|p| p != PageId(1)).is_none());
    }

    #[test]
    fn all_pages_reports_the_full_holding() {
        let mut idx = RadixIndex::default();
        let a = idx.insert(None, 1, pages(&[4, 5]), vec![0, 0], 1);
        idx.insert(Some(a), 2, pages(&[6]), vec![0], 1);
        let mut all = idx.all_pages();
        all.sort();
        assert_eq!(all, pages(&[4, 5, 6]));
    }
}
