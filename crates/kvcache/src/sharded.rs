//! Multi-device KV storage: per-device [`PagedKvStore`] page arenas behind
//! one [`Placement`].
//!
//! [`ShardedKvStore`] is the storage half of tensor-parallel serving. KV
//! heads are partitioned across `N` simulated devices
//! ([`Placement`]: head-modulo or head-contiguous); each device owns a
//! complete, independent [`PagedKvStore`] — its own deterministic
//! [`crate::PagedPool`], its own page capacity, its own eviction
//! accounting — holding only the heads placed on it. A sequence is
//! resident on **every** device (each holds that sequence's share of the
//! heads), so admission reserves pages on all devices atomically and
//! eviction returns pages to every pool.
//!
//! # Sharding invariant
//!
//! For any append/prefill history, the blocks and residual window of
//! global head `h` gathered from the owning device are **bitwise
//! identical** to what a single-device [`PagedKvStore`] (or contiguous
//! [`QuantizedKvCache`]) holds for that head after the same history:
//! placement moves data between pools but never changes a byte of it.
//! Because every per-device pool is deterministic and placement is a pure
//! function, an N-device run assigns identical physical pages in every
//! process — the property the serve layer's bitwise-reproducibility rests
//! on. [`ShardedKvStore::matches_cache`] checks the invariant; the serve
//! property tests drive it for arbitrary device counts, partitionings,
//! page sizes, and eviction orders.

use crate::block::PackedBlock;
use crate::cache::{CacheConfig, CacheError, QuantizedKvCache};
use crate::codec::BlockCodec;
use crate::matrix::{TokenMatrix, TokenRows};
use crate::paged::{PagedOom, SeqId};
use crate::placement::{DeviceId, Placement};
use crate::store::{PagedKvStore, PrefixAdmit, PrefixCacheStats, StoreError, SwappedSeq};

/// Per-device occupancy/eviction snapshot (the storage half of the serve
/// layer's per-device metrics).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DeviceKvStats {
    /// The device.
    pub device: DeviceId,
    /// KV heads resident on this device.
    pub heads: usize,
    /// Page capacity of this device's pool.
    pub total_pages: usize,
    /// Pages currently free on this device.
    pub free_pages: usize,
    /// Fraction of this device's pages in use (page occupancy).
    pub utilization: f64,
    /// Sequences evicted from this device over the store's lifetime.
    pub evicted_seqs: u64,
    /// Pages those evictions returned to this device's pool.
    pub evicted_pages: u64,
}

/// A sequence swapped out of every device of a [`ShardedKvStore`]: one
/// [`SwappedSeq`] per device (each holding that device's share of the
/// heads). Produced by [`ShardedKvStore::swap_out`]; restored bitwise by
/// [`ShardedKvStore::swap_in`].
#[derive(Clone, Debug)]
pub struct SwappedShardedSeq {
    per_device: Vec<SwappedSeq>,
}

impl SwappedShardedSeq {
    /// Devices the blob spans.
    pub fn devices(&self) -> usize {
        self.per_device.len()
    }

    /// Logical tokens held in the blob (identical on every device).
    pub fn len(&self) -> usize {
        self.per_device[0].len()
    }

    /// `true` when the blob holds no tokens.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total host bytes across all device shares — the traffic one swap
    /// direction moves over the host link.
    pub fn host_bytes(&self) -> usize {
        self.per_device.iter().map(SwappedSeq::host_bytes).sum()
    }

    /// Host bytes each device's share contributes, indexed by device —
    /// what a topology-aware swap price needs to route each share over
    /// its own island's host link.
    pub fn host_bytes_per_device(&self) -> Vec<f64> {
        self.per_device
            .iter()
            .map(|s| s.host_bytes() as f64)
            .collect()
    }

    /// Pages [`ShardedKvStore::swap_in`] must reserve **per device**,
    /// given the store's page size (identical on every device, since all
    /// devices mirror the same reservation).
    pub fn pages_needed(&self, page_tokens: usize) -> usize {
        self.per_device
            .iter()
            .map(|b| b.pages_needed(page_tokens))
            .max()
            .unwrap_or(0)
    }

    /// Verifies every device share against its recorded checksum.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::CorruptBlob`] when any share's payload
    /// changed since swap-out.
    pub fn verify(&self) -> Result<(), StoreError> {
        for share in &self.per_device {
            share.verify()?;
        }
        Ok(())
    }

    /// Flips one payload bit of device `device`'s share (taken modulo the
    /// device count) **without** updating its checksum — the tamper hook
    /// the fault injector and the corruption tests use. See
    /// [`SwappedSeq::flip_bit`].
    pub fn flip_bit(&mut self, device: usize, bit: u64) {
        if self.per_device.is_empty() {
            return;
        }
        let d = device % self.per_device.len();
        self.per_device[d].flip_bit(bit);
    }
}

/// KV-head-sharded paged storage over `N` simulated devices — see the
/// [module docs](self).
///
/// # Examples
///
/// ```
/// use bd_kvcache::{
///     CacheConfig, PackLayout, Partitioning, Placement, QuantScheme, ReferenceCodec,
///     ShardedKvStore,
/// };
///
/// let cfg = CacheConfig::new(16, QuantScheme::kc4(), PackLayout::sm80_default());
/// let placement = Placement::new(2, Partitioning::HeadModulo, 4);
/// let mut store = ShardedKvStore::new(cfg, placement, 64, 32);
/// let seq = store.admit(100).unwrap(); // 100 tokens reserved on BOTH devices
/// let row = vec![0.5f32; 16];
/// let rows = vec![row; 4]; // one K and V row per global head
/// store
///     .append_step(seq, &rows, &rows, &ReferenceCodec)
///     .unwrap();
/// assert_eq!(store.seq_len(seq), Some(1));
/// store.evict(seq);
/// assert_eq!(store.free_pages(), 2 * 64);
/// ```
#[derive(Clone, Debug)]
pub struct ShardedKvStore {
    placement: Placement,
    devices: Vec<PagedKvStore>,
    evicted_seqs: Vec<u64>,
    evicted_pages: Vec<u64>,
}

impl ShardedKvStore {
    /// Creates a sharded store: one [`PagedKvStore`] of `pages_per_device`
    /// pages (`page_tokens` tokens each) per placement device, each holding
    /// that device's share of `placement.heads()` KV heads.
    ///
    /// # Panics
    ///
    /// Panics if `page_tokens` is zero.
    pub fn new(
        config: CacheConfig,
        placement: Placement,
        pages_per_device: usize,
        page_tokens: usize,
    ) -> Self {
        let devices = (0..placement.devices())
            .map(|d| {
                let heads = placement.heads_on(DeviceId(d as u32));
                PagedKvStore::new(config, heads, pages_per_device, page_tokens)
            })
            .collect();
        let n = placement.devices();
        ShardedKvStore {
            placement,
            devices,
            evicted_seqs: vec![0; n],
            evicted_pages: vec![0; n],
        }
    }

    /// The placement mapping heads to devices.
    pub fn placement(&self) -> &Placement {
        &self.placement
    }

    /// Number of devices.
    pub fn devices(&self) -> usize {
        self.devices.len()
    }

    /// Total (global) KV heads per sequence.
    pub fn heads(&self) -> usize {
        self.placement.heads()
    }

    /// The shared cache configuration.
    pub fn config(&self) -> &CacheConfig {
        self.devices[0].config()
    }

    /// Tokens per page (identical on every device).
    pub fn page_tokens(&self) -> usize {
        self.devices[0].page_tokens()
    }

    /// One device's local store (read-only) — what a device-pinned worker
    /// sees.
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range device.
    pub fn device(&self, d: DeviceId) -> &PagedKvStore {
        &self.devices[d.0 as usize]
    }

    /// Aggregate free pages across all devices.
    pub fn free_pages(&self) -> usize {
        self.devices.iter().map(PagedKvStore::free_pages).sum()
    }

    /// Aggregate page capacity across all devices.
    pub fn total_pages(&self) -> usize {
        self.devices.iter().map(PagedKvStore::total_pages).sum()
    }

    /// Aggregate fraction of pages in use.
    pub fn utilization(&self) -> f64 {
        let total = self.total_pages();
        if total == 0 {
            0.0
        } else {
            1.0 - self.free_pages() as f64 / total as f64
        }
    }

    /// Monotone count of copy-on-write breaks summed over every device
    /// since this store was built (resets when the store is rebuilt, e.g.
    /// after a device loss). See [`PagedKvStore::cow_breaks`].
    pub fn cow_breaks(&self) -> usize {
        self.devices.iter().map(PagedKvStore::cow_breaks).sum()
    }

    /// Page-sharing snapshot summed over every device.
    pub fn sharing_stats(&self) -> crate::store::KvSharingStats {
        let mut stats = crate::store::KvSharingStats::default();
        for dev in &self.devices {
            stats.absorb(dev.sharing_stats());
        }
        stats
    }

    /// Per-device occupancy and eviction accounting.
    pub fn device_stats(&self, d: DeviceId) -> DeviceKvStats {
        let s = &self.devices[d.0 as usize];
        DeviceKvStats {
            device: d,
            heads: s.heads(),
            total_pages: s.total_pages(),
            free_pages: s.free_pages(),
            utilization: s.utilization(),
            evicted_seqs: self.evicted_seqs[d.0 as usize],
            evicted_pages: self.evicted_pages[d.0 as usize],
        }
    }

    /// Number of resident sequences (identical on every device).
    pub fn resident(&self) -> usize {
        self.devices[0].resident()
    }

    /// Fails fast when any device cannot supply `need` pages, so the
    /// all-device operations below never start a reservation they would
    /// have to roll back. (A rollback via `evict` could not restore the
    /// per-device id counters, so it would burn a [`SeqId`] on the devices
    /// that had already admitted — diverging them from a failure-free
    /// history and from the single-device store.)
    fn preflight_pages(&self, need: usize) -> Result<(), PagedOom> {
        for dev in &self.devices {
            if need > dev.free_pages() {
                return Err(PagedOom {
                    requested: need,
                    free: dev.free_pages(),
                });
            }
        }
        Ok(())
    }

    /// Admits a new sequence on **every** device, reserving pages for
    /// `reserve_tokens` tokens per device up front. The reservation is
    /// atomic: the page budget is pre-checked on every device before any
    /// pool is touched, so on failure nothing is admitted anywhere and no
    /// device's [`SeqId`] counter advances — a failed admit leaves every
    /// device in the exact state of a history without the attempt.
    ///
    /// Every per-device pool sees the identical admit/evict order, so all
    /// devices assign the same [`SeqId`]; that shared id is returned and
    /// addresses the sequence on every device.
    ///
    /// # Errors
    ///
    /// Returns [`PagedOom`] when any device cannot cover the reservation.
    pub fn admit(&mut self, reserve_tokens: usize) -> Result<SeqId, PagedOom> {
        self.preflight_pages(reserve_tokens.div_ceil(self.page_tokens()))?;
        let ids: Vec<SeqId> = self
            .devices
            .iter_mut()
            .map(|dev| {
                dev.admit(reserve_tokens)
                    .unwrap_or_else(|_| unreachable!("reservation pre-checked on every device"))
            })
            .collect();
        let id = ids[0];
        debug_assert!(
            ids.iter().all(|&i| i == id),
            "device pools diverged on SeqId assignment"
        );
        Ok(id)
    }

    /// `true` when [`ShardedKvStore::fork`] at `at_token` would succeed on
    /// residency/boundary grounds (identical on every device — sequences
    /// mirror their token history everywhere).
    pub fn can_fork(&self, parent: SeqId, at_token: usize) -> bool {
        self.devices[0].can_fork(parent, at_token)
    }

    /// Pages a [`ShardedKvStore::fork`] would newly allocate **per
    /// device**, or `None` when the fork is invalid. Identical on every
    /// device, since page math depends only on token counts.
    pub fn fork_new_pages(
        &self,
        parent: SeqId,
        at_token: usize,
        reserve_tokens: usize,
    ) -> Option<usize> {
        self.devices[0].fork_new_pages(parent, at_token, reserve_tokens)
    }

    /// Forks a child sequence off `parent` on **every** device atomically:
    /// each device aliases its share of the parent's prefix pages
    /// copy-on-write and deep-copies its residual window, exactly as
    /// [`PagedKvStore::fork`]. The private-page budget is pre-checked on
    /// every device before any pool is touched, so on failure nothing
    /// changes anywhere and no [`SeqId`] is burned. All devices assign the
    /// same child id, which is returned.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::ForkBoundary`] / [`StoreError::UnknownSeq`]
    /// exactly as the per-device fork, and [`StoreError::Oom`] when any
    /// device cannot supply the child's private pages.
    pub fn fork(
        &mut self,
        parent: SeqId,
        at_token: usize,
        reserve_tokens: usize,
    ) -> Result<SeqId, StoreError> {
        let Some(need) = self.fork_new_pages(parent, at_token, reserve_tokens) else {
            // Delegate to the per-device fork for the precise error.
            return match self.devices[0].fork(parent, at_token, reserve_tokens) {
                Err(e) => Err(e),
                Ok(_) => unreachable!("fork_new_pages said invalid"),
            };
        };
        self.preflight_pages(need).map_err(StoreError::Oom)?;
        let ids: Vec<SeqId> = self
            .devices
            .iter_mut()
            .map(|dev| {
                dev.fork(parent, at_token, reserve_tokens)
                    .unwrap_or_else(|_| unreachable!("fork pre-checked on every device"))
            })
            .collect();
        let id = ids[0];
        debug_assert!(
            ids.iter().all(|&i| i == id),
            "device pools diverged on SeqId assignment"
        );
        Ok(id)
    }

    /// Marks a sequence finished on every device.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::UnknownSeq`] for a non-resident sequence.
    pub fn seal(&mut self, seq: SeqId) -> Result<(), StoreError> {
        for dev in &mut self.devices {
            dev.seal(seq)?;
        }
        Ok(())
    }

    /// Releases a sequence from every device, returning its pages to each
    /// per-device pool and updating the eviction accounting. Unknown
    /// sequences are ignored.
    pub fn evict(&mut self, seq: SeqId) {
        for (d, dev) in self.devices.iter_mut().enumerate() {
            let free_before = dev.free_pages();
            let was_resident = dev.seq_len(seq).is_some();
            dev.evict(seq);
            if was_resident {
                self.evicted_seqs[d] += 1;
                self.evicted_pages[d] += (dev.free_pages() - free_before) as u64;
            }
        }
    }

    /// Swaps a sequence out of **every** device at once: each device
    /// serializes its share of the heads into a [`SwappedSeq`] and frees
    /// its pages, so after the call the sequence holds no pages anywhere.
    /// The operation is atomic — the residency check happens up front and
    /// swap-out itself cannot fail, so either every device swaps or none
    /// does.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::UnknownSeq`] for a non-resident sequence (and
    /// changes nothing on any device).
    pub fn swap_out(&mut self, seq: SeqId) -> Result<SwappedShardedSeq, StoreError> {
        if self.seq_len(seq).is_none() {
            return Err(StoreError::UnknownSeq(seq));
        }
        let per_device = self
            .devices
            .iter_mut()
            .map(|dev| {
                dev.swap_out(seq)
                    .unwrap_or_else(|_| unreachable!("resident on every device"))
            })
            .collect();
        Ok(SwappedShardedSeq { per_device })
    }

    /// Pages a [`ShardedKvStore::swap_in`] of `blob` would **newly**
    /// allocate per device given current residency — blob pages whose
    /// shared prefix is still resident re-share instead of re-reserving
    /// (the worst device governs, though the counts are identical in
    /// practice).
    pub fn swap_in_new_pages(&self, blob: &SwappedShardedSeq) -> usize {
        self.devices
            .iter()
            .zip(&blob.per_device)
            .map(|(dev, b)| dev.swap_in_new_pages(b))
            .max()
            .unwrap_or(0)
    }

    /// Swaps a blob back in on **every** device atomically: the page
    /// budget — only the pages not re-shared from a still-resident prefix
    /// — is pre-checked on each device before any pool is touched, so on
    /// failure nothing changes anywhere (and, as with
    /// [`ShardedKvStore::admit`], no [`SeqId`] is burned). All devices
    /// assign the same new id, which is returned.
    ///
    /// # Errors
    ///
    /// - [`StoreError::DeviceCount`] when the blob spans a different
    ///   device count than the store (e.g. it predates a device loss and
    ///   the placement rebuild that followed).
    /// - [`StoreError::CorruptBlob`] when **any** device share fails its
    ///   integrity check — verified across all devices before any pool is
    ///   touched, so a corrupt blob changes nothing anywhere.
    /// - [`StoreError::Oom`] when any device cannot cover the blob's page
    ///   reservation.
    pub fn swap_in(&mut self, blob: &SwappedShardedSeq) -> Result<SeqId, StoreError> {
        if blob.per_device.len() != self.devices.len() {
            return Err(StoreError::DeviceCount {
                got: blob.per_device.len(),
                expected: self.devices.len(),
            });
        }
        blob.verify()?;
        for (dev, b) in self.devices.iter().zip(&blob.per_device) {
            let need = dev.swap_in_new_pages(b);
            if need > dev.free_pages() {
                return Err(StoreError::Oom(PagedOom {
                    requested: need,
                    free: dev.free_pages(),
                }));
            }
        }
        let ids: Vec<SeqId> = self
            .devices
            .iter_mut()
            .zip(&blob.per_device)
            .map(|(dev, b)| {
                dev.swap_in(b)
                    .unwrap_or_else(|_| unreachable!("reservation pre-checked on every device"))
            })
            .collect();
        let id = ids[0];
        debug_assert!(
            ids.iter().all(|&i| i == id),
            "device pools diverged on SeqId assignment"
        );
        Ok(id)
    }

    /// Logical token count of a sequence (identical on every device).
    pub fn seq_len(&self, seq: SeqId) -> Option<usize> {
        self.devices[0].seq_len(seq)
    }

    /// Tokens currently in the sequence's FP16 residual window.
    ///
    /// # Panics
    ///
    /// Panics on a non-resident sequence.
    pub fn residual_len(&self, seq: SeqId) -> usize {
        self.devices[0].residual_len(seq)
    }

    /// The residual FP16 window of one **global** head, read from its
    /// owning device.
    ///
    /// # Panics
    ///
    /// Panics on a non-resident sequence or bad head index.
    pub fn residual(&self, seq: SeqId, head: usize) -> (&TokenMatrix, &TokenMatrix) {
        let d = self.placement.device_of(head);
        self.devices[d.0 as usize].residual(seq, self.placement.local_index(head))
    }

    /// Gathers one **global** head's packed blocks through its owning
    /// device's page table, oldest first. By the sharding invariant the
    /// result equals the single-device gather bitwise.
    ///
    /// # Panics
    ///
    /// Panics on a non-resident sequence or bad head index.
    pub fn packed_blocks(&self, seq: SeqId, head: usize) -> Vec<&PackedBlock> {
        let d = self.placement.device_of(head);
        self.devices[d.0 as usize].packed_blocks(seq, self.placement.local_index(head))
    }

    /// Longest run of leading packed blocks every listed sequence reads
    /// from the same physical pages **on one device** — the cascade
    /// group boundary for units routed to that device (see
    /// [`PagedKvStore::shared_block_run`]). Page tables are per-sequence,
    /// not per-head, so one run covers every head homed on the device.
    pub fn shared_block_run(&self, device: DeviceId, seqs: &[SeqId]) -> usize {
        self.devices[device.0 as usize].shared_block_run(seqs)
    }

    /// Splits per-global-head rows into per-device row groups, in local
    /// slot order.
    fn scatter<'a, R>(&self, rows: &'a [R]) -> Vec<Vec<&'a R>> {
        let mut out: Vec<Vec<&R>> = (0..self.devices.len()).map(|_| Vec::new()).collect();
        for (head, row) in rows.iter().enumerate() {
            out[self.placement.device_of(head).0 as usize].push(row);
        }
        out
    }

    /// Appends one decode-step token: one K/V row per **global** head,
    /// scattered to each head's owning device.
    ///
    /// Returns `true` when the append flushed a packed block.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError`] on shape mismatch, a sealed or unknown
    /// sequence, or pool exhaustion on any device.
    pub fn append_step<R: AsRef<[f32]>>(
        &mut self,
        seq: SeqId,
        k_rows: &[R],
        v_rows: &[R],
        codec: &impl BlockCodec,
    ) -> Result<bool, StoreError> {
        for got in [k_rows.len(), v_rows.len()] {
            if got != self.heads() {
                return Err(StoreError::HeadCount {
                    got,
                    expected: self.heads(),
                });
            }
        }
        let k_by_dev = self.scatter(k_rows);
        let v_by_dev = self.scatter(v_rows);
        let mut flushed = false;
        for (dev, (k, v)) in self.devices.iter_mut().zip(k_by_dev.iter().zip(&v_by_dev)) {
            flushed |= dev.append_step(seq, k, v, codec)?;
        }
        Ok(flushed)
    }

    /// Bulk-loads a prompt for an empty sequence: one `tokens × dim`
    /// matrix per **global** head, scattered to owning devices.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError`] on shape mismatch, unknown/sealed/non-empty
    /// sequence, or pool exhaustion on any device.
    pub fn prefill<K, V>(
        &mut self,
        seq: SeqId,
        k: &[K],
        v: &[V],
        codec: &impl BlockCodec,
    ) -> Result<(), StoreError>
    where
        K: TokenRows,
        V: TokenRows,
    {
        for got in [k.len(), v.len()] {
            if got != self.heads() {
                return Err(StoreError::HeadCount {
                    got,
                    expected: self.heads(),
                });
            }
        }
        let k_by_dev = self.scatter(k);
        let v_by_dev = self.scatter(v);
        for (dev, (dk, dv)) in self.devices.iter_mut().zip(k_by_dev.iter().zip(&v_by_dev)) {
            dev.prefill(seq, dk, dv, codec)?;
        }
        Ok(())
    }

    /// Enables or disables the content-addressed prefix cache on **every**
    /// device at once. Disabling drops each device's radix index and
    /// returns its cache-held pages to the pools — see
    /// [`PagedKvStore::set_prefix_cache`].
    pub fn set_prefix_cache(&mut self, enabled: bool) {
        for dev in &mut self.devices {
            dev.set_prefix_cache(enabled);
        }
    }

    /// Whether the prefix cache is enabled (identical on every device —
    /// the toggle is all-device atomic).
    pub fn prefix_cache_enabled(&self) -> bool {
        self.devices[0].prefix_cache_enabled()
    }

    /// Lifetime prefix-cache counters summed over every device.
    pub fn prefix_cache_stats(&self) -> PrefixCacheStats {
        let mut stats = PrefixCacheStats::default();
        for dev in &self.devices {
            stats.absorb(dev.prefix_cache_stats());
        }
        stats
    }

    /// Pages the prefix caches currently hold pinned, summed over every
    /// device.
    pub fn prefix_cached_pages(&self) -> usize {
        self.devices
            .iter()
            .map(PagedKvStore::prefix_cached_pages)
            .sum()
    }

    /// Admits **and** prefills a sequence on **every** device in one step,
    /// adopting cached prefix pages zero-copy where a device's radix index
    /// matches — the content-addressed twin of [`ShardedKvStore::admit`] +
    /// [`ShardedKvStore::prefill`]. Shapes and the page budget are
    /// pre-checked on every device before any pool is touched, so on
    /// failure nothing is admitted anywhere and no [`SeqId`] is burned.
    /// All devices assign the same id, which is returned together with the
    /// adoption totals summed over devices.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError`] on shape mismatch, and [`StoreError::Oom`]
    /// when any device cannot cover `max(reserve_tokens, prompt_len)`.
    ///
    /// # Panics
    ///
    /// Panics if `k`/`v` per-head token counts disagree.
    pub fn admit_prefill_cached<K, V>(
        &mut self,
        k: &[K],
        v: &[V],
        reserve_tokens: usize,
        codec: &impl BlockCodec,
    ) -> Result<(SeqId, PrefixAdmit), StoreError>
    where
        K: TokenRows,
        V: TokenRows,
    {
        for got in [k.len(), v.len()] {
            if got != self.heads() {
                return Err(StoreError::HeadCount {
                    got,
                    expected: self.heads(),
                });
            }
        }
        // Validate shapes up front: the per-device calls below must be
        // infallible so a failure never admits on a subset of devices.
        let len = k[0].token_count();
        let dim = self.config().dim;
        for (hk, hv) in k.iter().zip(v) {
            assert_eq!(hk.token_count(), len, "per-head prompt length mismatch");
            assert_eq!(hv.token_count(), len, "per-head prompt length mismatch");
            for t in 0..len {
                for row in [hk.token_row(t), hv.token_row(t)] {
                    if row.len() != dim {
                        return Err(StoreError::Cache(CacheError::DimMismatch {
                            expected: dim,
                            got: row.len(),
                        }));
                    }
                }
            }
        }
        let reserve = reserve_tokens.max(len);
        self.preflight_pages(reserve.div_ceil(self.page_tokens()))
            .map_err(StoreError::Oom)?;
        let k_by_dev = self.scatter(k);
        let v_by_dev = self.scatter(v);
        let mut admit = PrefixAdmit::default();
        let ids: Vec<SeqId> = self
            .devices
            .iter_mut()
            .zip(k_by_dev.iter().zip(&v_by_dev))
            .map(|(dev, (dk, dv))| {
                let (id, dev_admit) = dev
                    .admit_prefill_cached(dk, dv, reserve_tokens, codec)
                    .unwrap_or_else(|_| unreachable!("pre-checked on every device"));
                admit.absorb(dev_admit);
                id
            })
            .collect();
        let id = ids[0];
        debug_assert!(
            ids.iter().all(|&i| i == id),
            "device pools diverged on SeqId assignment"
        );
        Ok((id, admit))
    }

    /// Checks the sharding invariant against a contiguous cache that
    /// replayed the same history: for every global head `h`, the blocks
    /// gathered from `h`'s owning device must equal
    /// `cache.packed_blocks(cache_head_base + h)` bitwise, and the
    /// residual windows must match exactly.
    pub fn matches_cache(
        &self,
        seq: SeqId,
        cache: &QuantizedKvCache,
        cache_head_base: usize,
    ) -> bool {
        let Some(len) = self.seq_len(seq) else {
            return false;
        };
        for head in 0..self.heads() {
            let ch = cache_head_base + head;
            if len != cache.len(ch) {
                return false;
            }
            let sharded = self.packed_blocks(seq, head);
            let contiguous = cache.packed_blocks(ch);
            if sharded.len() != contiguous.len()
                || sharded.iter().zip(contiguous).any(|(a, b)| **a != *b)
            {
                return false;
            }
            let (rk, rv) = cache.residual(ch);
            let (sk, sv) = self.residual(seq, head);
            if sk != rk || sv != rv {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::ReferenceCodec;
    use crate::layout::PackLayout;
    use crate::placement::Partitioning;
    use crate::scheme::QuantScheme;

    fn cfg(dim: usize) -> CacheConfig {
        CacheConfig::new(dim, QuantScheme::kc4(), PackLayout::sm80_default())
    }

    fn row(dim: usize, t: usize, salt: usize) -> Vec<f32> {
        (0..dim)
            .map(|c| ((t * dim + c + salt * 977) as f32 * 0.37).sin())
            .collect()
    }

    /// Appends `n` tokens to the sharded store and a contiguous twin.
    fn mirrored_appends(
        store: &mut ShardedKvStore,
        seq: SeqId,
        n: usize,
        salt: usize,
    ) -> QuantizedKvCache {
        let dim = store.config().dim;
        let heads = store.heads();
        let mut cache = QuantizedKvCache::new(*store.config(), heads);
        for t in 0..n {
            let k: Vec<Vec<f32>> = (0..heads).map(|h| row(dim, t, salt + h)).collect();
            let v: Vec<Vec<f32>> = (0..heads).map(|h| row(dim, t + 500, salt + h)).collect();
            store.append_step(seq, &k, &v, &ReferenceCodec).unwrap();
            for h in 0..heads {
                cache
                    .append_token(h, &k[h], &v[h], &ReferenceCodec)
                    .unwrap();
            }
        }
        cache
    }

    #[test]
    fn sharded_matches_contiguous_for_all_partitionings() {
        for devices in [1, 2, 3, 4] {
            for part in [Partitioning::HeadModulo, Partitioning::HeadContiguous] {
                let placement = Placement::new(devices, part, 4);
                let mut store = ShardedKvStore::new(cfg(16), placement, 64, 48);
                let seq = store.admit(0).unwrap();
                let cache = mirrored_appends(&mut store, seq, 128 + 37, 0);
                assert!(
                    store.matches_cache(seq, &cache, 0),
                    "devices={devices} {part}"
                );
                assert_eq!(store.residual_len(seq), 37);
            }
        }
    }

    #[test]
    fn prefill_scatters_heads_to_owning_devices() {
        let placement = Placement::new(3, Partitioning::HeadModulo, 5);
        let mut store = ShardedKvStore::new(cfg(16), placement, 32, 64);
        let seq = store.admit(0).unwrap();
        let len = 128 + 11;
        let k: Vec<TokenMatrix> = (0..5)
            .map(|h| TokenMatrix::from_fn(len, 16, |t, c| ((h * 7 + t * 16 + c) as f32).sin()))
            .collect();
        let v: Vec<TokenMatrix> = (0..5)
            .map(|h| TokenMatrix::from_fn(len, 16, |t, c| ((h * 13 + t * 16 + c) as f32).cos()))
            .collect();
        store.prefill(seq, &k, &v, &ReferenceCodec).unwrap();
        let mut cache = QuantizedKvCache::new(cfg(16), 5);
        for h in 0..5 {
            cache.prefill(h, &k[h], &v[h], &ReferenceCodec).unwrap();
        }
        assert!(store.matches_cache(seq, &cache, 0));
        // Each device holds only its share of the heads.
        assert_eq!(store.device(DeviceId(0)).heads(), 2);
        assert_eq!(store.device(DeviceId(2)).heads(), 1);
    }

    #[test]
    fn admission_reserves_on_every_device_and_oom_is_atomic() {
        let placement = Placement::new(2, Partitioning::HeadContiguous, 2);
        let mut store = ShardedKvStore::new(cfg(16), placement, 4, 32);
        // 128 tokens = 4 pages on EACH device.
        let seq = store.admit(128).unwrap();
        assert_eq!(store.free_pages(), 0);
        assert_eq!(store.device_stats(DeviceId(0)).free_pages, 0);
        assert_eq!(store.device_stats(DeviceId(1)).free_pages, 0);
        let err = store.admit(1).unwrap_err();
        assert_eq!(err.requested, 1);
        assert_eq!(store.resident(), 1);
        store.evict(seq);
        assert_eq!(store.free_pages(), 8);
        // The failed admit left every pool clean: a fresh reservation of
        // the full capacity succeeds.
        assert!(store.admit(128).is_ok());
    }

    #[test]
    fn failed_admit_keeps_seq_id_streams_in_lockstep_with_single_device() {
        // The same admit/evict history — including a failed admit — must
        // hand out identical SeqIds on a sharded store and a single-device
        // store.
        let placement = Placement::new(2, Partitioning::HeadModulo, 2);
        let mut sharded = ShardedKvStore::new(cfg(16), placement, 4, 32);
        let mut single = crate::store::PagedKvStore::new(cfg(16), 2, 4, 32);
        let a = sharded.admit(64).unwrap();
        assert_eq!(single.admit(64).unwrap(), a);
        let err = sharded.admit(128).unwrap_err(); // needs 4, 2 free
        assert_eq!(err, single.admit(128).unwrap_err());
        assert_eq!(
            err,
            PagedOom {
                requested: 4,
                free: 2
            }
        );
        // Rollback was total: every device still has its 2 free pages.
        for d in [DeviceId(0), DeviceId(1)] {
            assert_eq!(sharded.device_stats(d).free_pages, 2);
        }
        let b = sharded.admit(32).unwrap();
        assert_eq!(single.admit(32).unwrap(), b);
        assert_eq!(b.0, a.0 + 1, "failed admit burned a SeqId");
        sharded.evict(a);
        single.evict(a);
        let c = sharded.admit(96).unwrap();
        assert_eq!(single.admit(96).unwrap(), c);
    }

    #[test]
    fn swap_round_trip_is_bitwise_across_devices() {
        for devices in [1, 2, 3, 4] {
            for part in [Partitioning::HeadModulo, Partitioning::HeadContiguous] {
                let placement = Placement::new(devices, part, 4);
                let mut store = ShardedKvStore::new(cfg(16), placement, 64, 48);
                let free_before = store.free_pages();
                let seq = store.admit(300).unwrap();
                let cache = mirrored_appends(&mut store, seq, 128 + 37, 0);
                let blob = store.swap_out(seq).unwrap();
                assert_eq!(blob.devices(), store.devices());
                assert_eq!(blob.len(), 128 + 37);
                assert!(blob.host_bytes() > 0);
                assert_eq!(
                    store.free_pages(),
                    free_before,
                    "devices={devices} {part}: swap-out left pages behind"
                );
                assert!(store.swap_out(seq).is_err());
                let back = store.swap_in(&blob).unwrap();
                assert!(
                    store.matches_cache(back, &cache, 0),
                    "devices={devices} {part}: swap round trip not bitwise"
                );
            }
        }
    }

    #[test]
    fn sharded_swap_in_oom_is_atomic() {
        let placement = Placement::new(2, Partitioning::HeadModulo, 2);
        let mut store = ShardedKvStore::new(cfg(16), placement, 4, 32);
        let seq = store.admit(96).unwrap(); // 3 pages/device
        mirrored_appends(&mut store, seq, 60, 0);
        let blob = store.swap_out(seq).unwrap();
        let hog = store.admit(64).unwrap(); // 2 pages/device
        let err = store.swap_in(&blob).unwrap_err();
        assert_eq!(
            err,
            StoreError::Oom(PagedOom {
                requested: 3,
                free: 2
            })
        );
        // Nothing changed anywhere: the hog is intact, pages unchanged.
        assert_eq!(store.resident(), 1);
        assert_eq!(store.free_pages(), 4);
        store.evict(hog);
        let back = store.swap_in(&blob).unwrap();
        assert_eq!(back.0, hog.0 + 1, "failed swap-in burned a SeqId");
        assert_eq!(store.seq_len(back), Some(60));
    }

    #[test]
    fn forks_share_prefix_pages_on_every_device_in_lockstep() {
        for devices in [1, 2, 3, 4] {
            for part in [Partitioning::HeadModulo, Partitioning::HeadContiguous] {
                let placement = Placement::new(devices, part, 4);
                let mut sharded = ShardedKvStore::new(cfg(16), placement, 64, 48);
                let mut single = crate::store::PagedKvStore::new(cfg(16), 4, 64, 48);
                let sp = sharded.admit(300).unwrap();
                let pp = single.admit(300).unwrap();
                let mut parent_cache = mirrored_appends(&mut sharded, sp, 256, 0);
                {
                    // Mirror the same history into the single-device twin.
                    let dim = 16;
                    for t in 0..256 {
                        let k: Vec<Vec<f32>> = (0..4).map(|h| row(dim, t, h)).collect();
                        let v: Vec<Vec<f32>> = (0..4).map(|h| row(dim, t + 500, h)).collect();
                        single.append_step(pp, &k, &v, &ReferenceCodec).unwrap();
                    }
                }
                let mut child_cache = parent_cache.clone();
                assert_eq!(
                    sharded.fork_new_pages(sp, 256, 300),
                    single.fork_new_pages(pp, 256, 300)
                );
                let sc = sharded.fork(sp, 256, 300).unwrap();
                let pc = single.fork(pp, 256, 300).unwrap();
                assert_eq!(sc, pc, "fork ids out of lockstep");
                assert!(sharded.matches_cache(sc, &child_cache, 0));
                // Divergent continuations stay independent across devices.
                for t in 256..300 {
                    let k: Vec<Vec<f32>> = (0..4).map(|h| row(16, t, 70 + h)).collect();
                    sharded.append_step(sc, &k, &k, &ReferenceCodec).unwrap();
                    for (h, kh) in k.iter().enumerate() {
                        child_cache
                            .append_token(h, kh, kh, &ReferenceCodec)
                            .unwrap();
                    }
                    let k: Vec<Vec<f32>> = (0..4).map(|h| row(16, t, 90 + h)).collect();
                    sharded.append_step(sp, &k, &k, &ReferenceCodec).unwrap();
                    for (h, kh) in k.iter().enumerate() {
                        parent_cache
                            .append_token(h, kh, kh, &ReferenceCodec)
                            .unwrap();
                    }
                }
                assert!(
                    sharded.matches_cache(sc, &child_cache, 0),
                    "devices={devices} {part}: child diverged"
                );
                assert!(
                    sharded.matches_cache(sp, &parent_cache, 0),
                    "devices={devices} {part}: parent corrupted"
                );
                let stats = sharded.sharing_stats();
                assert_eq!(stats.shared_pages, devices * 256usize.div_ceil(48));
                sharded.evict(sp);
                sharded.evict(sc);
                assert_eq!(sharded.free_pages(), sharded.total_pages());
            }
        }
    }

    #[test]
    fn sharded_fork_oom_is_atomic_and_boundary_errors_propagate() {
        let placement = Placement::new(2, Partitioning::HeadModulo, 2);
        let mut store = ShardedKvStore::new(cfg(16), placement, 6, 32);
        let parent = store.admit(128).unwrap(); // 4 pages/device
        mirrored_appends(&mut store, parent, 128, 0);
        // Child: 4 shared + 3 private per device; only 2 free per device.
        let err = store.fork(parent, 128, 128 + 96).unwrap_err();
        assert!(matches!(err, StoreError::Oom(_)));
        for d in [DeviceId(0), DeviceId(1)] {
            assert_eq!(store.device_stats(d).free_pages, 2);
            assert_eq!(store.device(d).sharing_stats().shared_pages, 0);
        }
        assert!(matches!(
            store.fork(parent, 100, 200),
            Err(StoreError::ForkBoundary { .. })
        ));
        let child = store.fork(parent, 128, 128 + 64).unwrap();
        assert_eq!(child.0, parent.0 + 1, "failed fork burned a SeqId");
    }

    #[test]
    fn sharing_sequence_swap_round_trip_reshares_across_devices() {
        let placement = Placement::new(2, Partitioning::HeadContiguous, 2);
        let mut store = ShardedKvStore::new(cfg(16), placement, 8, 32);
        let parent = store.admit(160).unwrap(); // 5 pages/device
        let cache = mirrored_appends(&mut store, parent, 128, 0);
        let child = store.fork(parent, 128, 160).unwrap();
        let free_before = store.free_pages();
        let blob = store.swap_out(child).unwrap();
        // Only the private page frees on each device.
        assert_eq!(store.free_pages(), free_before + 2);
        assert_eq!(store.swap_in_new_pages(&blob), 1);
        let back = store.swap_in(&blob).unwrap();
        assert_eq!(store.free_pages(), free_before);
        assert!(store.matches_cache(back, &cache, 0));
        assert_eq!(store.sharing_stats().shared_pages, 2 * 4);
    }

    #[test]
    fn cow_breaks_count_shared_page_privatizations_per_device() {
        let placement = Placement::new(2, Partitioning::HeadModulo, 2);
        let mut store = ShardedKvStore::new(cfg(16), placement, 8, 96);
        let parent = store.admit(128).unwrap();
        mirrored_appends(&mut store, parent, 128, 0);
        assert_eq!(store.cow_breaks(), 0);
        // Token 128 is mid slot 1, so slot 1 is shared after the fork.
        let child = store.fork(parent, 128, 256).unwrap();
        assert_eq!(store.cow_breaks(), 0, "fork alone breaks nothing");
        // The child's first flushed block homes on shared slot 1,
        // privatizing it once on each device; later flushes land on
        // already-private pages.
        for t in 128..256 {
            let k: Vec<Vec<f32>> = (0..2).map(|h| row(16, t, 70 + h)).collect();
            store.append_step(child, &k, &k, &ReferenceCodec).unwrap();
        }
        assert_eq!(store.cow_breaks(), 2);
        for d in [DeviceId(0), DeviceId(1)] {
            assert_eq!(store.device(d).cow_breaks(), 1);
        }
    }

    #[test]
    fn eviction_accounting_is_per_device() {
        let placement = Placement::new(2, Partitioning::HeadModulo, 2);
        let mut store = ShardedKvStore::new(cfg(16), placement, 16, 32);
        let a = store.admit(64).unwrap(); // 2 pages/device
        let b = store.admit(96).unwrap(); // 3 pages/device
        store.evict(a);
        store.evict(b);
        store.evict(b); // unknown by now: ignored
        for d in [DeviceId(0), DeviceId(1)] {
            let stats = store.device_stats(d);
            assert_eq!(stats.evicted_seqs, 2);
            assert_eq!(stats.evicted_pages, 5);
            assert_eq!(stats.free_pages, 16);
            assert_eq!(stats.utilization, 0.0);
        }
    }

    #[test]
    fn utilization_aggregates_devices() {
        let placement = Placement::new(2, Partitioning::HeadModulo, 2);
        let mut store = ShardedKvStore::new(cfg(16), placement, 10, 16);
        let _ = store.admit(80).unwrap(); // 5 pages on each device
        assert!((store.utilization() - 0.5).abs() < 1e-9);
        assert_eq!(store.total_pages(), 20);
        assert_eq!(store.free_pages(), 10);
    }

    #[test]
    fn head_count_errors_are_global() {
        let placement = Placement::new(2, Partitioning::HeadModulo, 4);
        let mut store = ShardedKvStore::new(cfg(16), placement, 8, 32);
        let seq = store.admit(0).unwrap();
        let bad = vec![vec![0.0f32; 16]; 3];
        let good = vec![vec![0.0f32; 16]; 4];
        assert!(matches!(
            store.append_step(seq, &bad, &good, &ReferenceCodec),
            Err(StoreError::HeadCount {
                got: 3,
                expected: 4
            })
        ));
    }

    #[test]
    fn corrupt_device_share_is_rejected_before_any_pool_is_touched() {
        let placement = Placement::new(2, Partitioning::HeadModulo, 4);
        let mut store = ShardedKvStore::new(cfg(16), placement, 64, 48);
        let seq = store.admit(200).unwrap();
        let _cache = mirrored_appends(&mut store, seq, 150, 1);
        let clean = store.swap_out(seq).unwrap();
        let free: Vec<usize> = (0..store.devices())
            .map(|d| store.device(DeviceId(d as u32)).free_pages())
            .collect();
        // Damage only the *second* device's share: verification must span
        // all shares and reject before device 0's pool adopts anything.
        let mut blob = clean.clone();
        blob.flip_bit(1, 9_999);
        assert!(matches!(
            blob.verify().unwrap_err(),
            StoreError::CorruptBlob { .. }
        ));
        assert!(matches!(
            store.swap_in(&blob).unwrap_err(),
            StoreError::CorruptBlob { .. }
        ));
        for (d, want) in free.iter().enumerate() {
            assert_eq!(
                store.device(DeviceId(d as u32)).free_pages(),
                *want,
                "device {d} pool touched by a rejected swap-in"
            );
        }
        // SeqId lockstep: the failed attempt burned nothing — the clean
        // blob restores with the next id on every device.
        assert!(store.swap_in(&clean).is_ok());
    }

    #[test]
    fn identical_prompts_dedup_on_every_device_via_the_prefix_cache() {
        for devices in [1, 2, 3] {
            for part in [Partitioning::HeadModulo, Partitioning::HeadContiguous] {
                let placement = Placement::new(devices, part, 4);
                let mut store = ShardedKvStore::new(cfg(16), placement, 64, 32);
                store.set_prefix_cache(true);
                assert!(store.prefix_cache_enabled());
                // 128 packed tokens = one full 4-page run per device
                // (Nr = 128, 32-token pages), plus a 32-token residual.
                let len = 160;
                let k: Vec<TokenMatrix> = (0..4)
                    .map(|h| {
                        TokenMatrix::from_fn(len, 16, |t, c| ((h * 7 + t * 16 + c) as f32).sin())
                    })
                    .collect();
                let v: Vec<TokenMatrix> = (0..4)
                    .map(|h| {
                        TokenMatrix::from_fn(len, 16, |t, c| ((h * 13 + t * 16 + c) as f32).cos())
                    })
                    .collect();
                let (a, first) = store
                    .admit_prefill_cached(&k, &v, len, &ReferenceCodec)
                    .unwrap();
                assert_eq!(first.pages_reused, 0, "nothing cached yet");
                let free_after_first = store.free_pages();
                let (b, second) = store
                    .admit_prefill_cached(&k, &v, len, &ReferenceCodec)
                    .unwrap();
                assert_eq!(b.0, a.0 + 1, "ids out of lockstep");
                // Each device adopts its whole packed run zero-copy; only
                // the residual page is fresh.
                assert_eq!(second.pages_reused, 4 * devices, "devices={devices} {part}");
                assert!(second.bytes_reused > 0);
                assert_eq!(free_after_first - store.free_pages(), devices);
                let stats = store.prefix_cache_stats();
                assert_eq!(stats.hits, devices as u64);
                assert_eq!(stats.misses, devices as u64);
                assert_eq!(stats.pages_reused, (4 * devices) as u64);
                // Both tenants read bitwise what a contiguous cache holds.
                let mut cache = QuantizedKvCache::new(cfg(16), 4);
                for h in 0..4 {
                    cache.prefill(h, &k[h], &v[h], &ReferenceCodec).unwrap();
                }
                assert!(store.matches_cache(a, &cache, 0));
                assert!(store.matches_cache(b, &cache, 0));
                // The adopted run forms a cascade group on every device,
                // exactly as an explicit fork would.
                for d in 0..devices {
                    assert_eq!(store.shared_block_run(DeviceId(d as u32), &[a, b]), 1);
                }
                // Cached pages outlive their tenants; disabling the cache
                // returns every one of them (leak audit).
                store.evict(a);
                store.evict(b);
                assert_eq!(store.prefix_cached_pages(), 4 * devices);
                store.set_prefix_cache(false);
                assert_eq!(store.prefix_cached_pages(), 0);
                assert_eq!(store.free_pages(), store.total_pages());
            }
        }
    }
}
