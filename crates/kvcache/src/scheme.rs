//! KV-cache quantization schemes: bit-width × scaling granularity.
//!
//! BitDecoding supports the configuration space of published KV-cache
//! quantization algorithms (paper §V-B): integer 4-/2-bit caches with
//! **tensor-wise** (per-token groups along the hidden dimension — KVQuant,
//! Atom style) or **channel-wise** (per-channel groups along the sequence —
//! KIVI, Gear style) Key scaling, plus Blackwell-native MXFP4/NVFP4. Values
//! are always quantized tensor-wise, matching the paper.

use bd_lowbit::{BitWidth, Fp4Kind};
use std::fmt;

/// Scaling granularity for the Key tensor.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum KeyGranularity {
    /// One group per token, spanning `group` channels ("KT").
    TensorWise,
    /// One group per channel, spanning `group` tokens ("KC") — required for
    /// accuracy because Key outliers are channel-structured.
    ChannelWise,
}

impl fmt::Display for KeyGranularity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KeyGranularity::TensorWise => write!(f, "KT"),
            KeyGranularity::ChannelWise => write!(f, "KC"),
        }
    }
}

/// The numeric format of a quantized cache.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SchemeKind {
    /// Asymmetric affine integer quantization with `half2` metadata.
    Int {
        /// Code width (4- or 2-bit).
        width: BitWidth,
        /// Key scaling granularity.
        key_granularity: KeyGranularity,
        /// Group size: tokens per group for channel-wise Keys, channels per
        /// group for tensor-wise Keys and for Values.
        group: usize,
    },
    /// Blackwell block-scaled FP4 (no integer metadata; scales are E8M0 or
    /// E4M3 per hardware block).
    Fp4(Fp4Kind),
}

/// A complete KV-cache quantization configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct QuantScheme {
    kind: SchemeKind,
}

impl QuantScheme {
    /// Default group size along tokens for channel-wise Keys.
    pub const DEFAULT_TOKEN_GROUP: usize = 64;
    /// Default group size along channels for tensor-wise scaling.
    pub const DEFAULT_CHANNEL_GROUP: usize = 128;

    /// Builds a scheme from an explicit kind.
    pub const fn from_kind(kind: SchemeKind) -> Self {
        QuantScheme { kind }
    }

    /// 4-bit Keys with tensor-wise scaling ("KT-4").
    pub const fn kt4() -> Self {
        QuantScheme::from_kind(SchemeKind::Int {
            width: BitWidth::B4,
            key_granularity: KeyGranularity::TensorWise,
            group: Self::DEFAULT_CHANNEL_GROUP,
        })
    }

    /// 4-bit Keys with channel-wise scaling ("KC-4"), the accuracy-preserving
    /// default used in the paper's end-to-end runs.
    pub const fn kc4() -> Self {
        QuantScheme::from_kind(SchemeKind::Int {
            width: BitWidth::B4,
            key_granularity: KeyGranularity::ChannelWise,
            group: Self::DEFAULT_TOKEN_GROUP,
        })
    }

    /// 2-bit Keys with channel-wise scaling ("KC-2").
    pub const fn kc2() -> Self {
        QuantScheme::from_kind(SchemeKind::Int {
            width: BitWidth::B2,
            key_granularity: KeyGranularity::ChannelWise,
            group: Self::DEFAULT_TOKEN_GROUP,
        })
    }

    /// 2-bit Keys with tensor-wise scaling ("KT-2").
    pub const fn kt2() -> Self {
        QuantScheme::from_kind(SchemeKind::Int {
            width: BitWidth::B2,
            key_granularity: KeyGranularity::TensorWise,
            group: Self::DEFAULT_CHANNEL_GROUP,
        })
    }

    /// Blackwell-native MXFP4 (E2M1 + E8M0 scale per 32).
    pub const fn mxfp4() -> Self {
        QuantScheme::from_kind(SchemeKind::Fp4(Fp4Kind::Mx))
    }

    /// Blackwell-native NVFP4 (E2M1 + E4M3 scale per 16).
    pub const fn nvfp4() -> Self {
        QuantScheme::from_kind(SchemeKind::Fp4(Fp4Kind::Nv))
    }

    /// The scheme kind.
    pub const fn kind(&self) -> SchemeKind {
        self.kind
    }

    /// Integer bit-width, if this is an integer scheme.
    pub fn int_width(&self) -> Option<BitWidth> {
        match self.kind {
            SchemeKind::Int { width, .. } => Some(width),
            SchemeKind::Fp4(_) => None,
        }
    }

    /// Key granularity for integer schemes (FP4 is block-wise by hardware).
    pub fn key_granularity(&self) -> Option<KeyGranularity> {
        match self.kind {
            SchemeKind::Int {
                key_granularity, ..
            } => Some(key_granularity),
            SchemeKind::Fp4(_) => None,
        }
    }

    /// Group size for integer schemes.
    pub fn group(&self) -> Option<usize> {
        match self.kind {
            SchemeKind::Int { group, .. } => Some(group),
            SchemeKind::Fp4(_) => None,
        }
    }

    /// Bits per stored element (payload only).
    pub fn bits_per_value(&self) -> u32 {
        match self.kind {
            SchemeKind::Int { width, .. } => width.bits(),
            SchemeKind::Fp4(_) => 4,
        }
    }

    /// Payload bytes for one token of one head (`dim` channels, K **and** V).
    pub fn payload_bytes_per_token(&self, dim: usize) -> f64 {
        2.0 * dim as f64 * self.bits_per_value() as f64 / 8.0
    }

    /// Metadata (scale/zero or block-scale) bytes per token of one head
    /// (K and V combined).
    pub fn params_bytes_per_token(&self, dim: usize) -> f64 {
        match self.kind {
            SchemeKind::Int {
                key_granularity,
                group,
                ..
            } => {
                // half2 = 4 bytes per group.
                let k = match key_granularity {
                    // one group per channel per `group` tokens
                    KeyGranularity::ChannelWise => 4.0 * dim as f64 / group as f64,
                    // one group per token per `group` channels
                    KeyGranularity::TensorWise => 4.0 * (dim as f64 / group as f64).max(1.0),
                };
                // V is tensor-wise along channels.
                let v = 4.0 * (dim as f64 / QuantScheme::DEFAULT_CHANNEL_GROUP as f64).max(1.0);
                k + v
            }
            SchemeKind::Fp4(kind) => {
                // one scale byte per block, K and V.
                2.0 * dim as f64 / kind.block_size() as f64
            }
        }
    }

    /// Total cache bytes per token of one head (payload + metadata).
    pub fn bytes_per_token(&self, dim: usize) -> f64 {
        self.payload_bytes_per_token(dim) + self.params_bytes_per_token(dim)
    }

    /// Effective compression ratio against an FP16 cache.
    pub fn compression_vs_fp16(&self, dim: usize) -> f64 {
        (2.0 * dim as f64 * 2.0) / self.bytes_per_token(dim)
    }

    /// Paper-style label, e.g. `"KC-4"` or `"mxfp4"`.
    pub fn label(&self) -> String {
        match self.kind {
            SchemeKind::Int {
                width,
                key_granularity,
                ..
            } => format!("{key_granularity}-{}", width.bits()),
            SchemeKind::Fp4(kind) => kind.to_string(),
        }
    }
}

impl fmt::Display for QuantScheme {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_match_paper() {
        assert_eq!(QuantScheme::kt4().label(), "KT-4");
        assert_eq!(QuantScheme::kc4().label(), "KC-4");
        assert_eq!(QuantScheme::kc2().label(), "KC-2");
        assert_eq!(QuantScheme::mxfp4().label(), "mxfp4");
        assert_eq!(QuantScheme::nvfp4().label(), "nvfp4");
    }

    #[test]
    fn compression_ratios() {
        let d = 128;
        // INT4 ≈ 4x minus metadata overhead; INT2 ≈ 8x minus metadata.
        let c4 = QuantScheme::kc4().compression_vs_fp16(d);
        let c2 = QuantScheme::kc2().compression_vs_fp16(d);
        assert!(c4 > 3.5 && c4 < 4.0, "KC-4 compression {c4}");
        assert!(c2 > 6.2 && c2 < 8.0, "KC-2 compression {c2}");
        assert!(c2 > c4);
    }

    #[test]
    fn channel_wise_costs_more_metadata_than_tensor_wise() {
        let d = 128;
        assert!(
            QuantScheme::kc4().params_bytes_per_token(d)
                > QuantScheme::kt4().params_bytes_per_token(d)
        );
    }

    #[test]
    fn fp4_metadata_is_per_block() {
        let d = 128;
        // MX: 1 byte per 32 values, K+V → 2*128/32 = 8 B/token.
        assert_eq!(QuantScheme::mxfp4().params_bytes_per_token(d), 8.0);
        // NV: blocks of 16 → 16 B/token.
        assert_eq!(QuantScheme::nvfp4().params_bytes_per_token(d), 16.0);
    }

    #[test]
    fn accessors() {
        assert_eq!(QuantScheme::kc2().int_width(), Some(BitWidth::B2));
        assert_eq!(QuantScheme::mxfp4().int_width(), None);
        assert_eq!(
            QuantScheme::kc4().key_granularity(),
            Some(KeyGranularity::ChannelWise)
        );
        assert_eq!(QuantScheme::kt4().group(), Some(128));
    }
}
