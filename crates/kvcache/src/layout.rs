//! Pack-layout configuration and the residual block size (paper Eq. 1).
//!
//! A packed cache is only decodable under the *same* instruction
//! configuration that produced it: the `ldmatrix`/`mma` variant fixes the
//! value-to-thread mapping, the pack order fixes the in-register interleave,
//! and the warp count along N fixes how fragments tile the token dimension.
//! [`PackLayout`] carries exactly this configuration, and the Residual and
//! Packing kernels in `bd-core` are coordinated by sharing one value of it
//! (paper §IV-A(4)).

use bd_gpu_sim::MmaShape;
use bd_lowbit::{BitWidth, PackOrder};
use std::fmt;

/// The unified instruction configuration shared by the Residual Kernel
/// (quantize + pack) and the Packing Kernel (unpack + dequantize).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct PackLayout {
    /// MMA shape whose B-fragment mapping induces the packing layout.
    pub shape: MmaShape,
    /// In-register interleave order (75316420 fast path or linear).
    pub order: PackOrder,
    /// Warps along the N (token) dimension, `Wn` (paper Fig. 6).
    pub warps_n: usize,
}

impl PackLayout {
    /// The configuration BitDecoding selects for pre-Hopper tensor cores:
    /// `mma.m16n8k16`, fast-dequant interleave, four warps along N.
    pub const fn sm80_default() -> Self {
        PackLayout {
            shape: MmaShape::M16N8K16,
            order: PackOrder::FastDequant,
            warps_n: 4,
        }
    }

    /// Residual block size `Nr = Pn × Wn × R` (paper Eq. 1): the number of
    /// FP16 residual tokens that exactly fills every warp's fragment tile at
    /// the given packing ratio.
    pub const fn residual_block(&self, width: BitWidth) -> usize {
        self.shape.pn() * self.warps_n * width.packing_ratio()
    }

    /// Elements each lane packs per fragment tile (the B-fragment register
    /// count).
    pub const fn lane_elems_per_tile(&self) -> usize {
        self.shape.b_regs_per_lane()
    }
}

impl Default for PackLayout {
    fn default() -> Self {
        PackLayout::sm80_default()
    }
}

impl fmt::Display for PackLayout {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ×Wn={} ({:?})", self.shape, self.warps_n, self.order)
    }
}

/// Splits a prefill of `len` tokens into the packed prefix and the residual
/// tail (paper §V-B(1)): `Np = len - (len mod Nr)` tokens are quantized,
/// the rest stay half-precision.
pub const fn partition_prefill(len: usize, residual_block: usize) -> (usize, usize) {
    let res = len % residual_block;
    (len - res, res)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eq1_residual_block_sizes() {
        let layout = PackLayout::sm80_default();
        // Pn=8, Wn=4, R=4 → 128 for INT4; R=8 → 256 for INT2.
        assert_eq!(layout.residual_block(BitWidth::B4), 128);
        assert_eq!(layout.residual_block(BitWidth::B2), 256);
        // Nr is always ≤ 256, as the paper states.
        for wn in 1..=4 {
            let l = PackLayout {
                warps_n: wn,
                ..layout
            };
            assert!(l.residual_block(BitWidth::B4) <= 256);
            assert!(l.residual_block(BitWidth::B2) <= 256 * 2);
        }
    }

    #[test]
    fn partition_covers_all_tokens() {
        for len in [0usize, 1, 127, 128, 129, 4096, 100_000] {
            let (packed, res) = partition_prefill(len, 128);
            assert_eq!(packed + res, len);
            assert_eq!(packed % 128, 0);
            assert!(res < 128);
        }
    }

    #[test]
    fn lane_elems_match_fragment() {
        assert_eq!(PackLayout::sm80_default().lane_elems_per_tile(), 4);
    }
}
