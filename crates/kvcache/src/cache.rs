//! The quantized KV cache with its half-precision residual region
//! (paper §V-B(1)).
//!
//! Per cached head, tokens live in two regions:
//!
//! * `X_pack` — residual blocks that filled up and were flushed through a
//!   [`BlockCodec`] into packed low-bit storage;
//! * `X_res` — the FP16 tail of up to `Nr − 1` tokens still accumulating.
//!
//! Every appended token lands in the residual first; when the residual
//! reaches the Tensor-Core-aligned block size `Nr` (paper Eq. 1) it is
//! flushed as one packed block. Prefill bulk-quantizes `L − (L mod Nr)`
//! tokens and leaves the remainder resident.

use crate::block::PackedBlock;
use crate::codec::BlockCodec;
use crate::layout::PackLayout;
use crate::matrix::{TokenMatrix, TokenRows};
use crate::scheme::QuantScheme;
use bd_lowbit::{BitWidth, F16};
use std::fmt;

/// Errors from cache operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CacheError {
    /// A token row had the wrong number of channels.
    DimMismatch {
        /// Expected channel count.
        expected: usize,
        /// Provided channel count.
        got: usize,
    },
    /// A head index was out of range.
    BadHead {
        /// Provided head index.
        head: usize,
        /// Number of heads in the cache.
        heads: usize,
    },
}

impl fmt::Display for CacheError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CacheError::DimMismatch { expected, got } => {
                write!(
                    f,
                    "token dimension {got} does not match cache dimension {expected}"
                )
            }
            CacheError::BadHead { head, heads } => {
                write!(f, "head index {head} out of range for {heads} heads")
            }
        }
    }
}

impl std::error::Error for CacheError {}

/// Static configuration of a quantized cache.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CacheConfig {
    /// Channels per head.
    pub dim: usize,
    /// Quantization scheme.
    pub scheme: QuantScheme,
    /// Shared instruction configuration (fixes `Nr`).
    pub layout: PackLayout,
}

impl CacheConfig {
    /// Builds a config; `Nr` follows from layout × scheme.
    pub fn new(dim: usize, scheme: QuantScheme, layout: PackLayout) -> Self {
        CacheConfig {
            dim,
            scheme,
            layout,
        }
    }

    /// The residual block size `Nr` for this configuration.
    ///
    /// FP4 schemes pack at the INT4 ratio (4 codes per 16-bit word).
    pub fn residual_block(&self) -> usize {
        let width = self.scheme.int_width().unwrap_or(BitWidth::B4);
        self.layout.residual_block(width)
    }
}

/// Cache state for a single `(batch, kv_head)` pair.
#[derive(Clone, Debug)]
struct HeadCache {
    packed: Vec<PackedBlock>,
    residual_k: TokenMatrix,
    residual_v: TokenMatrix,
}

impl HeadCache {
    /// An empty slot whose residual window already carries the head
    /// dimension. (A defaulted `TokenMatrix` has `dim == 0` until its
    /// first push; a prefill of exactly `Nr`-aligned length never pushes
    /// into the window, and an empty dim-0 window would then compare
    /// unequal to the paged store's empty dim-`d` window even though both
    /// hold zero bytes.)
    fn new(dim: usize) -> Self {
        HeadCache {
            packed: Vec::new(),
            residual_k: TokenMatrix::new(dim),
            residual_v: TokenMatrix::new(dim),
        }
    }
    fn packed_tokens(&self) -> usize {
        self.packed.iter().map(PackedBlock::tokens).sum()
    }
}

/// A quantized KV cache over `heads` independent `(batch, kv_head)` slots.
///
/// # Examples
///
/// ```
/// use bd_kvcache::{CacheConfig, PackLayout, QuantScheme, QuantizedKvCache, ReferenceCodec};
///
/// let cfg = CacheConfig::new(64, QuantScheme::kc4(), PackLayout::sm80_default());
/// let mut cache = QuantizedKvCache::new(cfg, 2);
/// let token = vec![0.5f32; 64];
/// cache.append_token(0, &token, &token, &ReferenceCodec)?;
/// assert_eq!(cache.len(0), 1);
/// assert_eq!(cache.residual_len(0), 1);
/// # Ok::<(), bd_kvcache::CacheError>(())
/// ```
#[derive(Clone, Debug)]
pub struct QuantizedKvCache {
    config: CacheConfig,
    heads: Vec<HeadCache>,
}

impl QuantizedKvCache {
    /// Creates an empty cache with `heads` slots.
    pub fn new(config: CacheConfig, heads: usize) -> Self {
        QuantizedKvCache {
            config,
            heads: vec![HeadCache::new(config.dim); heads],
        }
    }

    /// The cache configuration.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Number of head slots.
    pub fn heads(&self) -> usize {
        self.heads.len()
    }

    /// Residual block size `Nr`.
    pub fn residual_block(&self) -> usize {
        self.config.residual_block()
    }

    fn head(&self, head: usize) -> Result<&HeadCache, CacheError> {
        self.heads.get(head).ok_or(CacheError::BadHead {
            head,
            heads: self.heads.len(),
        })
    }

    fn check_dim(&self, row: &[f32]) -> Result<(), CacheError> {
        if row.len() != self.config.dim {
            return Err(CacheError::DimMismatch {
                expected: self.config.dim,
                got: row.len(),
            });
        }
        Ok(())
    }

    /// Total cached tokens for a head (packed + residual).
    pub fn len(&self, head: usize) -> usize {
        self.heads[head].packed_tokens() + self.heads[head].residual_k.len()
    }

    /// `true` if the head holds no tokens.
    pub fn is_empty(&self, head: usize) -> bool {
        self.len(head) == 0
    }

    /// Tokens currently in the FP16 residual region.
    pub fn residual_len(&self, head: usize) -> usize {
        self.heads[head].residual_k.len()
    }

    /// The packed blocks of a head, oldest first.
    pub fn packed_blocks(&self, head: usize) -> &[PackedBlock] {
        &self.heads[head].packed
    }

    /// The residual FP16 region of a head (`(k, v)`, each `tokens × dim`).
    pub fn residual(&self, head: usize) -> (&TokenMatrix, &TokenMatrix) {
        (&self.heads[head].residual_k, &self.heads[head].residual_v)
    }

    /// Appends one decode-step token to a head. Values are rounded through
    /// FP16 (the KV projection output precision). When the residual fills to
    /// `Nr`, it is flushed through `codec` into a packed block — the
    /// Residual Kernel's quantize-once-per-`Nr`-steps behaviour.
    ///
    /// Returns `true` when this append triggered a flush.
    ///
    /// # Errors
    ///
    /// Returns [`CacheError::DimMismatch`] or [`CacheError::BadHead`].
    pub fn append_token(
        &mut self,
        head: usize,
        k: &[f32],
        v: &[f32],
        codec: &impl BlockCodec,
    ) -> Result<bool, CacheError> {
        self.check_dim(k)?;
        self.check_dim(v)?;
        self.head(head)?;
        let nr = self.residual_block();
        let dim = self.config.dim;
        let slot = &mut self.heads[head];
        // Rounding through FP16 happens in place on the flat residual tail —
        // one contiguous extend, no per-token heap allocation.
        push_rounded(&mut slot.residual_k, k);
        push_rounded(&mut slot.residual_v, v);
        if slot.residual_k.tokens() == nr {
            let k_block = std::mem::replace(&mut slot.residual_k, TokenMatrix::new(dim));
            let v_block = std::mem::replace(&mut slot.residual_v, TokenMatrix::new(dim));
            let packed = codec.encode(&k_block, &v_block, self.config.scheme);
            slot.packed.push(packed);
            Ok(true)
        } else {
            Ok(false)
        }
    }

    /// Bulk-loads a prefill of `tokens × dim` K/V for a head: the largest
    /// `Nr`-aligned prefix is quantized block-by-block, the tail becomes the
    /// residual (paper §V-B(1)).
    ///
    /// # Errors
    ///
    /// Returns [`CacheError::DimMismatch`] or [`CacheError::BadHead`].
    pub fn prefill<K, V>(
        &mut self,
        head: usize,
        k: &K,
        v: &V,
        codec: &impl BlockCodec,
    ) -> Result<(), CacheError>
    where
        K: TokenRows + ?Sized,
        V: TokenRows + ?Sized,
    {
        let len = k.token_count();
        assert_eq!(len, v.token_count(), "K/V prefill length mismatch");
        for t in 0..len {
            self.check_dim(k.token_row(t))?;
            self.check_dim(v.token_row(t))?;
        }
        self.head(head)?;
        let nr = self.residual_block();
        let (packed_len, _res) = crate::layout::partition_prefill(len, nr);
        let scheme = self.config.scheme;

        // Values pass through the FP16 KV projection output before
        // quantization, exactly as in the append path.
        let slot = &mut self.heads[head];
        for b0 in (0..packed_len).step_by(nr) {
            let kb = rounded_block(k, b0, b0 + nr);
            let vb = rounded_block(v, b0, b0 + nr);
            slot.packed.push(codec.encode(&kb, &vb, scheme));
        }
        for t in packed_len..len {
            push_rounded(&mut slot.residual_k, k.token_row(t));
            push_rounded(&mut slot.residual_v, v.token_row(t));
        }
        Ok(())
    }

    /// Reconstructs the full logical `(K, V)` of a head by decoding every
    /// packed block and appending the residual — the reference view used by
    /// functional attention checks.
    pub fn logical_kv(&self, head: usize, codec: &impl BlockCodec) -> (TokenMatrix, TokenMatrix) {
        let slot = &self.heads[head];
        let mut k = TokenMatrix::with_capacity(self.len(head), self.config.dim);
        let mut v = TokenMatrix::with_capacity(self.len(head), self.config.dim);
        for block in &slot.packed {
            let (bk, bv) = codec.decode(block, self.config.scheme);
            k.extend_rows(&bk);
            v.extend_rows(&bv);
        }
        k.extend_rows(&slot.residual_k);
        v.extend_rows(&slot.residual_v);
        (k, v)
    }

    /// Device bytes held by one head (packed payloads + FP16 residual).
    pub fn head_bytes(&self, head: usize) -> usize {
        let slot = &self.heads[head];
        let packed: usize = slot.packed.iter().map(PackedBlock::byte_size).sum();
        let residual = slot.residual_k.len() * self.config.dim * 2 * 2;
        packed + residual
    }

    /// Total device bytes across all heads.
    pub fn total_bytes(&self) -> usize {
        (0..self.heads.len()).map(|h| self.head_bytes(h)).sum()
    }
}

/// Appends `row` to `m`, rounding each value through FP16 in place (the KV
/// projection output precision) — no temporary row allocation. Shared with
/// the paged store so both containers round identically (the
/// contiguous-equivalence invariant depends on it).
pub(crate) fn push_rounded(m: &mut TokenMatrix, row: &[f32]) {
    let t = m.tokens();
    m.push_row(row);
    for x in m.row_mut(t) {
        *x = F16::from_f32(*x).to_f32();
    }
}

/// Copies token range `[t0, t1)` of `src` into a fresh flat matrix with
/// FP16 rounding applied. Shared with the paged store (see
/// [`push_rounded`]).
pub(crate) fn rounded_block<M: TokenRows + ?Sized>(src: &M, t0: usize, t1: usize) -> TokenMatrix {
    let dim = src.token_row(t0).len();
    TokenMatrix::from_fn(t1 - t0, dim, |t, c| {
        F16::from_f32(src.token_row(t0 + t)[c]).to_f32()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::ReferenceCodec;

    fn cfg(dim: usize) -> CacheConfig {
        CacheConfig::new(dim, QuantScheme::kc4(), PackLayout::sm80_default())
    }

    fn token(dim: usize, t: usize) -> Vec<f32> {
        (0..dim)
            .map(|c| ((t * dim + c) as f32 * 0.37).sin())
            .collect()
    }

    #[test]
    fn residual_never_reaches_block_size() {
        let mut cache = QuantizedKvCache::new(cfg(16), 1);
        let nr = cache.residual_block();
        assert_eq!(nr, 128);
        for t in 0..nr * 3 + 7 {
            let k = token(16, t);
            cache.append_token(0, &k, &k, &ReferenceCodec).unwrap();
            assert!(cache.residual_len(0) < nr);
        }
        assert_eq!(cache.len(0), nr * 3 + 7);
        assert_eq!(cache.packed_blocks(0).len(), 3);
        assert_eq!(cache.residual_len(0), 7);
    }

    #[test]
    fn flush_signalled_exactly_at_block_boundary() {
        let mut cache = QuantizedKvCache::new(cfg(16), 1);
        let nr = cache.residual_block();
        for t in 0..nr {
            let k = token(16, t);
            let flushed = cache.append_token(0, &k, &k, &ReferenceCodec).unwrap();
            assert_eq!(flushed, t == nr - 1, "t={t}");
        }
    }

    #[test]
    fn prefill_partitions_by_nr() {
        let dim = 16;
        let mut cache = QuantizedKvCache::new(cfg(dim), 1);
        let len = 128 * 2 + 50;
        let k: Vec<Vec<f32>> = (0..len).map(|t| token(dim, t)).collect();
        cache.prefill(0, &k, &k, &ReferenceCodec).unwrap();
        assert_eq!(cache.len(0), len);
        assert_eq!(cache.packed_blocks(0).len(), 2);
        assert_eq!(cache.residual_len(0), 50);
    }

    #[test]
    fn logical_kv_round_trips_within_quant_error() {
        let dim = 16;
        let mut cache = QuantizedKvCache::new(cfg(dim), 1);
        let len = 128 + 9;
        let k: Vec<Vec<f32>> = (0..len).map(|t| token(dim, t)).collect();
        let v: Vec<Vec<f32>> = (0..len).map(|t| token(dim, t + 999)).collect();
        cache.prefill(0, &k, &v, &ReferenceCodec).unwrap();
        let (dk, dv) = cache.logical_kv(0, &ReferenceCodec);
        assert_eq!(dk.len(), len);
        for t in 0..len {
            for c in 0..dim {
                assert!((dk[t][c] - k[t][c]).abs() < 0.15, "K t={t} c={c}");
                assert!((dv[t][c] - v[t][c]).abs() < 0.15, "V t={t} c={c}");
            }
        }
    }

    #[test]
    fn memory_shrinks_versus_fp16() {
        let dim = 128;
        let mut cache = QuantizedKvCache::new(cfg(dim), 1);
        let len = 128 * 8;
        let k: Vec<Vec<f32>> = (0..len).map(|t| token(dim, t)).collect();
        cache.prefill(0, &k, &k, &ReferenceCodec).unwrap();
        let fp16_bytes = len * dim * 2 * 2;
        let ratio = fp16_bytes as f64 / cache.total_bytes() as f64;
        assert!(ratio > 3.4, "compression {ratio}");
    }

    #[test]
    fn dim_mismatch_rejected() {
        let mut cache = QuantizedKvCache::new(cfg(16), 1);
        let bad = vec![0.0f32; 8];
        let good = vec![0.0f32; 16];
        assert!(matches!(
            cache.append_token(0, &bad, &good, &ReferenceCodec),
            Err(CacheError::DimMismatch {
                expected: 16,
                got: 8
            })
        ));
    }

    #[test]
    fn bad_head_rejected() {
        let mut cache = QuantizedKvCache::new(cfg(16), 2);
        let t = vec![0.0f32; 16];
        assert!(matches!(
            cache.append_token(5, &t, &t, &ReferenceCodec),
            Err(CacheError::BadHead { head: 5, heads: 2 })
        ));
    }

    #[test]
    fn heads_are_independent() {
        let mut cache = QuantizedKvCache::new(cfg(16), 3);
        let t = token(16, 0);
        cache.append_token(1, &t, &t, &ReferenceCodec).unwrap();
        assert_eq!(cache.len(0), 0);
        assert_eq!(cache.len(1), 1);
        assert_eq!(cache.len(2), 0);
        assert!(cache.is_empty(0));
        assert!(!cache.is_empty(1));
    }
}
