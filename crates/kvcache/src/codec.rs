//! Block codecs: how a residual block of FP16 K/V values becomes a
//! [`PackedBlock`] and back.
//!
//! Two codecs exist in the workspace:
//!
//! * [`ReferenceCodec`] (here) — a *logical*, linear-layout codec with no
//!   fragment structure. This is what non-tensor-core systems (KIVI, Atom,
//!   QServe) effectively do, and it is the ground truth the fragment-true
//!   codec in `bd-core` is tested against.
//! * `FragmentCodec` (`bd-core`) — packs per lane in `ldmatrix` register
//!   order so the packed data is directly consumable by Tensor Core MMA.
//!
//! Both produce the same *byte counts* and the same *quantization error*;
//! they differ only in physical word order — which is precisely the paper's
//! point.
//!
//! # Flat-layout invariants
//!
//! All codec value I/O uses the flat [`TokenMatrix`] (see
//! [`crate::matrix`] for the full contract):
//!
//! * inputs to `encode` and outputs of `decode` are **token-major**
//!   (`row t = data[t*dim .. (t+1)*dim]`) with one contiguous backing
//!   buffer and no per-row allocation;
//! * `quantize_int_codes` emits codes in the same token-major order
//!   (`codes[t * dim + c]`), so the *logical* code index never depends on
//!   the physical pack layout — only the word stream does;
//! * `dequantize_int_codes` writes straight into a flat matrix, which the
//!   fused decode kernel in `bd-core` consumes without reshaping.

use crate::block::{PackedBlock, PackedPayload, PackedTensor};
use crate::scheme::{KeyGranularity, QuantScheme, SchemeKind};
use bd_lowbit::fp4::quantize_fp4_block;
use bd_lowbit::{
    pack_u16, quant::MinMax, unpack_u16, BitWidth, BlockScale, Half2, QuantParams, E2M1,
};

pub use crate::matrix::{TokenMatrix, TokenRows};

/// A codec converting between FP16 token blocks and packed payloads.
///
/// Implementations must be inverses up to quantization error and must
/// produce identical byte counts for identical configurations.
pub trait BlockCodec {
    /// Quantizes and packs one block (`k`/`v` are `tokens × dim`).
    fn encode(&self, k: &TokenMatrix, v: &TokenMatrix, scheme: QuantScheme) -> PackedBlock;

    /// Unpacks and dequantizes a block back to `(k, v)` values.
    fn decode(&self, block: &PackedBlock, scheme: QuantScheme) -> (TokenMatrix, TokenMatrix);
}

/// Quantizes a `tokens × dim` matrix to integer codes plus `half2` group
/// parameters, without choosing any physical layout.
///
/// Codes are returned token-major (`token * dim + channel`); parameter
/// order matches the paper's buffer shapes — `(tokens/G, dim)` for
/// channel-wise, `(tokens, dim/G)` for tensor-wise.
///
/// This is the *quantization* half of every codec; codecs differ only in
/// how they arrange the codes physically.
pub fn quantize_int_codes(
    values: &TokenMatrix,
    width: BitWidth,
    granularity: KeyGranularity,
    group: usize,
) -> (Vec<u8>, Vec<Half2>) {
    let tokens = values.tokens();
    let dim = values.dim();
    let mut codes = vec![0u8; tokens * dim];
    let mut params = Vec::new();

    match granularity {
        KeyGranularity::ChannelWise => {
            let tgroups = tokens.div_ceil(group);
            for tg in 0..tgroups {
                let t0 = tg * group;
                let t1 = (t0 + group).min(tokens);
                for c in 0..dim {
                    let mut mm = MinMax::EMPTY;
                    for row in values.iter().take(t1).skip(t0) {
                        mm.update(row[c]);
                    }
                    let p = mm.params(width);
                    params.push(p.to_half2());
                    for (t, row) in values.iter().enumerate().take(t1).skip(t0) {
                        codes[t * dim + c] = p.quantize(row[c], width);
                    }
                }
            }
        }
        KeyGranularity::TensorWise => {
            let cgroups = dim.div_ceil(group);
            for (t, row) in values.iter().enumerate() {
                for cg in 0..cgroups {
                    let c0 = cg * group;
                    let c1 = (c0 + group).min(dim);
                    let p = MinMax::of(&row[c0..c1]).params(width);
                    params.push(p.to_half2());
                    for c in c0..c1 {
                        codes[t * dim + c] = p.quantize(row[c], width);
                    }
                }
            }
        }
    }
    (codes, params)
}

/// Inverse of [`quantize_int_codes`]: token-major codes + group parameters
/// back to values (FP16-rounded by the dequantization FMA).
pub fn dequantize_int_codes(
    codes: &[u8],
    params: &[Half2],
    tokens: usize,
    dim: usize,
    width: BitWidth,
    granularity: KeyGranularity,
    group: usize,
) -> TokenMatrix {
    let _ = width;
    let mut out = TokenMatrix::zeros(tokens, dim);
    let param_at = |idx: usize| QuantParams::from_half2(params[idx]);
    match granularity {
        KeyGranularity::ChannelWise => {
            for t in 0..tokens {
                let tg = t / group;
                for (c, slot) in out[t].iter_mut().enumerate() {
                    let p = param_at(tg * dim + c);
                    *slot = p.dequantize(codes[t * dim + c]).to_f32();
                }
            }
        }
        KeyGranularity::TensorWise => {
            let cgroups = dim.div_ceil(group);
            for t in 0..tokens {
                for (c, slot) in out[t].iter_mut().enumerate() {
                    let p = param_at(t * cgroups + c / group);
                    *slot = p.dequantize(codes[t * dim + c]).to_f32();
                }
            }
        }
    }
    out
}

/// The logical linear-layout codec.
///
/// Codes are stored token-major (`token * dim + channel`), words filled
/// sequentially — the layout a CUDA-core kernel with scalar loads would use.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ReferenceCodec;

impl ReferenceCodec {
    fn encode_int(
        values: &TokenMatrix,
        width: BitWidth,
        granularity: KeyGranularity,
        group: usize,
    ) -> PackedTensor {
        let tokens = values.tokens();
        let dim = values.dim();
        let (codes, params) = quantize_int_codes(values, width, granularity, group);

        let per_word = width.packing_ratio();
        let words = codes
            .chunks(per_word)
            .map(|chunk| {
                let mut buf = chunk.to_vec();
                buf.resize(per_word, 0);
                pack_u16(&buf, width)
            })
            .collect();

        PackedTensor {
            tokens,
            dim,
            payload: PackedPayload::Int { words, params },
        }
    }

    fn decode_int(
        tensor: &PackedTensor,
        width: BitWidth,
        granularity: KeyGranularity,
        group: usize,
    ) -> TokenMatrix {
        let (tokens, dim) = (tensor.tokens, tensor.dim);
        let PackedPayload::Int { words, params } = &tensor.payload else {
            panic!("integer decode of FP4 payload");
        };
        let mut codes = Vec::with_capacity(tokens * dim);
        for w in words {
            codes.extend(unpack_u16(*w, width));
        }
        codes.truncate(tokens * dim);
        dequantize_int_codes(&codes, params, tokens, dim, width, granularity, group)
    }

    fn encode_fp4(values: &TokenMatrix, kind: bd_lowbit::Fp4Kind) -> PackedTensor {
        let tokens = values.tokens();
        let dim = values.dim();
        let block = kind.block_size();
        let mut nibbles: Vec<u8> = Vec::with_capacity(tokens * dim);
        let mut scales = Vec::new();
        for row in values {
            for c0 in (0..dim).step_by(block) {
                let c1 = (c0 + block).min(dim);
                let q = quantize_fp4_block(&row[c0..c1], kind);
                match q.scale {
                    BlockScale::Mx(s) => scales.push(s.to_bits()),
                    BlockScale::Nv(s) => scales.push(s.to_bits()),
                }
                nibbles.extend(q.codes.iter().map(|c| c.to_bits()));
            }
        }
        let codes = nibbles
            .chunks(2)
            .map(|pair| pair[0] | (pair.get(1).copied().unwrap_or(0) << 4))
            .collect();
        PackedTensor {
            tokens,
            dim,
            payload: PackedPayload::Fp4 { codes, scales },
        }
    }

    fn decode_fp4(tensor: &PackedTensor, kind: bd_lowbit::Fp4Kind) -> TokenMatrix {
        let (tokens, dim) = (tensor.tokens, tensor.dim);
        let PackedPayload::Fp4 { codes, scales } = &tensor.payload else {
            panic!("FP4 decode of integer payload");
        };
        let block = kind.block_size();
        let blocks_per_token = dim.div_ceil(block);
        let mut out = TokenMatrix::zeros(tokens, dim);
        for t in 0..tokens {
            for c in 0..dim {
                let flat = t * dim + c;
                let byte = codes[flat / 2];
                let nib = if flat % 2 == 0 { byte & 0xF } else { byte >> 4 };
                let sbyte = scales[t * blocks_per_token + c / block];
                let scale = match kind {
                    bd_lowbit::Fp4Kind::Mx => bd_lowbit::E8M0::from_bits(sbyte).to_f32(),
                    bd_lowbit::Fp4Kind::Nv => bd_lowbit::E4M3::from_bits(sbyte).to_f32(),
                };
                out[t][c] = E2M1::from_bits(nib).to_f32() * scale;
            }
        }
        out
    }
}

impl BlockCodec for ReferenceCodec {
    fn encode(&self, k: &TokenMatrix, v: &TokenMatrix, scheme: QuantScheme) -> PackedBlock {
        assert_eq!(k.tokens(), v.tokens(), "K/V token count mismatch");
        match scheme.kind() {
            SchemeKind::Int {
                width,
                key_granularity,
                group,
            } => {
                let kt = Self::encode_int(k, width, key_granularity, group);
                // V is always tensor-wise along channels.
                let vt = Self::encode_int(
                    v,
                    width,
                    KeyGranularity::TensorWise,
                    QuantScheme::DEFAULT_CHANNEL_GROUP,
                );
                PackedBlock { k: kt, v: vt }
            }
            SchemeKind::Fp4(kind) => PackedBlock {
                k: Self::encode_fp4(k, kind),
                v: Self::encode_fp4(v, kind),
            },
        }
    }

    fn decode(&self, block: &PackedBlock, scheme: QuantScheme) -> (TokenMatrix, TokenMatrix) {
        match scheme.kind() {
            SchemeKind::Int {
                width,
                key_granularity,
                group,
            } => (
                Self::decode_int(&block.k, width, key_granularity, group),
                Self::decode_int(
                    &block.v,
                    width,
                    KeyGranularity::TensorWise,
                    QuantScheme::DEFAULT_CHANNEL_GROUP,
                ),
            ),
            SchemeKind::Fp4(kind) => (
                Self::decode_fp4(&block.k, kind),
                Self::decode_fp4(&block.v, kind),
            ),
        }
    }
}

/// Worst-case absolute reconstruction error of a scheme over given data,
/// used by tests and the accuracy harness.
pub fn reconstruction_error(
    codec: &impl BlockCodec,
    k: &TokenMatrix,
    v: &TokenMatrix,
    scheme: QuantScheme,
) -> f32 {
    let block = codec.encode(k, v, scheme);
    let (dk, dv) = codec.decode(&block, scheme);
    let mut err = 0.0f32;
    for (orig, dec) in [(k, &dk), (v, &dv)] {
        for (o_row, d_row) in orig.iter().zip(dec) {
            for (o, d) in o_row.iter().zip(d_row) {
                err = err.max((o - d).abs());
            }
        }
    }
    err
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_matrix(tokens: usize, dim: usize, seed: f32) -> TokenMatrix {
        (0..tokens)
            .map(|t| {
                (0..dim)
                    .map(|c| ((t * dim + c) as f32 * 0.619 + seed).sin() * 2.0)
                    .collect()
            })
            .collect()
    }

    #[test]
    fn int_round_trip_error_bounded() {
        let k = test_matrix(64, 32, 0.0);
        let v = test_matrix(64, 32, 1.0);
        for scheme in [
            QuantScheme::kt4(),
            QuantScheme::kc4(),
            QuantScheme::kc2(),
            QuantScheme::kt2(),
        ] {
            let err = reconstruction_error(&ReferenceCodec, &k, &v, scheme);
            let max_step = 4.0 / (scheme.int_width().unwrap().levels() - 1) as f32;
            assert!(err <= max_step * 0.6 + 0.02, "{scheme}: err {err}");
        }
    }

    #[test]
    fn fp4_round_trip_error_bounded() {
        let k = test_matrix(16, 64, 0.3);
        let v = test_matrix(16, 64, 0.7);
        for scheme in [QuantScheme::mxfp4(), QuantScheme::nvfp4()] {
            let err = reconstruction_error(&ReferenceCodec, &k, &v, scheme);
            assert!(err < 0.8, "{scheme}: err {err}");
        }
    }

    #[test]
    fn channel_wise_beats_tensor_wise_on_channel_outliers() {
        // Keys with a hot channel: channel-wise grouping isolates the
        // outlier so the *other* channels keep fine-grained scales, which
        // is why KIVI-style KC quantization preserves accuracy (paper §II).
        let tokens = 64;
        let dim = 32;
        let outlier = 7usize;
        let mut k = test_matrix(tokens, dim, 0.0);
        for row in &mut k {
            row[outlier] *= 50.0; // channel outlier, as observed in real LLM keys
        }
        let v = test_matrix(tokens, dim, 1.0);
        let err_excluding_outlier = |scheme: QuantScheme| -> f32 {
            let block = ReferenceCodec.encode(&k, &v, scheme);
            let (dk, _) = ReferenceCodec.decode(&block, scheme);
            let mut err = 0.0f32;
            for (orig, dec) in k.iter().zip(&dk) {
                for c in (0..dim).filter(|&c| c != outlier) {
                    err = err.max((orig[c] - dec[c]).abs());
                }
            }
            err
        };
        let err_kc = err_excluding_outlier(QuantScheme::kc4());
        let err_kt = err_excluding_outlier(QuantScheme::kt4());
        assert!(
            err_kc < err_kt * 0.5,
            "channel-wise {err_kc} should beat tensor-wise {err_kt}"
        );
    }

    #[test]
    fn payload_bytes_match_scheme_accounting() {
        let tokens = 128;
        let dim = 128;
        let k = test_matrix(tokens, dim, 0.0);
        let v = test_matrix(tokens, dim, 1.0);
        for scheme in [QuantScheme::kc4(), QuantScheme::kt4(), QuantScheme::kc2()] {
            let block = ReferenceCodec.encode(&k, &v, scheme);
            let expect = scheme.bytes_per_token(dim) * tokens as f64;
            let actual = block.byte_size() as f64;
            assert!(
                (actual - expect).abs() / expect < 0.02,
                "{scheme}: {actual} vs {expect}"
            );
        }
    }

    #[test]
    fn decode_shapes_match() {
        let k = test_matrix(32, 16, 0.0);
        let v = test_matrix(32, 16, 1.0);
        let block = ReferenceCodec.encode(&k, &v, QuantScheme::kc4());
        let (dk, dv) = ReferenceCodec.decode(&block, QuantScheme::kc4());
        assert_eq!(dk.len(), 32);
        assert_eq!(dv.len(), 32);
        assert_eq!(dk[0].len(), 16);
        assert_eq!(dv[31].len(), 16);
    }

    #[test]
    fn partial_group_tail_is_handled() {
        // 40 tokens with a 64-token group: one ragged group.
        let k = test_matrix(40, 16, 0.0);
        let v = test_matrix(40, 16, 1.0);
        let err = reconstruction_error(&ReferenceCodec, &k, &v, QuantScheme::kc4());
        assert!(err < 0.2);
    }
}
