#![warn(missing_docs)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

//! # bd-kvcache — quantized KV-cache containers for BitDecoding-RS
//!
//! The dynamic low-bit KV cache the paper is built around: quantization
//! [schemes](crate::scheme) (KT/KC × 4/2-bit, MXFP4/NVFP4), the shared
//! [pack-layout configuration](crate::layout) that fixes the residual block
//! size `Nr = Pn × Wn × R` (paper Eq. 1), the
//! [packed + residual cache](crate::cache) itself, pluggable
//! [block codecs](crate::codec), [paged management](crate::paged), the
//! [paged physical store](crate::store) that puts packed blocks and
//! residual windows behind the page tables for the serving setting, and
//! the [device/placement layer](crate::placement) with its
//! [head-sharded multi-device store](crate::sharded) for tensor-parallel
//! serving.
//!
//! The cache is a *container*: how values are physically packed is decided
//! by the [`BlockCodec`] that flushes each residual block. The
//! fragment-true codec lives in `bd-core`; the [`ReferenceCodec`] here is
//! the logical linear layout non-tensor-core systems use.

pub mod block;
pub mod cache;
pub mod codec;
pub mod layout;
pub mod matrix;
pub mod paged;
pub mod placement;
mod radix;
pub mod scheme;
pub mod sharded;
pub mod store;

pub use block::{PackedBlock, PackedPayload, PackedTensor};
pub use cache::{CacheConfig, CacheError, QuantizedKvCache};
pub use codec::{
    dequantize_int_codes, quantize_int_codes, reconstruction_error, BlockCodec, ReferenceCodec,
};
pub use layout::{partition_prefill, PackLayout};
pub use matrix::{TokenMatrix, TokenRows};
pub use paged::{PageId, PagedOom, PagedPool, SeqId};
pub use placement::{DeviceId, Partitioning, Placement};
pub use scheme::{KeyGranularity, QuantScheme, SchemeKind};
pub use sharded::{DeviceKvStats, ShardedKvStore, SwappedShardedSeq};
pub use store::{
    KvSharingStats, PagedKvStore, PrefixAdmit, PrefixCacheStats, StoreError, SwappedSeq,
};
