//! Packed storage blocks: the opaque physical representation of one flushed
//! residual block.
//!
//! The cache does not interpret the words — only the codec that produced
//! them (the fragment-true kernels in `bd-core`, or the
//! [reference codec](crate::codec::ReferenceCodec)) can map them back to
//! `(token, channel)` values, and only under the same [`PackLayout`]
//! configuration (see paper Fig. 3).

#[cfg(doc)]
use crate::layout::PackLayout;
use bd_lowbit::Half2;

/// Physical payload of one packed tensor (K or V) for one block of tokens.
#[derive(Clone, Debug, PartialEq)]
pub enum PackedPayload {
    /// Integer codes packed into 16-bit words plus `half2` group metadata.
    Int {
        /// Packed code words in codec-defined physical order.
        words: Vec<u16>,
        /// Per-group `(scale, zero)` pairs in codec-defined group order.
        params: Vec<Half2>,
    },
    /// FP4 codes (two per byte) plus one scale byte per hardware block.
    Fp4 {
        /// E2M1 nibbles, two per byte, in codec-defined order.
        codes: Vec<u8>,
        /// E8M0/E4M3 block scales.
        scales: Vec<u8>,
    },
}

impl PackedPayload {
    /// Bytes occupied in device memory.
    pub fn byte_size(&self) -> usize {
        match self {
            PackedPayload::Int { words, params } => words.len() * 2 + params.len() * 4,
            PackedPayload::Fp4 { codes, scales } => codes.len() + scales.len(),
        }
    }
}

/// A packed tensor covering `tokens × dim` values.
#[derive(Clone, Debug, PartialEq)]
pub struct PackedTensor {
    /// Tokens covered by this block.
    pub tokens: usize,
    /// Channels per token.
    pub dim: usize,
    /// The physical payload.
    pub payload: PackedPayload,
}

impl PackedTensor {
    /// Bytes occupied in device memory.
    pub fn byte_size(&self) -> usize {
        self.payload.byte_size()
    }

    /// Logical element count.
    pub fn elems(&self) -> usize {
        self.tokens * self.dim
    }
}

/// One flushed residual block: packed K and V plus bookkeeping.
#[derive(Clone, Debug, PartialEq)]
pub struct PackedBlock {
    /// Packed Key tensor.
    pub k: PackedTensor,
    /// Packed Value tensor.
    pub v: PackedTensor,
}

impl PackedBlock {
    /// Tokens covered.
    pub fn tokens(&self) -> usize {
        self.k.tokens
    }

    /// Total device bytes.
    pub fn byte_size(&self) -> usize {
        self.k.byte_size() + self.v.byte_size()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_payload_bytes() {
        let p = PackedPayload::Int {
            words: vec![0; 100],
            params: vec![Half2::default(); 10],
        };
        assert_eq!(p.byte_size(), 240);
    }

    #[test]
    fn fp4_payload_bytes() {
        let p = PackedPayload::Fp4 {
            codes: vec![0; 64],
            scales: vec![0; 4],
        };
        assert_eq!(p.byte_size(), 68);
    }

    #[test]
    fn block_accounting() {
        let t = PackedTensor {
            tokens: 128,
            dim: 64,
            payload: PackedPayload::Int {
                words: vec![0; 128 * 64 / 4],
                params: vec![Half2::default(); 64],
            },
        };
        assert_eq!(t.elems(), 8192);
        let b = PackedBlock { k: t.clone(), v: t };
        assert_eq!(b.tokens(), 128);
        assert_eq!(b.byte_size(), 2 * (2048 * 2 + 256));
    }
}
