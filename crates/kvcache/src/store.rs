//! Paged **physical** KV storage: packed quantized blocks and FP16
//! residual windows living behind [`PagedPool`] page tables.
//!
//! [`crate::paged::PagedPool`] is pure bookkeeping — it decides *which*
//! pages a sequence owns. [`PagedKvStore`] puts real data behind that
//! decision: a page-frame arena holds the flushed [`PackedBlock`]s of every
//! resident sequence, each block homed on the physical page that covers its
//! first token, while the sub-block FP16 residual window of each sequence
//! accumulates outside the arena exactly as in the contiguous
//! [`QuantizedKvCache`]. The serve runtime (`bd-serve`) iterates a
//! sequence's blocks **through the page table** — the PagedAttention-style
//! indirection of the paper's "Page" setting — and appends decode-step
//! tokens between batch steps.
//!
//! # Contiguous-equivalence invariant
//!
//! For any append/prefill history, the blocks gathered through the page
//! table (in logical order) plus the residual window are **bitwise
//! identical** to what a contiguous [`QuantizedKvCache`] holds after the
//! same history with the same codec: same FP16 rounding, same `Nr` flush
//! boundaries, same packed payloads. Page size is free to be anything ≥ 1
//! token — blocks may straddle pages (they stay homed on their first
//! token's page) and pages may hold many blocks. [`PagedKvStore::matches_cache`]
//! checks the invariant; the serve property tests drive it for arbitrary
//! page sizes and eviction orders.

use crate::block::{PackedBlock, PackedPayload};
use crate::cache::{push_rounded, rounded_block, CacheConfig, CacheError, QuantizedKvCache};
use crate::codec::BlockCodec;
use crate::layout::partition_prefill;
use crate::matrix::{TokenMatrix, TokenRows};
use crate::paged::{PageId, PagedOom, PagedPool, SeqId};
use crate::radix::RadixIndex;
use std::collections::BTreeMap;
use std::fmt;

/// Errors from paged-store operations.
#[derive(Debug, Clone, PartialEq)]
pub enum StoreError {
    /// The page pool could not supply the requested capacity.
    Oom(PagedOom),
    /// A token row had the wrong shape.
    Cache(CacheError),
    /// The sequence is not resident in the store.
    UnknownSeq(SeqId),
    /// The sequence was sealed and no longer accepts tokens.
    Sealed(SeqId),
    /// A per-head slice had the wrong number of heads.
    HeadCount {
        /// Heads provided.
        got: usize,
        /// Heads the store was built with.
        expected: usize,
    },
    /// A fork boundary fell inside an already-quantized packed block: the
    /// FP16 rows the child's residual window would need were flushed (and
    /// quantized) past recovery. Valid boundaries are `Nr`-aligned token
    /// counts, or any count whose residual rows are still in the parent's
    /// FP16 window.
    ForkBoundary {
        /// The requested fork boundary, in tokens.
        at_token: usize,
        /// The parent's logical length at the fork attempt.
        parent_len: usize,
        /// The residual block size `Nr` of the store.
        residual_block: usize,
    },
    /// A swap blob failed its integrity check: the checksum recorded at
    /// swap-out no longer matches the blob's contents, so restoring it
    /// would install silently corrupted KV. Swap-in rejects the blob
    /// before touching any pool.
    CorruptBlob {
        /// The checksum recorded at swap-out.
        expected: u64,
        /// The checksum recomputed from the blob at swap-in.
        got: u64,
    },
    /// A sharded swap blob spans a different device count than the store
    /// — e.g. it predates a device loss and the placement rebuild that
    /// followed, so its per-device shares no longer line up.
    DeviceCount {
        /// Devices the blob was swapped out across.
        got: usize,
        /// Devices the store currently has.
        expected: usize,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Oom(e) => write!(f, "paged store: {e}"),
            StoreError::Cache(e) => write!(f, "paged store: {e}"),
            StoreError::UnknownSeq(s) => write!(f, "unknown sequence {s:?}"),
            StoreError::Sealed(s) => write!(f, "sequence {s:?} is sealed"),
            StoreError::HeadCount { got, expected } => {
                write!(
                    f,
                    "{got} per-head rows provided, store has {expected} heads"
                )
            }
            StoreError::ForkBoundary {
                at_token,
                parent_len,
                residual_block,
            } => {
                write!(
                    f,
                    "cannot fork at token {at_token}: parent of length {parent_len} \
                     (Nr = {residual_block}) no longer holds those rows in FP16"
                )
            }
            StoreError::CorruptBlob { expected, got } => {
                write!(
                    f,
                    "swap blob failed integrity check: checksum {got:#018x}, \
                     expected {expected:#018x}"
                )
            }
            StoreError::DeviceCount { got, expected } => {
                write!(f, "swap blob spans {got} devices, store has {expected}")
            }
        }
    }
}

impl std::error::Error for StoreError {}

impl From<PagedOom> for StoreError {
    fn from(e: PagedOom) -> Self {
        StoreError::Oom(e)
    }
}

impl From<CacheError> for StoreError {
    fn from(e: CacheError) -> Self {
        StoreError::Cache(e)
    }
}

/// Page-sharing occupancy snapshot of a [`PagedKvStore`] (or, summed, of a
/// [`crate::ShardedKvStore`]) — the storage half of the serve layer's
/// shared-vs-owned metrics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct KvSharingStats {
    /// Physical pages currently allocated.
    pub physical_pages: usize,
    /// Page-table entries summed over resident sequences — what an
    /// unshared store would have to allocate for the same residents.
    pub logical_pages: usize,
    /// Physical pages mapped by more than one sequence.
    pub shared_pages: usize,
    /// Physical pages mapped by exactly one sequence.
    pub owned_pages: usize,
    /// Packed-payload bytes deduplication saves right now: for every
    /// shared page, `(refcount − 1) ×` the bytes of the blocks homed on
    /// it.
    pub bytes_saved: usize,
}

impl KvSharingStats {
    /// Accumulates another snapshot (per-device aggregation).
    pub fn absorb(&mut self, other: KvSharingStats) {
        self.physical_pages += other.physical_pages;
        self.logical_pages += other.logical_pages;
        self.shared_pages += other.shared_pages;
        self.owned_pages += other.owned_pages;
        self.bytes_saved += other.bytes_saved;
    }
}

/// Lifetime counters of the content-addressed radix prefix cache — see
/// [`PagedKvStore::set_prefix_cache`]. A **hit** is an admission (fresh
/// prefill or swap-in) that adopted at least one cached page; every other
/// admission eligible for lookup counts a **miss**.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PrefixCacheStats {
    /// Admissions that adopted at least one cached prefix page.
    pub hits: u64,
    /// Admissions that went through lookup and adopted nothing.
    pub misses: u64,
    /// Pages adopted zero-copy from the cache, summed over hits.
    pub pages_reused: u64,
    /// Packed payload bytes resident on those adopted pages.
    pub bytes_reused: u64,
    /// Unreferenced subtrees evicted (LRU reclaim or staleness).
    pub evicted_subtrees: u64,
    /// Pages those evicted subtrees released back to the pool.
    pub evicted_pages: u64,
}

impl PrefixCacheStats {
    /// Accumulates another device's counters (sharded aggregation).
    pub fn absorb(&mut self, other: PrefixCacheStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.pages_reused += other.pages_reused;
        self.bytes_reused += other.bytes_reused;
        self.evicted_subtrees += other.evicted_subtrees;
        self.evicted_pages += other.evicted_pages;
    }
}

/// What one [`PagedKvStore::admit_prefill_cached`] admission adopted from
/// the prefix cache.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PrefixAdmit {
    /// Pages adopted zero-copy instead of being written fresh.
    pub pages_reused: usize,
    /// Packed payload bytes resident on the adopted pages.
    pub bytes_reused: usize,
}

impl PrefixAdmit {
    /// Accumulates another device's share of the same admission.
    pub fn absorb(&mut self, other: PrefixAdmit) {
        self.pages_reused += other.pages_reused;
        self.bytes_reused += other.bytes_reused;
    }
}

/// Per-sequence state outside the page arena: the FP16 residual window per
/// head plus logical length bookkeeping.
#[derive(Clone, Debug)]
struct SeqKv {
    /// Logical tokens (packed + residual).
    len: usize,
    residual_k: Vec<TokenMatrix>,
    residual_v: Vec<TokenMatrix>,
    sealed: bool,
}

/// One physical page frame: the packed blocks homed on this page, per KV
/// head, in logical (append) order. A frame only ever holds blocks of the
/// single sequence that owns the page.
type Frame = Vec<Vec<PackedBlock>>;

/// A sequence swapped out of the page arena into host memory: the packed
/// blocks of every head in logical order plus the FP16 residual window,
/// with enough bookkeeping (the reserved token budget, and the shared
/// pages that stayed resident) for [`PagedKvStore::swap_in`] to
/// re-reserve the sequence's full page budget and restore it **bitwise**.
/// Produced by [`PagedKvStore::swap_out`].
#[derive(Clone, Debug)]
pub struct SwappedSeq {
    /// Head dimension (consistency check on swap-in).
    dim: usize,
    /// Logical tokens (packed + residual) at swap-out.
    len: usize,
    /// Token length the page pool had reserved (≥ `len`; the prompt +
    /// generation budget under up-front reservation).
    reserved_tokens: usize,
    /// Whether the sequence was sealed.
    sealed: bool,
    /// Per head, the packed blocks in logical (append) order.
    blocks: Vec<Vec<PackedBlock>>,
    /// Per head, the FP16 residual K window.
    residual_k: Vec<TokenMatrix>,
    /// Per head, the FP16 residual V window.
    residual_v: Vec<TokenMatrix>,
    /// Per table slot at swap-out: `Some((page, generation))` when the
    /// slot mapped a **shared** page that stays resident (held by a
    /// sharing sequence) after this swap-out. [`PagedKvStore::swap_in`]
    /// re-adopts such a page — restoring the sequence *into re-shared
    /// pages* — whenever the recorded generation still matches, i.e. the
    /// page was never freed in between.
    reshare: Vec<Option<(PageId, u64)>>,
    /// FNV-1a fold over the packed payloads, the FP16 residual windows,
    /// the reshare records, and the length bookkeeping — recorded at
    /// swap-out, verified at swap-in. Host-side bit rot between the two
    /// surfaces as [`StoreError::CorruptBlob`] instead of silently
    /// corrupted KV.
    checksum: u64,
}

/// FNV-1a 64-bit offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// Folds `bytes` into an FNV-1a 64-bit state.
fn fnv_fold(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Folds one packed block — both tensors' shapes and every payload byte —
/// into an FNV-1a state. Shared by the swap-blob checksum and the radix
/// prefix chain hash, so both key on exactly the packed representation.
fn fold_packed_block(mut h: u64, block: &PackedBlock) -> u64 {
    for tensor in [&block.k, &block.v] {
        h = fnv_fold(h, &(tensor.tokens as u64).to_le_bytes());
        h = fnv_fold(h, &(tensor.dim as u64).to_le_bytes());
        match &tensor.payload {
            PackedPayload::Int { words, params } => {
                for w in words {
                    h = fnv_fold(h, &w.to_le_bytes());
                }
                for p in params {
                    h = fnv_fold(h, &p.to_bits().to_le_bytes());
                }
            }
            PackedPayload::Fp4 { codes, scales } => {
                h = fnv_fold(h, codes);
                h = fnv_fold(h, scales);
            }
        }
    }
    h
}

/// Greatest common divisor (Euclid).
fn gcd(mut a: usize, mut b: usize) -> usize {
    while b != 0 {
        (a, b) = (b, a % b);
    }
    a
}

impl SwappedSeq {
    /// Logical tokens held in the blob.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when the blob holds no tokens.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Pages [`PagedKvStore::swap_in`] must reserve, given the store's
    /// page size.
    pub fn pages_needed(&self, page_tokens: usize) -> usize {
        self.reserved_tokens.div_ceil(page_tokens)
    }

    /// Host bytes the blob occupies (packed payloads + FP16 residual
    /// windows) — the traffic one swap direction moves over the host link.
    pub fn host_bytes(&self) -> usize {
        let packed: usize = self
            .blocks
            .iter()
            .flat_map(|head| head.iter().map(PackedBlock::byte_size))
            .sum();
        let residual: usize = self
            .residual_k
            .iter()
            .chain(&self.residual_v)
            .map(|m| m.len() * self.dim * 2)
            .sum();
        packed + residual
    }

    /// The integrity checksum recorded at swap-out.
    pub fn checksum(&self) -> u64 {
        self.checksum
    }

    /// Recomputes the checksum from the blob's current contents: every
    /// packed code word / quant parameter, every FP16 residual row (as
    /// exact f32 bit patterns), every reshare `(page, generation)` record,
    /// and the length bookkeeping.
    pub fn computed_checksum(&self) -> u64 {
        let mut h = FNV_OFFSET;
        for v in [
            self.dim as u64,
            self.len as u64,
            self.reserved_tokens as u64,
            u64::from(self.sealed),
        ] {
            h = fnv_fold(h, &v.to_le_bytes());
        }
        for head in &self.blocks {
            for block in head {
                h = fold_packed_block(h, block);
            }
        }
        for m in self.residual_k.iter().chain(&self.residual_v) {
            for &x in m.as_slice() {
                h = fnv_fold(h, &x.to_bits().to_le_bytes());
            }
        }
        for entry in &self.reshare {
            match entry {
                Some((page, generation)) => {
                    h = fnv_fold(h, &(page.0 as u64).to_le_bytes());
                    h = fnv_fold(h, &generation.to_le_bytes());
                }
                None => h = fnv_fold(h, &[0xFF]),
            }
        }
        h
    }

    /// Verifies the blob against its recorded checksum.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::CorruptBlob`] when any payload bit changed
    /// since swap-out.
    pub fn verify(&self) -> Result<(), StoreError> {
        let got = self.computed_checksum();
        if got == self.checksum {
            Ok(())
        } else {
            Err(StoreError::CorruptBlob {
                expected: self.checksum,
                got,
            })
        }
    }

    /// Flips one payload bit **without** updating the recorded checksum —
    /// the tamper hook the fault injector and the corruption tests use.
    /// The bit lands in the first packed payload when the blob holds any
    /// flushed block, in the FP16 residual window otherwise; a blob with
    /// no payload at all is left unchanged.
    pub fn flip_bit(&mut self, bit: u64) {
        for head in &mut self.blocks {
            for block in head {
                match &mut block.k.payload {
                    PackedPayload::Int { words, .. } if !words.is_empty() => {
                        let i = (bit / 16) as usize % words.len();
                        words[i] ^= 1 << (bit % 16);
                        return;
                    }
                    PackedPayload::Fp4 { codes, .. } if !codes.is_empty() => {
                        let i = (bit / 8) as usize % codes.len();
                        codes[i] ^= 1 << (bit % 8);
                        return;
                    }
                    _ => {}
                }
            }
        }
        // No packed payload: flip one mantissa bit in the residual window.
        let dim = self.dim.max(1);
        for idx in 0..self.residual_k.len() {
            let m = &self.residual_k[idx];
            if m.is_empty() {
                continue;
            }
            let t = (bit as usize / dim) % m.len();
            let c = bit as usize % dim;
            let replacement = TokenMatrix::from_fn(m.len(), dim, |tt, cc| {
                let x = m.row(tt)[cc];
                if tt == t && cc == c {
                    f32::from_bits(x.to_bits() ^ 1)
                } else {
                    x
                }
            });
            self.residual_k[idx] = replacement;
            return;
        }
    }
}

/// Paged physical KV storage for many concurrent sequences — see the
/// [module docs](self) for the layout and the contiguous-equivalence
/// invariant.
///
/// # Examples
///
/// ```
/// use bd_kvcache::{CacheConfig, PackLayout, PagedKvStore, QuantScheme, ReferenceCodec};
///
/// let cfg = CacheConfig::new(16, QuantScheme::kc4(), PackLayout::sm80_default());
/// let mut store = PagedKvStore::new(cfg, 1, 64, 32);
/// let seq = store.admit(200).unwrap(); // reserve 200 tokens of pages
/// let row = vec![0.5f32; 16];
/// store
///     .append_step(seq, &[row.clone()], &[row], &ReferenceCodec)
///     .unwrap();
/// assert_eq!(store.seq_len(seq), Some(1));
/// store.evict(seq);
/// assert_eq!(store.free_pages(), 64);
/// ```
#[derive(Clone, Debug)]
pub struct PagedKvStore {
    config: CacheConfig,
    heads: usize,
    pool: PagedPool,
    frames: Vec<Frame>,
    seqs: BTreeMap<SeqId, SeqKv>,
    cow_breaks: usize,
    /// Content-addressed radix prefix index over pinned sealed page runs
    /// (`None` = cache disabled, the construction default; the serve layer
    /// enables it per device). See [`PagedKvStore::set_prefix_cache`].
    radix: Option<RadixIndex>,
    prefix_stats: PrefixCacheStats,
    /// Test-only hook: collapse every radix chain key to one constant so
    /// the collision tests can prove byte-verification — not the hash —
    /// is what prevents aliasing.
    #[cfg(test)]
    collide_hashes: bool,
}

impl PagedKvStore {
    /// Creates a store of `total_pages` pages of `page_tokens` tokens each,
    /// holding `heads` KV heads per sequence.
    ///
    /// # Panics
    ///
    /// Panics if `heads` or `page_tokens` is zero.
    pub fn new(config: CacheConfig, heads: usize, total_pages: usize, page_tokens: usize) -> Self {
        assert!(heads > 0, "store needs at least one KV head");
        PagedKvStore {
            config,
            heads,
            pool: PagedPool::new(total_pages, page_tokens),
            frames: vec![vec![Vec::new(); heads]; total_pages],
            seqs: BTreeMap::new(),
            cow_breaks: 0,
            radix: None,
            prefix_stats: PrefixCacheStats::default(),
            #[cfg(test)]
            collide_hashes: false,
        }
    }

    /// Monotone count of copy-on-write breaks since the store was built:
    /// each is one shared page privatized because a sequence wrote into
    /// it. Observability reads this per step to attribute CoW traffic.
    pub fn cow_breaks(&self) -> usize {
        self.cow_breaks
    }

    /// The cache configuration shared by every sequence.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// KV heads per sequence.
    pub fn heads(&self) -> usize {
        self.heads
    }

    /// Residual block size `Nr`.
    pub fn residual_block(&self) -> usize {
        self.config.residual_block()
    }

    /// Tokens per page.
    pub fn page_tokens(&self) -> usize {
        self.pool.page_tokens()
    }

    /// Pages available to new allocations: the pool's free list **plus**
    /// prefix-cache pages no sequence maps any more, which
    /// [`PagedKvStore::set_prefix_cache`] reclaims on demand. With the
    /// cache disabled this is exactly the pool's free list, and with it
    /// enabled every admission decision charges against this number — so
    /// cache residency never changes what the scheduler can admit.
    pub fn free_pages(&self) -> usize {
        self.pool.free_pages() + self.pool.reclaimable_pages()
    }

    /// Total pool capacity in pages.
    pub fn total_pages(&self) -> usize {
        self.pool.total_pages()
    }

    /// Fraction of pages in use, counting reclaimable cache holdings as
    /// free (consistent with [`PagedKvStore::free_pages`]).
    pub fn utilization(&self) -> f64 {
        1.0 - self.free_pages() as f64 / self.total_pages().max(1) as f64
    }

    /// The underlying page tables (read-only).
    pub fn pool(&self) -> &PagedPool {
        &self.pool
    }

    /// Number of resident sequences.
    pub fn resident(&self) -> usize {
        self.seqs.len()
    }

    /// Admits a new sequence, reserving pages for `reserve_tokens` tokens
    /// up front (pass the prompt + generation budget to make every later
    /// append infallible, or 0 to grow page-by-page on demand).
    ///
    /// A failed admission leaves the store **completely** unchanged: in
    /// particular it does not consume a [`SeqId`], so an
    /// admit-fail → admit-success history hands out the same id stream as
    /// one without the failure — the property that keeps every device of a
    /// [`crate::ShardedKvStore`] in [`SeqId`] lockstep.
    ///
    /// # Errors
    ///
    /// Returns [`PagedOom`] — and admits nothing — when the pool cannot
    /// cover the reservation.
    pub fn admit(&mut self, reserve_tokens: usize) -> Result<SeqId, PagedOom> {
        // Pre-check the reservation before touching the pool: `PagedPool::
        // admit` advances the id counter unconditionally, so checking after
        // the fact would burn a SeqId on failure.
        let need = reserve_tokens.div_ceil(self.pool.page_tokens());
        if need > self.free_pages() {
            return Err(PagedOom {
                requested: need,
                free: self.free_pages(),
            });
        }
        self.ensure_free(need, &[]);
        let seq = self.pool.admit();
        if reserve_tokens > 0 {
            self.pool
                .grow(seq, reserve_tokens)
                .unwrap_or_else(|_| unreachable!("reservation pre-checked against the free list"));
        }
        self.seqs.insert(
            seq,
            SeqKv {
                len: 0,
                residual_k: vec![TokenMatrix::new(self.config.dim); self.heads],
                residual_v: vec![TokenMatrix::new(self.config.dim); self.heads],
                sealed: false,
            },
        );
        Ok(seq)
    }

    /// `true` when [`PagedKvStore::fork`] at `at_token` would succeed on
    /// residency/boundary grounds (pages permitting): the parent is
    /// resident and either `at_token` is `Nr`-aligned or the rows past the
    /// last aligned boundary are still in the parent's FP16 residual
    /// window.
    pub fn can_fork(&self, parent: SeqId, at_token: usize) -> bool {
        let Some(state) = self.seqs.get(&parent) else {
            return false;
        };
        let nr = self.residual_block();
        at_token <= state.len && (at_token.is_multiple_of(nr) || at_token / nr == state.len / nr)
    }

    /// Pages a [`PagedKvStore::fork`] would **newly** allocate (the shared
    /// prefix costs nothing), or `None` when the fork itself is invalid —
    /// what admission preflight should charge a shared-prompt request.
    pub fn fork_new_pages(
        &self,
        parent: SeqId,
        at_token: usize,
        reserve_tokens: usize,
    ) -> Option<usize> {
        if !self.can_fork(parent, at_token) {
            return None;
        }
        let pt = self.page_tokens();
        let shared = at_token.div_ceil(pt);
        let total = reserve_tokens.max(at_token).div_ceil(pt).max(shared);
        Some(total - shared)
    }

    /// Admits a **child** sequence sharing the parent's first `at_token`
    /// tokens copy-on-write: every page covering the shared prefix is
    /// aliased (refcount bumped, zero bytes copied), the partial residual
    /// window — the rows past the last `Nr` boundary — is deep-copied, and
    /// pages for the rest of `reserve_tokens` are drawn fresh. The child
    /// is bitwise indistinguishable from a sequence that prefilled the
    /// same `at_token` tokens itself; either side's first flush into a
    /// still-shared page triggers copy-on-write of only that page.
    ///
    /// `at_token` must be `Nr`-aligned **or** within reach of the parent's
    /// FP16 residual window (`at_token / Nr == parent_len / Nr`): rows
    /// inside an already-quantized block cannot be recovered at full
    /// precision.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::ForkBoundary`] for an unreachable boundary,
    /// [`StoreError::UnknownSeq`] for a non-resident parent, and
    /// [`StoreError::Oom`] — admitting nothing — when the pool cannot
    /// supply the child's private pages.
    ///
    /// # Examples
    ///
    /// ```
    /// use bd_kvcache::{CacheConfig, PackLayout, PagedKvStore, QuantScheme, ReferenceCodec};
    ///
    /// let cfg = CacheConfig::new(16, QuantScheme::kc4(), PackLayout::sm80_default());
    /// let mut store = PagedKvStore::new(cfg, 1, 64, 32);
    /// let parent = store.admit(256).unwrap();
    /// let prompt: Vec<Vec<f32>> = (0..256).map(|t| vec![t as f32 * 0.01; 16]).collect();
    /// store.prefill(parent, &[prompt.clone()], &[prompt], &ReferenceCodec).unwrap();
    ///
    /// let free_before = store.free_pages();
    /// let child = store.fork(parent, 256, 256 + 32).unwrap();
    /// // The child shares all 8 prompt pages; only its private tail
    /// // reservation (one 32-token page) was newly allocated.
    /// assert_eq!(free_before - store.free_pages(), 1);
    /// assert_eq!(store.seq_len(child), Some(256));
    /// // Shared bytes are gathered identically through both page tables.
    /// assert_eq!(store.packed_blocks(parent, 0), store.packed_blocks(child, 0));
    /// // Divergent appends stay private: the parent's stream is untouched.
    /// let row = vec![0.5f32; 16];
    /// store.append_step(child, &[row.clone()], &[row], &ReferenceCodec).unwrap();
    /// assert_eq!(store.seq_len(parent), Some(256));
    /// assert_eq!(store.seq_len(child), Some(257));
    /// ```
    pub fn fork(
        &mut self,
        parent: SeqId,
        at_token: usize,
        reserve_tokens: usize,
    ) -> Result<SeqId, StoreError> {
        let state = self
            .seqs
            .get(&parent)
            .ok_or(StoreError::UnknownSeq(parent))?;
        let nr = self.residual_block();
        if !(at_token <= state.len
            && (at_token.is_multiple_of(nr) || at_token / nr == state.len / nr))
        {
            return Err(StoreError::ForkBoundary {
                at_token,
                parent_len: state.len,
                residual_block: nr,
            });
        }
        // Deep-copy the shared prefix of the parent's residual window (the
        // rows of tokens `at_token - at_token % Nr .. at_token`).
        let res = at_token % nr;
        let copy_prefix =
            |m: &TokenMatrix| TokenMatrix::from_fn(res, self.config.dim, |t, c| m.row(t)[c]);
        let residual_k: Vec<TokenMatrix> = state.residual_k.iter().map(copy_prefix).collect();
        let residual_v: Vec<TokenMatrix> = state.residual_v.iter().map(copy_prefix).collect();
        let shared_slots = at_token.div_ceil(self.pool.page_tokens());
        let Some(parent_table) = self.pool.table(parent) else {
            unreachable!("resident sequence");
        };
        let slots: Vec<Option<PageId>> = parent_table[..shared_slots]
            .iter()
            .map(|&p| Some(p))
            .collect();
        let fork_reserve = reserve_tokens.max(at_token);
        let total_slots = fork_reserve
            .div_ceil(self.pool.page_tokens())
            .max(slots.len());
        // The shared prefix is held by the (resident) parent, so it can
        // never be a reclaim victim — only the private tail needs room.
        self.ensure_free(total_slots - slots.len(), &[]);
        let child = self
            .pool
            .adopt(&slots, fork_reserve)
            .map_err(StoreError::Oom)?;
        self.seqs.insert(
            child,
            SeqKv {
                len: at_token,
                residual_k,
                residual_v,
                sealed: false,
            },
        );
        Ok(child)
    }

    /// Marks a sequence finished: no further tokens may be appended. Its
    /// pages stay resident (readable) until [`PagedKvStore::evict`].
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::UnknownSeq`] for a non-resident sequence.
    pub fn seal(&mut self, seq: SeqId) -> Result<(), StoreError> {
        self.seqs
            .get_mut(&seq)
            .ok_or(StoreError::UnknownSeq(seq))?
            .sealed = true;
        Ok(())
    }

    /// Drops one reference on every page `seq` maps and clears the frames
    /// of pages whose **last** reference dropped (the storage half shared
    /// by [`PagedKvStore::evict`] and [`PagedKvStore::swap_out`]). Pages
    /// still mapped by a sharing sequence keep their frames untouched.
    fn release_pages(&mut self, seq: SeqId) {
        for page in self.pool.release(seq) {
            for head_blocks in &mut self.frames[page.0 as usize] {
                head_blocks.clear();
            }
        }
    }

    /// Releases a sequence: clears every page frame it owned and returns
    /// the pages to the pool — **all** of them, whether the residual window
    /// was sealed, unsealed, or mid-append (pages are owned via the page
    /// table alone; the residual window lives outside the arena and is
    /// dropped with the sequence state). Unknown sequences are ignored.
    pub fn evict(&mut self, seq: SeqId) {
        if self.seqs.remove(&seq).is_none() {
            return;
        }
        self.release_pages(seq);
    }

    /// Swaps a sequence out to host memory: serializes its packed blocks
    /// (in logical order, per head) and FP16 residual window into a
    /// [`SwappedSeq`] blob, then frees every page it held. The blob plus
    /// [`PagedKvStore::swap_in`] restore the sequence **bitwise** — the
    /// physical pages may differ after the round trip, but the
    /// page-table-gathered blocks and the residual window are byte-equal,
    /// so decode is unaffected.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::UnknownSeq`] for a non-resident sequence (and
    /// changes nothing).
    pub fn swap_out(&mut self, seq: SeqId) -> Result<SwappedSeq, StoreError> {
        if !self.seqs.contains_key(&seq) {
            return Err(StoreError::UnknownSeq(seq));
        }
        let blocks: Vec<Vec<PackedBlock>> = (0..self.heads)
            .map(|h| self.packed_blocks(seq, h).into_iter().cloned().collect())
            .collect();
        let reserved_tokens = self
            .pool
            .seq_len(seq)
            .unwrap_or_else(|| unreachable!("resident sequence"));
        // Shared pages survive this swap-out (a sharing sequence still
        // references them); record them with their generation so swap-in
        // can re-share instead of re-materializing, when they are still
        // resident.
        let reshare: Vec<Option<(PageId, u64)>> = self
            .pool
            .table(seq)
            .unwrap_or_else(|| unreachable!("resident sequence"))
            .iter()
            .map(|&p| (self.pool.seq_refcount(p) > 1).then(|| (p, self.pool.generation(p))))
            .collect();
        let Some(state) = self.seqs.remove(&seq) else {
            unreachable!("checked above");
        };
        self.release_pages(seq);
        let mut blob = SwappedSeq {
            dim: self.config.dim,
            len: state.len,
            reserved_tokens,
            sealed: state.sealed,
            blocks,
            residual_k: state.residual_k,
            residual_v: state.residual_v,
            reshare,
            checksum: 0,
        };
        blob.checksum = blob.computed_checksum();
        Ok(blob)
    }

    /// Swaps a previously swapped-out sequence back in: re-reserves the
    /// blob's full page budget (so later appends stay infallible), re-homes
    /// every packed block on the page covering its first token, and
    /// restores the residual window. Returns the sequence's new [`SeqId`]
    /// (ids are never reused; the pool hands out the next one).
    ///
    /// Like [`PagedKvStore::admit`], a failed swap-in leaves the store —
    /// including the id counter — completely unchanged, and the blob is
    /// untouched either way.
    ///
    /// # Errors
    ///
    /// - [`StoreError::CorruptBlob`] when the blob fails its integrity
    ///   check (verified **before** touching any pool state).
    /// - [`StoreError::HeadCount`] / [`CacheError::DimMismatch`] when the
    ///   blob's shape disagrees with the store's configuration.
    /// - [`StoreError::Oom`] when the pool cannot cover the blob's page
    ///   reservation.
    pub fn swap_in(&mut self, blob: &SwappedSeq) -> Result<SeqId, StoreError> {
        blob.verify()?;
        if blob.blocks.len() != self.heads {
            return Err(StoreError::HeadCount {
                got: blob.blocks.len(),
                expected: self.heads,
            });
        }
        if blob.dim != self.config.dim {
            return Err(StoreError::Cache(CacheError::DimMismatch {
                expected: self.config.dim,
                got: blob.dim,
            }));
        }
        let mut slots = self.reshare_slots(blob);
        // Prefix-cache adoption: any leading full page run of the blob
        // whose bytes are cached (and byte-verified) fills its still-empty
        // slots zero-copy, exactly like a fresh admission would.
        let mut swap_reused = 0usize;
        let mut swap_reused_bytes = 0usize;
        if self.radix.is_some() {
            let rp = self.run_pages();
            for (r, (run_pages, _)) in self.walk_prefix(&blob.blocks).into_iter().enumerate() {
                for (i, page) in run_pages.into_iter().enumerate() {
                    let slot = r * rp + i;
                    if slot < slots.len() && slots[slot].is_none() {
                        slots[slot] = Some(page);
                        swap_reused += 1;
                        swap_reused_bytes += self.frames[page.0 as usize]
                            .iter()
                            .flat_map(|head| head.iter().map(PackedBlock::byte_size))
                            .sum::<usize>();
                    }
                }
            }
        }
        let adopted: Vec<PageId> = slots.iter().flatten().copied().collect();
        let total_slots = blob
            .reserved_tokens
            .div_ceil(self.page_tokens())
            .max(slots.len());
        self.ensure_free(total_slots - adopted.len(), &adopted);
        let seq = self
            .pool
            .adopt(&slots, blob.reserved_tokens)
            .map_err(StoreError::Oom)?;
        let nr = self.residual_block();
        let pt = self.page_tokens();
        for (head, head_blocks) in blob.blocks.iter().enumerate() {
            for (b, block) in head_blocks.iter().enumerate() {
                // Blocks homed on a re-shared or cache-adopted page are
                // already resident in that page's frame — only private
                // slots re-home.
                if slots.get((b * nr) / pt).copied().flatten().is_some() {
                    continue;
                }
                let (page, _) = self.pool.translate(seq, b * nr);
                self.frames[page.0 as usize][head].push(block.clone());
            }
        }
        self.seqs.insert(
            seq,
            SeqKv {
                len: blob.len,
                residual_k: blob.residual_k.clone(),
                residual_v: blob.residual_v.clone(),
                sealed: blob.sealed,
            },
        );
        if self.radix.is_some() {
            self.register_prefix(seq);
            if swap_reused > 0 {
                self.prefix_stats.hits += 1;
                self.prefix_stats.pages_reused += swap_reused as u64;
                self.prefix_stats.bytes_reused += swap_reused_bytes as u64;
            } else {
                self.prefix_stats.misses += 1;
            }
        }
        Ok(seq)
    }

    /// Resolves which of `blob`'s recorded shared pages are still resident
    /// (alive with an unchanged free-generation): those table slots
    /// re-share instead of drawing fresh pages.
    fn reshare_slots(&self, blob: &SwappedSeq) -> Vec<Option<PageId>> {
        blob.reshare
            .iter()
            .map(|entry| {
                entry.and_then(|(page, gen)| {
                    // Seq-aliveness, not raw refcount: a page kept alive
                    // only by a cache pin re-shares through the radix
                    // lookup (byte-verified), never through the blob's
                    // stale sharing record — keeping swap-in admission
                    // preflight identical to a cache-off store.
                    (self.pool.seq_refcount(page) > 0 && self.pool.generation(page) == gen)
                        .then_some(page)
                })
            })
            .collect()
    }

    /// Pages a [`PagedKvStore::swap_in`] of `blob` would **newly**
    /// allocate given the store's current residency — recorded shared
    /// pages that are still alive re-share rather than re-reserve, so
    /// admission preflight should count this, not
    /// [`SwappedSeq::pages_needed`].
    pub fn swap_in_new_pages(&self, blob: &SwappedSeq) -> usize {
        let slots = self.reshare_slots(blob);
        let total = blob
            .reserved_tokens
            .div_ceil(self.page_tokens())
            .max(slots.len());
        total - slots.iter().flatten().count()
    }

    /// Logical token count of a sequence (packed + residual).
    pub fn seq_len(&self, seq: SeqId) -> Option<usize> {
        self.seqs.get(&seq).map(|s| s.len)
    }

    /// Tokens currently in a sequence's FP16 residual window.
    ///
    /// # Panics
    ///
    /// Panics on a non-resident sequence.
    pub fn residual_len(&self, seq: SeqId) -> usize {
        self.seqs[&seq].residual_k[0].len()
    }

    /// The residual FP16 window of one head (`(k, v)`).
    ///
    /// # Panics
    ///
    /// Panics on a non-resident sequence or bad head index.
    pub fn residual(&self, seq: SeqId, head: usize) -> (&TokenMatrix, &TokenMatrix) {
        let s = &self.seqs[&seq];
        (&s.residual_k[head], &s.residual_v[head])
    }

    /// Gathers one head's packed blocks **through the page table**, oldest
    /// first — the page-indirect iteration the fused kernel consumes. The
    /// returned refs alias the page arena; by the contiguous-equivalence
    /// invariant they equal the contiguous cache's block list bitwise.
    ///
    /// The gather stops at the sequence's own flushed-block count: a page
    /// shared with a forked relative may additionally hold blocks the
    /// original writer flushed **past** the shared boundary, and those
    /// always sort after every block of this sequence (block homing is
    /// monotone in the block index), so the count-truncated walk returns
    /// exactly this sequence's blocks.
    ///
    /// # Panics
    ///
    /// Panics on a non-resident sequence or bad head index.
    pub fn packed_blocks(&self, seq: SeqId, head: usize) -> Vec<&PackedBlock> {
        assert!(head < self.heads, "head {head} out of range");
        let own = self.seqs[&seq].len / self.residual_block();
        let Some(table) = self.pool.table(seq) else {
            panic!("sequence {seq:?} is not resident");
        };
        let mut out = Vec::with_capacity(own);
        'gather: for page in table {
            for block in &self.frames[page.0 as usize][head] {
                if out.len() == own {
                    break 'gather;
                }
                out.push(block);
            }
        }
        out
    }

    /// Longest run of leading packed blocks that **every** listed sequence
    /// reads from the same physical pages — the cascade-attention group
    /// boundary. Block `b` (of `Nr` tokens) homes on page slot
    /// `(b·Nr)/page_tokens`; the run extends while all sequences' page
    /// tables agree on that slot's [`PageId`], and is
    /// capped at the shortest sequence's own flushed-block count.
    ///
    /// Physical-identity comparison makes the boundary automatically
    /// correct around sharing edges: a CoW break replaces the writer's
    /// page, so the run stops at the last still-shared page; a fork at a
    /// non-page-aligned boundary leaves the straddling page shared only
    /// until someone flushes into it, and the shortest-length cap keeps a
    /// short sharer from claiming blocks it never flushed. Returns `0` for
    /// fewer than two sequences or if any is non-resident.
    pub fn shared_block_run(&self, seqs: &[SeqId]) -> usize {
        if seqs.len() < 2 {
            return 0;
        }
        let nr = self.residual_block();
        let pt = self.page_tokens();
        let mut limit = usize::MAX;
        let mut tables = Vec::with_capacity(seqs.len());
        for &seq in seqs {
            let Some(len) = self.seq_len(seq) else {
                return 0;
            };
            let Some(table) = self.pool.table(seq) else {
                return 0;
            };
            limit = limit.min(len / nr);
            tables.push(table);
        }
        let mut run = 0;
        for b in 0..limit {
            let slot = (b * nr) / pt;
            let first = tables[0].get(slot);
            if first.is_none() || tables[1..].iter().any(|t| t.get(slot) != first) {
                break;
            }
            run = b + 1;
        }
        run
    }

    /// Appends one decode-step token (one K/V row per head). Rows round
    /// through FP16 and accumulate in the residual window; when the window
    /// reaches `Nr` every head flushes one packed block into the page arena,
    /// homed on the page covering the block's first token.
    ///
    /// Returns `true` when this append flushed.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError`] on shape mismatch, a sealed or unknown
    /// sequence, or pool exhaustion (the sequence is left unchanged).
    pub fn append_step<R: AsRef<[f32]>>(
        &mut self,
        seq: SeqId,
        k_rows: &[R],
        v_rows: &[R],
        codec: &impl BlockCodec,
    ) -> Result<bool, StoreError> {
        let state = self.seqs.get(&seq).ok_or(StoreError::UnknownSeq(seq))?;
        if state.sealed {
            return Err(StoreError::Sealed(seq));
        }
        for got in [k_rows.len(), v_rows.len()] {
            if got != self.heads {
                return Err(StoreError::HeadCount {
                    got,
                    expected: self.heads,
                });
            }
        }
        for row in k_rows.iter().chain(v_rows) {
            if row.as_ref().len() != self.config.dim {
                return Err(StoreError::Cache(CacheError::DimMismatch {
                    expected: self.config.dim,
                    got: row.as_ref().len(),
                }));
            }
        }
        let new_len = state.len + 1;
        let nr = self.residual_block();
        // Preflight this append's whole page demand — a grow past the
        // reservation and/or a copy-on-write of a shared flush target —
        // before mutating anything, so an OOM leaves the sequence (and its
        // sharing relatives) unchanged.
        let reserved = self
            .pool
            .seq_len(seq)
            .unwrap_or_else(|| unreachable!("resident sequence"));
        let pt = self.pool.page_tokens();
        let table_len = self
            .pool
            .table(seq)
            .map(<[PageId]>::len)
            .unwrap_or_else(|| unreachable!("resident sequence"));
        let grow_pages = if new_len > reserved {
            new_len.div_ceil(pt).saturating_sub(table_len)
        } else {
            0
        };
        let will_flush = state.residual_k[0].tokens() + 1 == nr;
        // A flush target beyond the current table is about to be grown
        // fresh (private by construction) — only existing shared pages CoW.
        let cow_slot = will_flush.then(|| (new_len - nr) / pt).filter(|&slot| {
            slot < table_len
                && self
                    .pool
                    .table(seq)
                    .is_some_and(|t| self.pool.seq_refcount(t[slot]) > 1)
        });
        let need = grow_pages + usize::from(cow_slot.is_some());
        if need > self.free_pages() {
            return Err(StoreError::Oom(PagedOom {
                requested: need,
                free: self.free_pages(),
            }));
        }
        self.ensure_free(need, &[]);
        if let Some(slot) = cow_slot {
            // First write past a shared boundary: copy only the affected
            // page before flushing into it.
            self.cow_slot(seq, slot);
        }
        // Grow only past the reservation; within it, pages already exist.
        if new_len > reserved {
            self.pool
                .grow(seq, new_len)
                .unwrap_or_else(|_| unreachable!("preflighted"));
        }
        if will_flush {
            // The flush target may have been inherited from a departed
            // sharer whose past-boundary blocks are still in the frame
            // (frames are only cleared at refcount zero, and the CoW guard
            // above never fires once we are the sole owner). Reclaim the
            // frame: truncate it to our own block prefix before appending,
            // and bump the page's generation — a departed sharer's swap
            // blob may reference the removed blocks, and the bump makes it
            // restore privately instead of re-sharing a mutated frame.
            let slot = (new_len - nr) / pt;
            let (page, _) = self.pool.translate(seq, new_len - nr);
            let own_here = self.own_blocks_on_slot(seq, slot);
            if self.frames[page.0 as usize][0].len() > own_here {
                self.pool.bump_generation(page);
                for head_blocks in &mut self.frames[page.0 as usize] {
                    head_blocks.truncate(own_here);
                }
            }
        }

        let dim = self.config.dim;
        let scheme = self.config.scheme;
        let Some(state) = self.seqs.get_mut(&seq) else {
            unreachable!("checked above");
        };
        let mut flushed = false;
        for head in 0..self.heads {
            push_rounded(&mut state.residual_k[head], k_rows[head].as_ref());
            push_rounded(&mut state.residual_v[head], v_rows[head].as_ref());
            if state.residual_k[head].tokens() == nr {
                let k_block = std::mem::replace(&mut state.residual_k[head], TokenMatrix::new(dim));
                let v_block = std::mem::replace(&mut state.residual_v[head], TokenMatrix::new(dim));
                let packed = codec.encode(&k_block, &v_block, scheme);
                let start = new_len - nr;
                let (page, _) = self.pool.translate(seq, start);
                self.frames[page.0 as usize][head].push(packed);
                flushed = true;
            }
        }
        state.len = new_len;
        Ok(flushed)
    }

    /// Bulk-loads a prompt for an **empty** sequence: per head, the largest
    /// `Nr`-aligned prefix quantizes block-by-block into the page arena and
    /// the tail becomes the residual window — the paged twin of
    /// [`QuantizedKvCache::prefill`].
    ///
    /// # Errors
    ///
    /// Returns [`StoreError`] on shape mismatch, unknown/sealed/non-empty
    /// sequence, or pool exhaustion (nothing is stored on error).
    ///
    /// # Panics
    ///
    /// Panics if `k`/`v` head counts or per-head token counts disagree.
    pub fn prefill<K, V>(
        &mut self,
        seq: SeqId,
        k: &[K],
        v: &[V],
        codec: &impl BlockCodec,
    ) -> Result<(), StoreError>
    where
        K: TokenRows,
        V: TokenRows,
    {
        let state = self.seqs.get(&seq).ok_or(StoreError::UnknownSeq(seq))?;
        if state.sealed {
            return Err(StoreError::Sealed(seq));
        }
        assert_eq!(state.len, 0, "prefill requires an empty sequence");
        for got in [k.len(), v.len()] {
            if got != self.heads {
                return Err(StoreError::HeadCount {
                    got,
                    expected: self.heads,
                });
            }
        }
        let len = k[0].token_count();
        for (hk, hv) in k.iter().zip(v) {
            assert_eq!(hk.token_count(), len, "per-head prompt length mismatch");
            assert_eq!(hv.token_count(), len, "per-head prompt length mismatch");
            for t in 0..len {
                for row in [hk.token_row(t), hv.token_row(t)] {
                    if row.len() != self.config.dim {
                        return Err(StoreError::Cache(CacheError::DimMismatch {
                            expected: self.config.dim,
                            got: row.len(),
                        }));
                    }
                }
            }
        }
        let reserved = self
            .pool
            .seq_len(seq)
            .unwrap_or_else(|| unreachable!("resident sequence"));
        if len > reserved {
            let table_len = self
                .pool
                .table(seq)
                .map(<[PageId]>::len)
                .unwrap_or_else(|| unreachable!("resident sequence"));
            let extra = len.div_ceil(self.page_tokens()).saturating_sub(table_len);
            self.ensure_free(extra, &[]);
            self.pool.grow(seq, len)?;
        }

        let nr = self.residual_block();
        let (packed_len, _res) = partition_prefill(len, nr);
        let scheme = self.config.scheme;
        for head in 0..self.heads {
            for b0 in (0..packed_len).step_by(nr) {
                let kb = rounded_block(&k[head], b0, b0 + nr);
                let vb = rounded_block(&v[head], b0, b0 + nr);
                let packed = codec.encode(&kb, &vb, scheme);
                let (page, _) = self.pool.translate(seq, b0);
                self.frames[page.0 as usize][head].push(packed);
            }
        }
        let Some(state) = self.seqs.get_mut(&seq) else {
            unreachable!("checked above");
        };
        for head in 0..self.heads {
            for t in packed_len..len {
                push_rounded(&mut state.residual_k[head], k[head].token_row(t));
                push_rounded(&mut state.residual_v[head], v[head].token_row(t));
            }
        }
        state.len = len;
        self.register_prefix(seq);
        Ok(())
    }

    /// Checks the contiguous-equivalence invariant against a contiguous
    /// cache that replayed the same history: for every head `h`, the blocks
    /// gathered through the page table must equal
    /// `cache.packed_blocks(cache_head_base + h)` bitwise, and the residual
    /// windows must match exactly.
    pub fn matches_cache(
        &self,
        seq: SeqId,
        cache: &QuantizedKvCache,
        cache_head_base: usize,
    ) -> bool {
        let Some(state) = self.seqs.get(&seq) else {
            return false;
        };
        for head in 0..self.heads {
            let ch = cache_head_base + head;
            if state.len != cache.len(ch) {
                return false;
            }
            let paged = self.packed_blocks(seq, head);
            let contiguous = cache.packed_blocks(ch);
            if paged.len() != contiguous.len()
                || paged.iter().zip(contiguous).any(|(a, b)| **a != *b)
            {
                return false;
            }
            let (rk, rv) = cache.residual(ch);
            if state.residual_k[head] != *rk || state.residual_v[head] != *rv {
                return false;
            }
        }
        true
    }

    /// Blocks of `seq` homed on table slot `slot`: indices in
    /// `[ceil(slot·pt/Nr), ceil((slot+1)·pt/Nr))`, capped at the
    /// sequence's own flushed count — and always a **prefix** of the
    /// slot's frame, since frames hold blocks in index order and foreign
    /// blocks on a shared frame carry indices past every sharer's count.
    fn own_blocks_on_slot(&self, seq: SeqId, slot: usize) -> usize {
        let pt = self.pool.page_tokens();
        let nr = self.residual_block();
        let own_total = self.seqs[&seq].len / nr;
        let before = (slot * pt).div_ceil(nr).min(own_total);
        ((slot + 1) * pt).div_ceil(nr).min(own_total) - before
    }

    /// Gives `seq` a private copy of table slot `slot`: draws a fresh page,
    /// copies the slot's **own** block prefix (a shared frame may
    /// additionally hold blocks its original writer flushed past the
    /// shared boundary — those are not this sequence's), and drops one
    /// reference on the shared page. The shared page's frame is untouched:
    /// every other mapper still reads its bytes unchanged.
    fn cow_slot(&mut self, seq: SeqId, slot: usize) {
        self.cow_breaks += 1;
        let own_here = self.own_blocks_on_slot(seq, slot);
        let (old, new) = self
            .pool
            .cow(seq, slot)
            .unwrap_or_else(|_| unreachable!("preflighted free page"));
        for head in 0..self.heads {
            let prefix = self.frames[old.0 as usize][head][..own_here].to_vec();
            self.frames[new.0 as usize][head] = prefix;
        }
    }

    /// Page-sharing snapshot: physical vs logical occupancy and the packed
    /// bytes deduplication currently saves.
    ///
    /// `bytes_saved` counts only bytes a sharer actually *reads*: per
    /// shared page, the sum over sharers of their own block-prefix bytes,
    /// minus the largest such prefix (stored once). Blocks the original
    /// writer flushed past every sharer's boundary are its private data,
    /// not a saving.
    pub fn sharing_stats(&self) -> KvSharingStats {
        let physical_pages = self.total_pages() - self.free_pages();
        let shared_pages = self.pool.shared_pages();
        if shared_pages == 0 {
            // Nothing shared (the common unforked case): skip the
            // per-sequence byte walk — this runs every serve step.
            return KvSharingStats {
                physical_pages,
                logical_pages: self.pool.logical_pages(),
                shared_pages: 0,
                owned_pages: physical_pages,
                bytes_saved: 0,
            };
        }
        // Per shared page: (sum, max) of the sharers' own-prefix bytes.
        let mut per_page: BTreeMap<PageId, (usize, usize)> = BTreeMap::new();
        for &seq in self.seqs.keys() {
            let Some(table) = self.pool.table(seq) else {
                unreachable!("resident sequence");
            };
            for (slot, &page) in table.iter().enumerate() {
                if self.pool.seq_refcount(page) <= 1 {
                    continue;
                }
                let own_here = self.own_blocks_on_slot(seq, slot);
                let own_bytes: usize = self.frames[page.0 as usize]
                    .iter()
                    .flat_map(|head| head.iter().take(own_here).map(PackedBlock::byte_size))
                    .sum();
                let entry = per_page.entry(page).or_insert((0, 0));
                entry.0 += own_bytes;
                entry.1 = entry.1.max(own_bytes);
            }
        }
        let bytes_saved = per_page.values().map(|&(sum, max)| sum - max).sum();
        KvSharingStats {
            physical_pages,
            logical_pages: self.pool.logical_pages(),
            shared_pages,
            owned_pages: physical_pages - shared_pages,
            bytes_saved,
        }
    }

    /// Device bytes currently held by a sequence (packed payloads + FP16
    /// residual windows).
    ///
    /// # Panics
    ///
    /// Panics on a non-resident sequence.
    pub fn seq_bytes(&self, seq: SeqId) -> usize {
        let state = &self.seqs[&seq];
        let packed: usize = (0..self.heads)
            .map(|h| {
                self.packed_blocks(seq, h)
                    .iter()
                    .map(|b| b.byte_size())
                    .sum::<usize>()
            })
            .sum();
        let residual: usize = state
            .residual_k
            .iter()
            .map(|m| m.len() * self.config.dim * 2 * 2)
            .sum();
        packed + residual
    }

    // ── Content-addressed radix prefix cache ──────────────────────────

    /// Enables or disables the content-addressed radix prefix cache.
    ///
    /// Enabled, every admission that prefills (or swaps in) registers its
    /// sealed full page runs in a radix index keyed by the FNV-1a chain
    /// hash of their packed bytes (plus scheme, page geometry, and run
    /// position), pinning those pages past their sequence's lifetime; any
    /// later admission with a byte-identical packed prefix adopts the
    /// cached pages zero-copy ([`PagedKvStore::admit_prefill_cached`],
    /// [`PagedKvStore::swap_in`]). Unreferenced holdings are reclaimed
    /// LRU-subtree-first whenever an allocation needs room, and they count
    /// as free in [`PagedKvStore::free_pages`] — cache residency is
    /// invisible to admission control.
    ///
    /// Disabling drops the whole index and returns every unreferenced
    /// holding to the pool. The cache starts **disabled**.
    pub fn set_prefix_cache(&mut self, enabled: bool) {
        if enabled {
            if self.radix.is_none() {
                self.radix = Some(RadixIndex::default());
            }
        } else if let Some(radix) = self.radix.take() {
            for p in radix.all_pages() {
                if self.pool.unpin_page(p) {
                    for head_blocks in &mut self.frames[p.0 as usize] {
                        head_blocks.clear();
                    }
                }
            }
        }
    }

    /// Whether the radix prefix cache is enabled.
    pub fn prefix_cache_enabled(&self) -> bool {
        self.radix.is_some()
    }

    /// Lifetime prefix-cache counters (all zero while disabled).
    pub fn prefix_cache_stats(&self) -> PrefixCacheStats {
        self.prefix_stats
    }

    /// Pages the prefix cache currently holds pinned (shared with, or
    /// outliving, their registering sequences).
    pub fn prefix_cached_pages(&self) -> usize {
        self.radix.as_ref().map_or(0, |r| r.all_pages().len())
    }

    /// Runs (radix nodes) currently cached.
    pub fn prefix_cached_runs(&self) -> usize {
        self.radix.as_ref().map_or(0, RadixIndex::node_count)
    }

    /// Pages per cache run — the smallest page count whose tokens are a
    /// whole number of `Nr` blocks, so adopting a run never splits a
    /// packed block across an adopted/private boundary (and the adopter's
    /// own first flush always lands on a fresh page past the run).
    fn run_pages(&self) -> usize {
        let nr = self.residual_block();
        nr / gcd(nr, self.page_tokens())
    }

    /// Packed blocks per cache run.
    fn run_blocks(&self) -> usize {
        self.run_pages() * self.page_tokens() / self.residual_block()
    }

    /// Hash seed binding the chain to this store's shape: quant scheme,
    /// head dim, head count, `Nr`, and page size all fold in, so stores
    /// with different geometry can never exchange entries.
    fn prefix_seed(&self) -> u64 {
        let mut h = fnv_fold(FNV_OFFSET, format!("{:?}", self.config.scheme).as_bytes());
        for v in [
            self.config.dim,
            self.heads,
            self.residual_block(),
            self.page_tokens(),
        ] {
            h = fnv_fold(h, &(v as u64).to_le_bytes());
        }
        h
    }

    /// Chain keys for the leading `runs` page runs of
    /// `blocks[head][block]`: key `r` folds the run index and every packed
    /// block of runs `0..=r` (head-major within a run) over the seed, so a
    /// key addresses the *entire* prefix it terminates.
    fn chain_keys<B: std::borrow::Borrow<PackedBlock>>(
        &self,
        blocks: &[Vec<B>],
        runs: usize,
    ) -> Vec<u64> {
        let bpr = self.run_blocks();
        let mut h = self.prefix_seed();
        let mut keys = Vec::with_capacity(runs);
        for r in 0..runs {
            h = fnv_fold(h, &(r as u64).to_le_bytes());
            for head in blocks {
                for block in &head[r * bpr..(r + 1) * bpr] {
                    h = fold_packed_block(h, block.borrow());
                }
            }
            let key = h;
            #[cfg(test)]
            let key = if self.collide_hashes {
                0x0BAD_C0DE
            } else {
                key
            };
            keys.push(key);
        }
        keys
    }

    /// Walks the radix index over the leading full page runs of
    /// `blocks[head][block]`, touching every node whose pages still
    /// byte-verify and evicting stale nodes (recycled or rewritten pages)
    /// discovered on the way. Returns the verified runs' `(pages, packed
    /// bytes)` in run order; the walk stops at the first miss.
    fn walk_prefix<B: std::borrow::Borrow<PackedBlock>>(
        &mut self,
        blocks: &[Vec<B>],
    ) -> Vec<(Vec<PageId>, usize)> {
        let bpr = self.run_blocks();
        let runs = blocks.first().map_or(0, Vec::len) / bpr;
        if runs == 0 || self.radix.is_none() {
            return Vec::new();
        }
        let keys = self.chain_keys(blocks, runs);
        let mut out = Vec::new();
        let mut parent = None;
        let Some(radix) = self.radix.as_mut() else {
            unreachable!("checked above");
        };
        for (r, &key) in keys.iter().enumerate() {
            let Some(id) = radix.child(parent, key) else {
                break;
            };
            let node = radix.node(id);
            let node_pages = node.pages.clone();
            let node_gens = node.gens.clone();
            let node_bytes = node.bytes;
            let stale = node_pages
                .iter()
                .zip(&node_gens)
                .any(|(&p, &g)| self.pool.refcount(p) == 0 || self.pool.generation(p) != g);
            // Byte-verify even on a fresh generation: a chain-hash
            // collision must never alias pages.
            let verified = !stale
                && blocks.iter().enumerate().all(|(head, want)| {
                    let got: Vec<&PackedBlock> = node_pages
                        .iter()
                        .flat_map(|&p| self.frames[p.0 as usize][head].iter())
                        .collect();
                    got.len() == bpr
                        && got
                            .iter()
                            .zip(&want[r * bpr..(r + 1) * bpr])
                            .all(|(a, b)| **a == *b.borrow())
                });
            if !verified {
                if stale {
                    let dropped = radix.remove_subtree(id);
                    self.prefix_stats.evicted_subtrees += 1;
                    self.prefix_stats.evicted_pages += dropped.len() as u64;
                    for p in dropped {
                        if self.pool.unpin_page(p) {
                            for head_blocks in &mut self.frames[p.0 as usize] {
                                head_blocks.clear();
                            }
                        }
                    }
                }
                break;
            }
            radix.touch(id);
            out.push((node_pages, node_bytes));
            parent = Some(id);
        }
        out
    }

    /// Evicts cold unreferenced cache subtrees until the pool has at
    /// least `fresh` pages on its free list (or nothing evictable
    /// remains). `protect` lists pages about to be adopted zero-copy —
    /// they must survive the reclaim that makes room for the rest of the
    /// same admission.
    fn ensure_free(&mut self, fresh: usize, protect: &[PageId]) {
        while self.pool.free_pages() < fresh {
            let Some(radix) = self.radix.as_mut() else {
                return;
            };
            let pool = &self.pool;
            let evictable = |p: PageId| pool.seq_refcount(p) == 0 && !protect.contains(&p);
            let Some(dropped) = radix.evict_lru_subtree(&evictable) else {
                return;
            };
            self.prefix_stats.evicted_subtrees += 1;
            self.prefix_stats.evicted_pages += dropped.len() as u64;
            for p in dropped {
                if self.pool.unpin_page(p) {
                    for head_blocks in &mut self.frames[p.0 as usize] {
                        head_blocks.clear();
                    }
                }
            }
        }
    }

    /// Registers `seq`'s leading full page runs in the radix index,
    /// pinning their pages so they outlive the sequence and later
    /// byte-identical prompts adopt them zero-copy. Runs already present
    /// are LRU-touched; stale entries (recycled pages) are replaced.
    fn register_prefix(&mut self, seq: SeqId) {
        if self.radix.is_none() {
            return;
        }
        let bpr = self.run_blocks();
        let rp = self.run_pages();
        let runs = self.seqs[&seq].len / self.residual_block() / bpr;
        if runs == 0 {
            return;
        }
        let blocks: Vec<Vec<&PackedBlock>> = (0..self.heads)
            .map(|h| self.packed_blocks(seq, h))
            .collect();
        let keys = self.chain_keys(&blocks, runs);
        let run_bytes: Vec<usize> = (0..runs)
            .map(|r| {
                blocks
                    .iter()
                    .flat_map(|head| head[r * bpr..(r + 1) * bpr].iter().map(|b| b.byte_size()))
                    .sum()
            })
            .collect();
        drop(blocks);
        let table: Vec<PageId> = self
            .pool
            .table(seq)
            .unwrap_or_else(|| unreachable!("resident sequence"))
            .to_vec();
        let mut parent = None;
        for (r, (&key, &bytes)) in keys.iter().zip(&run_bytes).enumerate() {
            let Some(radix) = self.radix.as_mut() else {
                unreachable!("checked above");
            };
            if let Some(id) = radix.child(parent, key) {
                let node = radix.node(id);
                let stale = node
                    .pages
                    .iter()
                    .zip(&node.gens)
                    .any(|(&p, &g)| self.pool.refcount(p) == 0 || self.pool.generation(p) != g);
                if !stale {
                    // Already cached at this position (this very content,
                    // or — vanishingly rarely — a hash collision, which
                    // adoption-time byte-verification keeps harmless).
                    radix.touch(id);
                    parent = Some(id);
                    continue;
                }
                let dropped = radix.remove_subtree(id);
                self.prefix_stats.evicted_subtrees += 1;
                self.prefix_stats.evicted_pages += dropped.len() as u64;
                for p in dropped {
                    if self.pool.unpin_page(p) {
                        for head_blocks in &mut self.frames[p.0 as usize] {
                            head_blocks.clear();
                        }
                    }
                }
            }
            let pages = table[r * rp..(r + 1) * rp].to_vec();
            let gens: Vec<u64> = pages.iter().map(|&p| self.pool.generation(p)).collect();
            for &p in &pages {
                self.pool.pin_page(p);
            }
            let Some(radix) = self.radix.as_mut() else {
                unreachable!("checked above");
            };
            parent = Some(radix.insert(parent, key, pages, gens, bytes));
        }
    }

    /// Admits **and** prefills a sequence in one step, adopting cached
    /// prefix pages zero-copy — the content-addressed twin of
    /// [`PagedKvStore::admit`] + [`PagedKvStore::prefill`]. The prompt is
    /// quantized once up front; every leading full page run whose packed
    /// bytes match a cached run (generation-checked **and** byte-verified)
    /// aliases the cached pages instead of writing fresh ones, and the
    /// remainder installs exactly as a plain prefill would. The admitted
    /// sequence is bitwise indistinguishable from one admitted with the
    /// cache off — same gathered blocks, same residual window — and the
    /// admission decision charges the same [`PagedKvStore::free_pages`]
    /// budget, so cache hits never change what gets admitted, only how
    /// many fresh pages the admission costs.
    ///
    /// With the cache disabled this is exactly `admit` followed by
    /// `prefill`. Like [`PagedKvStore::admit`], a failed admission
    /// changes nothing and burns no [`SeqId`].
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Oom`] when the pool cannot cover
    /// `max(reserve_tokens, prompt_len)`, and shape errors as
    /// [`PagedKvStore::prefill`] would.
    ///
    /// # Panics
    ///
    /// Panics if `k`/`v` per-head token counts disagree.
    pub fn admit_prefill_cached<K, V>(
        &mut self,
        k: &[K],
        v: &[V],
        reserve_tokens: usize,
        codec: &impl BlockCodec,
    ) -> Result<(SeqId, PrefixAdmit), StoreError>
    where
        K: TokenRows,
        V: TokenRows,
    {
        for got in [k.len(), v.len()] {
            if got != self.heads {
                return Err(StoreError::HeadCount {
                    got,
                    expected: self.heads,
                });
            }
        }
        let len = k[0].token_count();
        for (hk, hv) in k.iter().zip(v) {
            assert_eq!(hk.token_count(), len, "per-head prompt length mismatch");
            assert_eq!(hv.token_count(), len, "per-head prompt length mismatch");
            for t in 0..len {
                for row in [hk.token_row(t), hv.token_row(t)] {
                    if row.len() != self.config.dim {
                        return Err(StoreError::Cache(CacheError::DimMismatch {
                            expected: self.config.dim,
                            got: row.len(),
                        }));
                    }
                }
            }
        }
        let reserve = reserve_tokens.max(len);
        if self.radix.is_none() {
            let seq = self.admit(reserve)?;
            if let Err(e) = self.prefill(seq, k, v, codec) {
                self.evict(seq);
                return Err(e);
            }
            return Ok((seq, PrefixAdmit::default()));
        }
        let need = reserve.div_ceil(self.page_tokens());
        if need > self.free_pages() {
            return Err(StoreError::Oom(PagedOom {
                requested: need,
                free: self.free_pages(),
            }));
        }
        // Quantize the whole aligned prefix once — both the lookup key
        // material and the exact blocks a plain prefill would write.
        let nr = self.residual_block();
        let (packed_len, _res) = partition_prefill(len, nr);
        let scheme = self.config.scheme;
        let packed: Vec<Vec<PackedBlock>> = (0..self.heads)
            .map(|head| {
                (0..packed_len)
                    .step_by(nr)
                    .map(|b0| {
                        let kb = rounded_block(&k[head], b0, b0 + nr);
                        let vb = rounded_block(&v[head], b0, b0 + nr);
                        codec.encode(&kb, &vb, scheme)
                    })
                    .collect()
            })
            .collect();
        let mut adopted_pages: Vec<PageId> = Vec::new();
        let mut adopted_bytes = 0usize;
        for (pages, bytes) in self.walk_prefix(&packed) {
            adopted_pages.extend(pages);
            adopted_bytes += bytes;
        }
        let adopted_blocks = adopted_pages.len() / self.run_pages() * self.run_blocks();
        let total_slots = need.max(adopted_pages.len());
        self.ensure_free(total_slots - adopted_pages.len(), &adopted_pages);
        let slots: Vec<Option<PageId>> = adopted_pages.iter().map(|&p| Some(p)).collect();
        let seq = self.pool.adopt(&slots, reserve).map_err(StoreError::Oom)?;
        for (head, head_blocks) in packed.into_iter().enumerate() {
            for (b, block) in head_blocks.into_iter().enumerate().skip(adopted_blocks) {
                let (page, _) = self.pool.translate(seq, b * nr);
                self.frames[page.0 as usize][head].push(block);
            }
        }
        let mut residual_k = vec![TokenMatrix::new(self.config.dim); self.heads];
        let mut residual_v = vec![TokenMatrix::new(self.config.dim); self.heads];
        for head in 0..self.heads {
            for t in packed_len..len {
                push_rounded(&mut residual_k[head], k[head].token_row(t));
                push_rounded(&mut residual_v[head], v[head].token_row(t));
            }
        }
        self.seqs.insert(
            seq,
            SeqKv {
                len,
                residual_k,
                residual_v,
                sealed: false,
            },
        );
        self.register_prefix(seq);
        let reused = adopted_pages.len();
        if reused > 0 {
            self.prefix_stats.hits += 1;
            self.prefix_stats.pages_reused += reused as u64;
            self.prefix_stats.bytes_reused += adopted_bytes as u64;
        } else {
            self.prefix_stats.misses += 1;
        }
        Ok((
            seq,
            PrefixAdmit {
                pages_reused: reused,
                bytes_reused: adopted_bytes,
            },
        ))
    }

    /// Test-only: collapse every chain key to one constant, so different
    /// packed bytes collide and only byte-verification separates them.
    #[cfg(test)]
    pub(crate) fn force_hash_collisions(&mut self) {
        self.collide_hashes = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::ReferenceCodec;
    use crate::layout::PackLayout;
    use crate::scheme::QuantScheme;

    fn cfg(dim: usize) -> CacheConfig {
        CacheConfig::new(dim, QuantScheme::kc4(), PackLayout::sm80_default())
    }

    fn row(dim: usize, t: usize, salt: usize) -> Vec<f32> {
        (0..dim)
            .map(|c| ((t * dim + c + salt * 977) as f32 * 0.37).sin())
            .collect()
    }

    /// Appends tokens `t0 .. t0 + n` (values salted by `salt`) to both the
    /// paged sequence and its contiguous twin.
    fn append_both(
        store: &mut PagedKvStore,
        seq: SeqId,
        cache: &mut QuantizedKvCache,
        n: usize,
        salt: usize,
        t0: usize,
    ) {
        let dim = store.config().dim;
        let heads = store.heads();
        for t in t0..t0 + n {
            let k: Vec<Vec<f32>> = (0..heads).map(|h| row(dim, t, salt + h)).collect();
            let v: Vec<Vec<f32>> = (0..heads).map(|h| row(dim, t + 500, salt + h)).collect();
            store.append_step(seq, &k, &v, &ReferenceCodec).unwrap();
            for h in 0..heads {
                cache
                    .append_token(h, &k[h], &v[h], &ReferenceCodec)
                    .unwrap();
            }
        }
    }

    /// Appends `n` tokens to both containers and returns the cache twin.
    fn mirrored_appends(
        store: &mut PagedKvStore,
        seq: SeqId,
        n: usize,
        salt: usize,
    ) -> QuantizedKvCache {
        let mut cache = QuantizedKvCache::new(*store.config(), store.heads());
        append_both(store, seq, &mut cache, n, salt, 0);
        cache
    }

    #[test]
    fn append_path_matches_contiguous_cache() {
        for page_tokens in [1, 7, 64, 128, 300] {
            let mut store = PagedKvStore::new(cfg(16), 2, 2048, page_tokens);
            let seq = store.admit(0).unwrap();
            let cache = mirrored_appends(&mut store, seq, 128 * 2 + 37, 0);
            assert!(
                store.matches_cache(seq, &cache, 0),
                "page_tokens={page_tokens}"
            );
            assert_eq!(store.residual_len(seq), 37);
        }
    }

    #[test]
    fn prefill_matches_contiguous_cache() {
        let dim = 16;
        let mut store = PagedKvStore::new(cfg(dim), 2, 64, 48);
        let seq = store.admit(0).unwrap();
        let len = 128 + 50;
        let k: Vec<TokenMatrix> = (0..2)
            .map(|h| TokenMatrix::from_fn(len, dim, |t, c| ((h * 7 + t * dim + c) as f32).sin()))
            .collect();
        let v: Vec<TokenMatrix> = (0..2)
            .map(|h| TokenMatrix::from_fn(len, dim, |t, c| ((h * 13 + t * dim + c) as f32).cos()))
            .collect();
        store.prefill(seq, &k, &v, &ReferenceCodec).unwrap();

        let mut cache = QuantizedKvCache::new(cfg(dim), 2);
        for h in 0..2 {
            cache.prefill(h, &k[h], &v[h], &ReferenceCodec).unwrap();
        }
        assert!(store.matches_cache(seq, &cache, 0));
        assert_eq!(store.seq_len(seq), Some(len));
    }

    #[test]
    fn exact_block_multiple_prefill_matches_contiguous_cache() {
        // A prompt of exactly k·Nr tokens leaves the residual window
        // empty on both sides; the empty windows must still compare equal
        // (regression: the contiguous cache used to leave a dim-0 default
        // matrix there, failing matches_cache — and swap round trips —
        // despite holding identical bytes).
        for len in [128usize, 256] {
            let dim = 16;
            let mut store = PagedKvStore::new(cfg(dim), 2, 64, 48);
            let seq = store.admit(0).unwrap();
            let k: Vec<TokenMatrix> = (0..2)
                .map(|h| TokenMatrix::from_fn(len, dim, |t, c| ((h + t * dim + c) as f32).sin()))
                .collect();
            store.prefill(seq, &k, &k, &ReferenceCodec).unwrap();
            let mut cache = QuantizedKvCache::new(cfg(dim), 2);
            for (h, kh) in k.iter().enumerate() {
                cache.prefill(h, kh, kh, &ReferenceCodec).unwrap();
            }
            assert_eq!(store.residual_len(seq), 0);
            assert!(store.matches_cache(seq, &cache, 0), "len={len}");
            // And the swap round trip holds on the empty-residual state.
            let blob = store.swap_out(seq).unwrap();
            let back = store.swap_in(&blob).unwrap();
            assert!(store.matches_cache(back, &cache, 0), "len={len} swapped");
        }
    }

    #[test]
    fn eviction_frees_pages_and_reuse_does_not_corrupt() {
        // Three sequences; evict the middle one, admit a fourth that reuses
        // its pages; the survivors must still equal their contiguous twins.
        let mut store = PagedKvStore::new(cfg(16), 1, 40, 32);
        let a = store.admit(0).unwrap();
        let b = store.admit(0).unwrap();
        let c = store.admit(0).unwrap();
        let cache_a = mirrored_appends(&mut store, a, 200, 1);
        let _cache_b = mirrored_appends(&mut store, b, 300, 2);
        let cache_c = mirrored_appends(&mut store, c, 150, 3);
        let free_before = store.free_pages();
        store.evict(b);
        assert!(store.free_pages() > free_before);
        let d = store.admit(0).unwrap();
        let cache_d = mirrored_appends(&mut store, d, 280, 4);
        assert!(store.matches_cache(a, &cache_a, 0));
        assert!(store.matches_cache(c, &cache_c, 0));
        assert!(store.matches_cache(d, &cache_d, 0));
    }

    #[test]
    fn reservation_makes_appends_infallible_and_oom_is_clean() {
        let mut store = PagedKvStore::new(cfg(16), 1, 4, 32);
        let seq = store.admit(128).unwrap(); // exactly the pool
        assert_eq!(store.free_pages(), 0);
        let err = store.admit(1).unwrap_err();
        assert_eq!(err.requested, 1);
        assert_eq!(store.resident(), 1);
        for t in 0..128 {
            let k = row(16, t, 0);
            store
                .append_step(
                    seq,
                    std::slice::from_ref(&k),
                    std::slice::from_ref(&k),
                    &ReferenceCodec,
                )
                .unwrap();
        }
        // Past the reservation the pool is exhausted.
        let k = row(16, 999, 0);
        let err = store
            .append_step(
                seq,
                std::slice::from_ref(&k),
                std::slice::from_ref(&k),
                &ReferenceCodec,
            )
            .unwrap_err();
        assert!(matches!(err, StoreError::Oom(_)));
        assert_eq!(store.seq_len(seq), Some(128));
    }

    #[test]
    fn sealed_sequences_reject_appends() {
        let mut store = PagedKvStore::new(cfg(16), 1, 8, 32);
        let seq = store.admit(0).unwrap();
        store.seal(seq).unwrap();
        let k = row(16, 0, 0);
        assert!(matches!(
            store.append_step(
                seq,
                std::slice::from_ref(&k),
                std::slice::from_ref(&k),
                &ReferenceCodec
            ),
            Err(StoreError::Sealed(_))
        ));
        store.evict(seq);
        assert!(store.seq_len(seq).is_none());
        assert!(store.seal(seq).is_err());
    }

    #[test]
    fn shape_errors_are_reported() {
        let mut store = PagedKvStore::new(cfg(16), 2, 8, 32);
        let seq = store.admit(0).unwrap();
        let good = vec![vec![0.0f32; 16]; 2];
        let bad_dim = vec![vec![0.0f32; 8]; 2];
        assert!(matches!(
            store.append_step(seq, &bad_dim, &good, &ReferenceCodec),
            Err(StoreError::Cache(CacheError::DimMismatch { .. }))
        ));
        let bad_heads = vec![vec![0.0f32; 16]; 1];
        assert!(matches!(
            store.append_step(seq, &bad_heads, &good, &ReferenceCodec),
            Err(StoreError::HeadCount {
                got: 1,
                expected: 2
            })
        ));
    }

    #[test]
    fn failed_admit_does_not_burn_a_seq_id() {
        // admit-fail → admit-success must hand out the same SeqId stream
        // as a history without the failure: ids are part of the
        // deterministic-replay contract (and the sharded store's
        // cross-device lockstep).
        let mut store = PagedKvStore::new(cfg(16), 1, 4, 32);
        let a = store.admit(64).unwrap(); // 2 pages
        let err = store.admit(128).unwrap_err(); // needs 4, only 2 free
        assert_eq!(
            err,
            PagedOom {
                requested: 4,
                free: 2
            }
        );
        let b = store.admit(64).unwrap();
        assert_eq!(b.0, a.0 + 1, "failed admit consumed a SeqId");
        // A parallel store that never saw the failure agrees.
        let mut twin = PagedKvStore::new(cfg(16), 1, 4, 32);
        assert_eq!(twin.admit(64).unwrap(), a);
        assert_eq!(twin.admit(64).unwrap(), b);
    }

    #[test]
    fn evict_returns_all_pages_at_any_residual_state() {
        // Pages must return to the pre-admit count whether the sequence is
        // evicted before sealing, after sealing, or mid-append with an
        // unsealed residual window (`Nr` = 128 here, so 200 tokens leave 72
        // residual tokens unflushed).
        let scenarios: [fn(&mut PagedKvStore, SeqId); 3] = [
            |_, _| {},                 // evict-before-seal
            |s, q| s.seal(q).unwrap(), // evict-after-seal
            |s, q| {
                // evict-mid-append: window partly filled post-flush
                let k = vec![row(16, 1000, 9), row(16, 1001, 9)];
                s.append_step(q, &k, &k, &ReferenceCodec).unwrap();
            },
        ];
        for (i, prep) in scenarios.iter().enumerate() {
            let mut store = PagedKvStore::new(cfg(16), 2, 64, 48);
            let free_before = store.free_pages();
            let seq = store.admit(0).unwrap();
            mirrored_appends(&mut store, seq, 200, i);
            assert!(store.residual_len(seq) > 0, "window unsealed mid-run");
            prep(&mut store, seq);
            store.evict(seq);
            assert_eq!(store.free_pages(), free_before, "scenario {i} leaked pages");
            assert_eq!(store.resident(), 0);
        }
    }

    #[test]
    fn swap_round_trip_is_bitwise_and_frees_pages_between() {
        for page_tokens in [1, 7, 48, 64, 300] {
            let mut store = PagedKvStore::new(cfg(16), 2, 2048, page_tokens);
            let free_before = store.free_pages();
            let seq = store.admit(300).unwrap();
            let cache = mirrored_appends(&mut store, seq, 128 * 2 + 37, 0);
            let held = free_before - store.free_pages();
            let bytes = store.seq_bytes(seq);

            let blob = store.swap_out(seq).unwrap();
            assert_eq!(store.free_pages(), free_before, "swap-out frees all pages");
            assert_eq!(store.resident(), 0);
            assert_eq!(blob.host_bytes(), bytes);
            assert_eq!(blob.pages_needed(page_tokens), held);
            assert!(store.swap_out(seq).is_err(), "already swapped out");

            let seq2 = store.swap_in(&blob).unwrap();
            assert_ne!(seq2, seq, "ids are never reused");
            assert!(
                store.matches_cache(seq2, &cache, 0),
                "page_tokens={page_tokens}: swap round trip not bitwise"
            );
            // The restored sequence keeps its full reservation: appends
            // up to the original budget stay infallible.
            let k = row(16, 2000, 0);
            store
                .append_step(
                    seq2,
                    &[k.clone(), k.clone()],
                    &[k.clone(), k],
                    &ReferenceCodec,
                )
                .unwrap();
        }
    }

    #[test]
    fn swap_in_oom_is_clean_and_burns_nothing() {
        let mut store = PagedKvStore::new(cfg(16), 1, 8, 32);
        let seq = store.admit(128).unwrap(); // 4 pages
        let cache = mirrored_appends(&mut store, seq, 100, 0);
        let blob = store.swap_out(seq).unwrap();
        // Occupy too many pages for the blob to come back.
        let hog = store.admit(192).unwrap(); // 6 of 8 pages
        let err = store.swap_in(&blob).unwrap_err();
        assert_eq!(
            err,
            StoreError::Oom(PagedOom {
                requested: 4,
                free: 2
            })
        );
        store.evict(hog);
        // The failed swap-in burned no id and left the blob reusable.
        let back = store.swap_in(&blob).unwrap();
        assert_eq!(back.0, hog.0 + 1);
        assert!(store.matches_cache(back, &cache, 0));
    }

    #[test]
    fn swapped_sequences_preserve_sealed_state() {
        let mut store = PagedKvStore::new(cfg(16), 1, 8, 32);
        let seq = store.admit(64).unwrap();
        mirrored_appends(&mut store, seq, 20, 0);
        store.seal(seq).unwrap();
        let blob = store.swap_out(seq).unwrap();
        let back = store.swap_in(&blob).unwrap();
        let k = row(16, 0, 0);
        assert!(matches!(
            store.append_step(
                back,
                std::slice::from_ref(&k),
                std::slice::from_ref(&k),
                &ReferenceCodec
            ),
            Err(StoreError::Sealed(_))
        ));
    }

    #[test]
    fn fork_shares_pages_and_divergent_lineages_stay_bitwise() {
        // Page sizes straddling every regime: pages much smaller than a
        // block (3, 7), block-aligned-ish (32, 48), and one page holding
        // several blocks (300). Nr = 128 here, so the 256-token prompt is
        // block-aligned and every prompt page is shareable.
        for page_tokens in [3usize, 7, 32, 48, 300] {
            let prompt = 256;
            let budget = prompt + 64;
            let mut store = PagedKvStore::new(cfg(16), 2, 2048, page_tokens);
            let parent = store.admit(budget).unwrap();
            let mut parent_cache = mirrored_appends(&mut store, parent, prompt, 0);
            let mut child_cache = parent_cache.clone();

            let free_before = store.free_pages();
            let predicted = store.fork_new_pages(parent, prompt, budget).unwrap();
            let child = store.fork(parent, prompt, budget).unwrap();
            assert_eq!(
                free_before - store.free_pages(),
                predicted,
                "page_tokens={page_tokens}: fork_new_pages mispredicted"
            );
            assert_eq!(
                predicted,
                budget.div_ceil(page_tokens) - prompt.div_ceil(page_tokens),
                "only the private tail is newly allocated"
            );
            let stats = store.sharing_stats();
            assert_eq!(stats.shared_pages, prompt.div_ceil(page_tokens));
            assert!(stats.bytes_saved > 0);
            assert_eq!(
                stats.logical_pages - stats.physical_pages,
                stats.shared_pages
            );
            assert!(
                store.matches_cache(child, &child_cache, 0),
                "page_tokens={page_tokens}: child is not the prefix bitwise"
            );

            // Divergent continuations: both lineages flush into (what was)
            // shared territory; copy-on-write must keep them independent.
            append_both(&mut store, parent, &mut parent_cache, 70, 1000, prompt);
            append_both(&mut store, child, &mut child_cache, 70, 2000, prompt);
            assert!(
                store.matches_cache(parent, &parent_cache, 0),
                "page_tokens={page_tokens}: child writes leaked into the parent"
            );
            assert!(
                store.matches_cache(child, &child_cache, 0),
                "page_tokens={page_tokens}: parent writes leaked into the child"
            );

            // Releasing both lineages returns every page: refcounts hit
            // zero exactly once per physical page.
            store.evict(parent);
            assert!(
                store.matches_cache(child, &child_cache, 0),
                "page_tokens={page_tokens}: parent eviction corrupted the child"
            );
            store.evict(child);
            assert_eq!(store.free_pages(), store.total_pages());
        }
    }

    /// Appends `n` tokens (salted) to the paged sequence only.
    fn append_n(store: &mut PagedKvStore, seq: SeqId, n: usize, salt: usize, t0: usize) {
        let dim = store.config().dim;
        let heads = store.heads();
        for t in t0..t0 + n {
            let k: Vec<Vec<f32>> = (0..heads).map(|h| row(dim, t, salt + h)).collect();
            let v: Vec<Vec<f32>> = (0..heads).map(|h| row(dim, t + 500, salt + h)).collect();
            store.append_step(seq, &k, &v, &ReferenceCodec).unwrap();
        }
    }

    #[test]
    fn shared_block_run_tracks_physical_prefix_identity() {
        // Nr = 128, pages of 48 tokens: block 0 homes on slot 0, block 1 on
        // slot 2, block 2 on slot 5.
        let mut store = PagedKvStore::new(cfg(16), 2, 2048, 48);
        let parent = store.admit(512).unwrap();
        append_n(&mut store, parent, 256, 0, 0);
        assert_eq!(store.shared_block_run(&[]), 0);
        assert_eq!(store.shared_block_run(&[parent]), 0, "no group of one");

        let child = store.fork(parent, 256, 512).unwrap();
        assert_eq!(store.shared_block_run(&[parent, child]), 2);

        // An unrelated sequence shares no physical pages.
        let other = store.admit(512).unwrap();
        append_n(&mut store, other, 256, 9, 0);
        assert_eq!(store.shared_block_run(&[parent, other]), 0);
        assert_eq!(store.shared_block_run(&[parent, child, other]), 0);

        // Parent diverges: its block-2 flush CoWs the straddling shared
        // page (slot 5), which no shared block homes on — run unchanged,
        // capped at the child's own flushed count.
        append_n(&mut store, parent, 128, 1000, 256);
        assert!(store.cow_breaks() > 0, "flush must have broken the share");
        assert_eq!(store.shared_block_run(&[parent, child]), 2);

        // Child catches up with its own divergent block 2: tables now
        // disagree at slot 5, so the run still stops at 2.
        append_n(&mut store, child, 128, 2000, 256);
        assert_eq!(store.shared_block_run(&[parent, child]), 2);

        // A non-resident member dissolves the group entirely.
        store.evict(child);
        assert_eq!(store.shared_block_run(&[parent, child]), 0);
    }

    #[test]
    fn mid_page_fork_boundary_splits_the_group_at_the_last_shared_block() {
        // Regression for the off-by-one-page case: pt = 256 holds two
        // Nr = 128 blocks, and the fork lands at 270 — neither
        // page-aligned (270 % 256 != 0) nor block-aligned (270 % 128 != 0),
        // legal because tokens 256..270 sit in the parent's residual
        // window. The straddling page (slot 1, tokens 256..511) is shared
        // at fork time, but block 2 — which homes on it — is *not* common
        // history: a pages-shared → blocks-shared shortcut would claim
        // ceil(270/256)·256/128 = 4 blocks. The run must stop at 2, before
        // and after either lineage flushes into the straddling page.
        let mut store = PagedKvStore::new(cfg(16), 1, 64, 256);
        let parent = store.admit(512).unwrap();
        append_n(&mut store, parent, 300, 0, 0);
        assert!(store.can_fork(parent, 270), "mid-residual fork is legal");
        let child = store.fork(parent, 270, 512).unwrap();
        assert_eq!(store.sharing_stats().shared_pages, 2);
        assert_eq!(store.shared_block_run(&[parent, child]), 2);

        // Parent flushes block 2 into the shared straddling page → CoW.
        append_n(&mut store, parent, 84, 1000, 300);
        assert_eq!(store.seq_len(parent), Some(384));
        assert_eq!(store.cow_breaks(), 1);
        assert_eq!(store.shared_block_run(&[parent, child]), 2);

        // Child flushes its own divergent block 2 (now sole owner of the
        // original page): tables disagree on slot 1, run still 2 — the
        // straddling page's blocks belong to the private suffix.
        append_n(&mut store, child, 114, 2000, 270);
        assert_eq!(store.seq_len(child), Some(384));
        assert_eq!(store.shared_block_run(&[parent, child]), 2);
    }

    #[test]
    fn fork_mid_residual_copies_the_window_prefix() {
        // Prompt 100 < Nr (128): nothing is packed, the whole prompt sits
        // in the FP16 window. A fork at 100 deep-copies those rows even
        // after the parent generated a few more (un-flushed) tokens.
        let mut store = PagedKvStore::new(cfg(16), 2, 64, 32);
        let parent = store.admit(200).unwrap();
        let mut parent_cache = mirrored_appends(&mut store, parent, 100, 0);
        let mut child_cache = parent_cache.clone();
        append_both(&mut store, parent, &mut parent_cache, 20, 50, 100);

        let child = store.fork(parent, 100, 200).unwrap();
        assert_eq!(store.residual_len(child), 100);
        assert!(store.matches_cache(child, &child_cache, 0));
        append_both(&mut store, child, &mut child_cache, 60, 60, 100);
        assert!(store.matches_cache(child, &child_cache, 0));
        assert!(store.matches_cache(parent, &parent_cache, 0));
    }

    #[test]
    fn fork_boundaries_inside_packed_blocks_are_rejected() {
        let mut store = PagedKvStore::new(cfg(16), 1, 64, 32);
        let parent = store.admit(400).unwrap();
        mirrored_appends(&mut store, parent, 300, 0); // 2 blocks + 44 residual
        assert!(store.can_fork(parent, 128));
        assert!(store.can_fork(parent, 256));
        assert!(store.can_fork(parent, 270), "within the residual window");
        assert!(store.can_fork(parent, 300));
        assert!(!store.can_fork(parent, 100), "inside packed block 0");
        assert!(!store.can_fork(parent, 200), "inside packed block 1");
        assert!(!store.can_fork(parent, 301), "beyond the parent");
        assert!(matches!(
            store.fork(parent, 200, 400),
            Err(StoreError::ForkBoundary {
                at_token: 200,
                parent_len: 300,
                residual_block: 128,
            })
        ));
        assert!(store.fork_new_pages(parent, 200, 400).is_none());
        assert!(matches!(
            store.fork(SeqId(99), 0, 10),
            Err(StoreError::UnknownSeq(SeqId(99)))
        ));
    }

    #[test]
    fn fork_oom_admits_nothing_and_bumps_no_refcount() {
        let mut store = PagedKvStore::new(cfg(16), 1, 8, 32);
        let parent = store.admit(128).unwrap(); // 4 of 8 pages
        mirrored_appends(&mut store, parent, 128, 0);
        // Child wants 128 shared + 160 private = 5 fresh pages; only 4 free.
        let err = store.fork(parent, 128, 128 + 160).unwrap_err();
        assert!(matches!(err, StoreError::Oom(_)));
        assert_eq!(store.free_pages(), 4);
        assert_eq!(store.sharing_stats().shared_pages, 0);
        // The failed fork burned no SeqId.
        let child = store.fork(parent, 128, 128 + 32).unwrap();
        assert_eq!(child.0, parent.0 + 1);
    }

    #[test]
    fn cow_oom_leaves_the_sequence_unchanged() {
        // Nr = 128, one page of 128 tokens shared; the child's flush at
        // token 128... no wait — make the flush land ON the shared page:
        // page_tokens 192 covers tokens 0..192, so the child's first flush
        // (block 1, home token 128) needs a CoW of the shared page. With
        // zero free pages that append must fail cleanly.
        let mut store = PagedKvStore::new(cfg(16), 1, 3, 192);
        let parent = store.admit(192).unwrap(); // 1 page
        let mut cache = mirrored_appends(&mut store, parent, 128, 0);
        let child = store.fork(parent, 128, 256).unwrap(); // 1 shared + 1 fresh
        assert_eq!(store.free_pages(), 1);
        let hog = store.admit(192).unwrap(); // last free page
        let mut child_cache = cache.clone();
        append_both(&mut store, child, &mut child_cache, 127, 9, 128);
        // The 128th append flushes block 1 onto the shared page → CoW →
        // OOM. Nothing may change.
        let k = row(16, 999, 9);
        let err = store
            .append_step(
                child,
                std::slice::from_ref(&k),
                std::slice::from_ref(&k),
                &ReferenceCodec,
            )
            .unwrap_err();
        assert!(matches!(err, StoreError::Oom(_)));
        assert_eq!(store.seq_len(child), Some(255));
        assert!(store.matches_cache(child, &child_cache, 0));
        // Freeing the hog lets the same append CoW and proceed.
        store.evict(hog);
        append_both(&mut store, child, &mut child_cache, 1, 9, 255);
        assert!(store.matches_cache(child, &child_cache, 0));
        append_both(&mut store, parent, &mut cache, 10, 4, 128);
        assert!(store.matches_cache(parent, &cache, 0));
    }

    #[test]
    fn swap_out_of_a_sharing_sequence_restores_into_reshared_pages() {
        let mut store = PagedKvStore::new(cfg(16), 2, 64, 32);
        let parent = store.admit(160).unwrap(); // 5 pages
        let mut parent_cache = mirrored_appends(&mut store, parent, 128, 0);
        let child_cache = parent_cache.clone();
        let child = store.fork(parent, 128, 160).unwrap(); // 4 shared + 1 fresh
        let free_before = store.free_pages();

        // Swap the child out: only its private page frees (the shared
        // prefix survives through the parent).
        let blob = store.swap_out(child).unwrap();
        assert_eq!(store.free_pages(), free_before + 1);
        // Swap-in while the prefix is resident re-shares: one new page.
        assert_eq!(store.swap_in_new_pages(&blob), 1);
        let back = store.swap_in(&blob).unwrap();
        assert_eq!(store.free_pages(), free_before);
        assert!(store.matches_cache(back, &child_cache, 0));
        assert_eq!(store.sharing_stats().shared_pages, 4);

        // Parent untouched throughout.
        append_both(&mut store, parent, &mut parent_cache, 5, 3, 128);
        assert!(store.matches_cache(parent, &parent_cache, 0));

        // Once the prefix leaves the store, an old blob restores fully
        // private — still bitwise.
        let blob2 = store.swap_out(back).unwrap();
        store.evict(parent);
        assert_eq!(store.free_pages(), store.total_pages());
        assert_eq!(store.swap_in_new_pages(&blob2), 5);
        let solo = store.swap_in(&blob2).unwrap();
        assert!(store.matches_cache(solo, &child_cache, 0));
        assert_eq!(store.sharing_stats().shared_pages, 0);
    }

    #[test]
    fn survivor_reclaims_departed_siblings_blocks_from_inherited_frames() {
        // Nr = 128, page_tokens = 48. The parent decodes to 256 BEFORE the
        // fork, homing its block 1 (tokens 128..256) on page slot 2 — a
        // slot the child's 128-token shared prefix also covers. When the
        // parent then departs, the child becomes sole owner of a frame
        // still carrying the parent's past-boundary block (frames only
        // clear at refcount zero); its own block-1 flush must reclaim the
        // frame rather than append after the stale foreign block
        // (regression: the count-truncated gather used to return the
        // parent's divergent block as the child's — silent corruption).
        let mut store = PagedKvStore::new(cfg(16), 1, 64, 48);
        let parent = store.admit(300).unwrap();
        let mut parent_cache = mirrored_appends(&mut store, parent, 128, 0);
        let mut child_cache = parent_cache.clone();
        append_both(&mut store, parent, &mut parent_cache, 128, 11, 128);
        assert_eq!(store.packed_blocks(parent, 0).len(), 2);

        let child = store.fork(parent, 128, 300).unwrap();
        store.evict(parent);
        // The child decodes past the boundary: its block 1 homes on the
        // inherited slot-2 frame.
        append_both(&mut store, child, &mut child_cache, 128, 22, 128);
        assert_eq!(store.packed_blocks(child, 0).len(), 2);
        assert!(
            store.matches_cache(child, &child_cache, 0),
            "child gathered the departed parent's block as its own"
        );
        store.evict(child);
        assert_eq!(store.free_pages(), store.total_pages());
    }

    #[test]
    fn frame_reclaim_invalidates_outstanding_swap_reshare() {
        // Same shape, but the parent is swapped out (not evicted) before
        // the child's reclaiming flush. The parent's blob recorded the
        // shared slot-2 page for re-sharing; the child's truncation bumps
        // that page's generation, so the blob must restore its block 1
        // privately instead of re-sharing a frame that no longer holds it.
        let mut store = PagedKvStore::new(cfg(16), 1, 64, 48);
        let parent = store.admit(300).unwrap();
        let mut parent_cache = mirrored_appends(&mut store, parent, 128, 0);
        let mut child_cache = parent_cache.clone();
        append_both(&mut store, parent, &mut parent_cache, 128, 11, 128);
        let child = store.fork(parent, 128, 300).unwrap();

        let blob = store.swap_out(parent).unwrap();
        append_both(&mut store, child, &mut child_cache, 128, 22, 128);
        assert!(store.matches_cache(child, &child_cache, 0));

        let back = store.swap_in(&blob).unwrap();
        assert!(
            store.matches_cache(back, &parent_cache, 0),
            "parent re-shared a frame its sibling had reclaimed"
        );
        // The untouched prefix slots (0 and 1) still re-shared.
        assert!(store.sharing_stats().shared_pages >= 2);
        store.evict(back);
        store.evict(child);
        assert_eq!(store.free_pages(), store.total_pages());
    }

    #[test]
    fn reshare_detects_recycled_pages_by_generation() {
        // The shared prefix is evicted and its pages re-used by an
        // unrelated sequence before the blob returns: the generation check
        // must reject re-sharing even though the PageIds are alive again.
        let mut store = PagedKvStore::new(cfg(16), 1, 16, 32);
        let parent = store.admit(128).unwrap();
        let cache = mirrored_appends(&mut store, parent, 128, 0);
        let child = store.fork(parent, 128, 128).unwrap();
        let blob = store.swap_out(child).unwrap();
        store.evict(parent); // prefix gone; pages 0..4 freed
        let squatter = store.admit(128).unwrap(); // re-uses pages 0..4
        mirrored_appends(&mut store, squatter, 128, 7);
        assert_eq!(store.swap_in_new_pages(&blob), 4, "no false re-share");
        let back = store.swap_in(&blob).unwrap();
        assert!(store.matches_cache(back, &cache, 0));
    }

    #[test]
    fn block_straddling_pages_stays_homed_on_first_token_page() {
        // Nr = 128, page_tokens = 48: block 0 covers tokens 0..128, homed on
        // page table[0]; block 1 covers 128..256, starts at offset 32 of
        // table[2].
        let mut store = PagedKvStore::new(cfg(16), 1, 32, 48);
        let seq = store.admit(0).unwrap();
        let cache = mirrored_appends(&mut store, seq, 256, 0);
        assert!(store.matches_cache(seq, &cache, 0));
        assert_eq!(store.packed_blocks(seq, 0).len(), 2);
        let table = store.pool().table(seq).unwrap().to_vec();
        assert_eq!(table.len(), 6); // ceil(256/48)
        assert_eq!(store.seq_bytes(seq), cache.total_bytes());
    }

    #[test]
    fn swap_blob_checksum_round_trips_intact() {
        for page_tokens in [1, 48, 300] {
            let mut store = PagedKvStore::new(cfg(16), 2, 2048, page_tokens);
            let seq = store.admit(300).unwrap();
            let _cache = mirrored_appends(&mut store, seq, 128 + 37, 0);
            let blob = store.swap_out(seq).unwrap();
            assert_eq!(blob.checksum(), blob.computed_checksum());
            assert!(blob.verify().is_ok());
            assert!(store.swap_in(&blob).is_ok());
        }
    }

    #[test]
    fn single_bit_flip_is_detected_anywhere_in_the_blob() {
        let mut store = PagedKvStore::new(cfg(16), 2, 2048, 48);
        let seq = store.admit(300).unwrap();
        let _cache = mirrored_appends(&mut store, seq, 128 + 37, 0);
        let clean = store.swap_out(seq).unwrap();
        // Bit positions folding into packed words, FP params, and the
        // residual tail; every one must flip the checksum.
        for bit in [0u64, 1, 13, 512, 4096, 65_535, u64::MAX / 3, u64::MAX] {
            let mut blob = clean.clone();
            blob.flip_bit(bit);
            let err = blob.verify().unwrap_err();
            assert!(
                matches!(err, StoreError::CorruptBlob { expected, got } if expected != got),
                "bit {bit} escaped the checksum"
            );
            // And swap-in refuses it without touching the pool.
            let free = store.free_pages();
            assert_eq!(store.swap_in(&blob).unwrap_err(), err);
            assert_eq!(store.free_pages(), free, "rejected swap-in leaked pages");
        }
        // The undamaged original still restores.
        assert!(store.swap_in(&clean).is_ok());
    }

    /// Per-head K/V prompt rows for the prefix-cache tests.
    #[allow(clippy::type_complexity)]
    fn prompt(
        heads: usize,
        dim: usize,
        len: usize,
        salt: usize,
    ) -> (Vec<Vec<Vec<f32>>>, Vec<Vec<Vec<f32>>>) {
        let k = (0..heads)
            .map(|h| (0..len).map(|t| row(dim, t, salt + h)).collect())
            .collect();
        let v = (0..heads)
            .map(|h| (0..len).map(|t| row(dim, t + 500, salt + h)).collect())
            .collect();
        (k, v)
    }

    #[test]
    fn prefix_cache_dedups_identical_independent_prompts() {
        // kc4 ⇒ Nr = 128; page_tokens 32 ⇒ one run = 4 pages, 1 block.
        let mut store = PagedKvStore::new(cfg(16), 2, 64, 32);
        store.set_prefix_cache(true);
        let (k, v) = prompt(2, 16, 128, 7);
        let (a, ad) = store
            .admit_prefill_cached(&k, &v, 160, &ReferenceCodec)
            .unwrap();
        assert_eq!(ad.pages_reused, 0, "first admission can adopt nothing");
        let free_after_a = store.pool.free_pages();
        let (b, bd) = store
            .admit_prefill_cached(&k, &v, 160, &ReferenceCodec)
            .unwrap();
        // The identical independent prompt adopted the whole 4-page run;
        // only the private generation tail was drawn fresh.
        assert_eq!(bd.pages_reused, 4);
        assert!(bd.bytes_reused > 0);
        assert_eq!(free_after_a - store.pool.free_pages(), 1);
        // Bitwise identical gather through both page tables, and the
        // cascade grouping sees the shared run like an explicit fork's.
        for h in 0..2 {
            assert_eq!(store.packed_blocks(a, h), store.packed_blocks(b, h));
        }
        assert_eq!(store.shared_block_run(&[a, b]), 1);
        let stats = store.prefix_cache_stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
        assert_eq!(stats.pages_reused, 4);
        assert_eq!(stats.bytes_reused, bd.bytes_reused as u64);
        // Counters reconcile exactly with the sharing snapshot: the run's
        // pages are shared, and the bytes sharing saves are the bytes the
        // hit reported reused.
        let sharing = store.sharing_stats();
        assert_eq!(sharing.shared_pages, 4);
        assert_eq!(sharing.logical_pages - sharing.physical_pages, 4);
        assert_eq!(sharing.bytes_saved as u64, stats.bytes_reused);
    }

    #[test]
    fn prefix_pages_survive_eviction_and_still_count_free() {
        let mut store = PagedKvStore::new(cfg(16), 1, 16, 32);
        store.set_prefix_cache(true);
        let (k, v) = prompt(1, 16, 128, 3);
        let (a, _) = store
            .admit_prefill_cached(&k, &v, 128, &ReferenceCodec)
            .unwrap();
        store.evict(a);
        // Pinned run pages stay allocated in the pool but are reclaimable
        // on demand, so the store-level free count is unchanged — cache
        // residency is invisible to admission control.
        assert_eq!(store.pool.free_pages(), 12);
        assert_eq!(store.free_pages(), 16);
        assert_eq!(store.prefix_cached_pages(), 4);
        // An identical prompt after the owner's departure adopts the run
        // without allocating a single page.
        let (b, bd) = store
            .admit_prefill_cached(&k, &v, 128, &ReferenceCodec)
            .unwrap();
        assert_eq!(bd.pages_reused, 4);
        assert_eq!(store.pool.free_pages(), 12);
        // And the adopted bytes equal a cache-off admission's exactly.
        let mut plain = PagedKvStore::new(cfg(16), 1, 16, 32);
        let s2 = plain.admit(128).unwrap();
        plain.prefill(s2, &k, &v, &ReferenceCodec).unwrap();
        assert_eq!(store.packed_blocks(b, 0), plain.packed_blocks(s2, 0));
    }

    #[test]
    fn forced_hash_collisions_never_alias_pages() {
        let mut store = PagedKvStore::new(cfg(16), 1, 32, 32);
        store.set_prefix_cache(true);
        store.force_hash_collisions();
        let (ka, va) = prompt(1, 16, 128, 1);
        let (kb, vb) = prompt(1, 16, 128, 2);
        let (a, ad) = store
            .admit_prefill_cached(&ka, &va, 128, &ReferenceCodec)
            .unwrap();
        assert_eq!(ad.pages_reused, 0);
        // Same (forced) chain key, different packed bytes: adoption-time
        // byte-verification must reject the candidate run.
        let (b, bd) = store
            .admit_prefill_cached(&kb, &vb, 128, &ReferenceCodec)
            .unwrap();
        assert_eq!(bd.pages_reused, 0, "hash collision adopted foreign pages");
        assert_ne!(store.packed_blocks(a, 0), store.packed_blocks(b, 0));
        // Byte-identical readmission still hits through the colliding key.
        let (c, cd) = store
            .admit_prefill_cached(&ka, &va, 128, &ReferenceCodec)
            .unwrap();
        assert_eq!(cd.pages_reused, 4);
        assert_eq!(store.packed_blocks(a, 0), store.packed_blocks(c, 0));
    }

    #[test]
    fn recycled_page_generation_blocks_stale_adoption() {
        let mut store = PagedKvStore::new(cfg(16), 1, 16, 32);
        store.set_prefix_cache(true);
        let (k, v) = prompt(1, 16, 128, 9);
        let (a, _) = store
            .admit_prefill_cached(&k, &v, 128, &ReferenceCodec)
            .unwrap();
        let first_page = store.pool.table(a).unwrap()[0];
        store.evict(a);
        // Simulate the page's frame being rewritten in place while a live
        // radix entry still points at it.
        store.pool.bump_generation(first_page);
        let (b, bd) = store
            .admit_prefill_cached(&k, &v, 128, &ReferenceCodec)
            .unwrap();
        assert_eq!(bd.pages_reused, 0, "stale generation served cached pages");
        let stats = store.prefix_cache_stats();
        assert_eq!(stats.evicted_subtrees, 1);
        assert_eq!(stats.evicted_pages, 4);
        // The stale entry was replaced by `b`'s fresh registration, and
        // the restored bytes are correct.
        assert_eq!(store.prefix_cached_runs(), 1);
        let mut plain = PagedKvStore::new(cfg(16), 1, 16, 32);
        let s2 = plain.admit(128).unwrap();
        plain.prefill(s2, &k, &v, &ReferenceCodec).unwrap();
        assert_eq!(store.packed_blocks(b, 0), plain.packed_blocks(s2, 0));
    }

    #[test]
    fn lru_eviction_returns_every_page() {
        let mut store = PagedKvStore::new(cfg(16), 1, 12, 32);
        store.set_prefix_cache(true);
        // Three distinct one-run prompts fill the whole pool as cache.
        for salt in 0..3 {
            let (k, v) = prompt(1, 16, 128, 100 + salt);
            let (s, _) = store
                .admit_prefill_cached(&k, &v, 128, &ReferenceCodec)
                .unwrap();
            store.evict(s);
        }
        assert_eq!(store.prefix_cached_pages(), 12);
        assert_eq!(store.pool.free_pages(), 0);
        assert_eq!(store.free_pages(), 12, "reclaimable cache must count free");
        // A non-matching admission forces LRU reclaim of exactly the
        // coldest chain — and gets every one of its pages back.
        let (k, v) = prompt(1, 16, 128, 999);
        let (s, sd) = store
            .admit_prefill_cached(&k, &v, 128, &ReferenceCodec)
            .unwrap();
        assert_eq!(sd.pages_reused, 0);
        let stats = store.prefix_cache_stats();
        assert_eq!(stats.evicted_subtrees, 1);
        assert_eq!(stats.evicted_pages, 4);
        assert_eq!(store.prefix_cached_pages(), 12);
        assert_eq!(store.free_pages(), 8);
        store.evict(s);
        assert_eq!(store.free_pages(), 12);
        // Disabling the cache is the full leak audit: every pinned page
        // must come back to the pool's own free list.
        store.set_prefix_cache(false);
        assert_eq!(store.pool.free_pages(), 12);
        assert_eq!(store.prefix_cached_pages(), 0);
    }

    #[test]
    fn swap_in_adopts_cached_prefix_zero_copy() {
        let mut store = PagedKvStore::new(cfg(16), 1, 16, 32);
        store.set_prefix_cache(true);
        let (k, v) = prompt(1, 16, 140, 5); // 128 packed + 12 residual rows
        let (a, _) = store
            .admit_prefill_cached(&k, &v, 160, &ReferenceCodec)
            .unwrap();
        let before: Vec<PackedBlock> = store.packed_blocks(a, 0).into_iter().cloned().collect();
        let blob = store.swap_out(a).unwrap();
        // The registered run outlives its owner's swap-out...
        assert_eq!(store.prefix_cached_pages(), 4);
        assert_eq!(store.free_pages(), 16);
        let free_raw = store.pool.free_pages();
        // ...and swap-in re-attaches it zero-copy: only the private tail
        // slot is drawn fresh (160 tokens = 5 slots, 4 adopted).
        let b = store.swap_in(&blob).unwrap();
        assert_eq!(free_raw - store.pool.free_pages(), 1);
        let after: Vec<PackedBlock> = store.packed_blocks(b, 0).into_iter().cloned().collect();
        assert_eq!(before, after);
        assert_eq!(store.residual_len(b), 12);
        let stats = store.prefix_cache_stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.pages_reused, 4);
    }
}
