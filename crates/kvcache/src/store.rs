//! Paged **physical** KV storage: packed quantized blocks and FP16
//! residual windows living behind [`PagedPool`] page tables.
//!
//! [`crate::paged::PagedPool`] is pure bookkeeping — it decides *which*
//! pages a sequence owns. [`PagedKvStore`] puts real data behind that
//! decision: a page-frame arena holds the flushed [`PackedBlock`]s of every
//! resident sequence, each block homed on the physical page that covers its
//! first token, while the sub-block FP16 residual window of each sequence
//! accumulates outside the arena exactly as in the contiguous
//! [`QuantizedKvCache`]. The serve runtime (`bd-serve`) iterates a
//! sequence's blocks **through the page table** — the PagedAttention-style
//! indirection of the paper's "Page" setting — and appends decode-step
//! tokens between batch steps.
//!
//! # Contiguous-equivalence invariant
//!
//! For any append/prefill history, the blocks gathered through the page
//! table (in logical order) plus the residual window are **bitwise
//! identical** to what a contiguous [`QuantizedKvCache`] holds after the
//! same history with the same codec: same FP16 rounding, same `Nr` flush
//! boundaries, same packed payloads. Page size is free to be anything ≥ 1
//! token — blocks may straddle pages (they stay homed on their first
//! token's page) and pages may hold many blocks. [`PagedKvStore::matches_cache`]
//! checks the invariant; the serve property tests drive it for arbitrary
//! page sizes and eviction orders.

use crate::block::PackedBlock;
use crate::cache::{push_rounded, rounded_block, CacheConfig, CacheError, QuantizedKvCache};
use crate::codec::BlockCodec;
use crate::layout::partition_prefill;
use crate::matrix::{TokenMatrix, TokenRows};
use crate::paged::{PagedOom, PagedPool, SeqId};
use std::collections::BTreeMap;
use std::fmt;

/// Errors from paged-store operations.
#[derive(Debug, Clone, PartialEq)]
pub enum StoreError {
    /// The page pool could not supply the requested capacity.
    Oom(PagedOom),
    /// A token row had the wrong shape.
    Cache(CacheError),
    /// The sequence is not resident in the store.
    UnknownSeq(SeqId),
    /// The sequence was sealed and no longer accepts tokens.
    Sealed(SeqId),
    /// A per-head slice had the wrong number of heads.
    HeadCount {
        /// Heads provided.
        got: usize,
        /// Heads the store was built with.
        expected: usize,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Oom(e) => write!(f, "paged store: {e}"),
            StoreError::Cache(e) => write!(f, "paged store: {e}"),
            StoreError::UnknownSeq(s) => write!(f, "unknown sequence {s:?}"),
            StoreError::Sealed(s) => write!(f, "sequence {s:?} is sealed"),
            StoreError::HeadCount { got, expected } => {
                write!(
                    f,
                    "{got} per-head rows provided, store has {expected} heads"
                )
            }
        }
    }
}

impl std::error::Error for StoreError {}

impl From<PagedOom> for StoreError {
    fn from(e: PagedOom) -> Self {
        StoreError::Oom(e)
    }
}

impl From<CacheError> for StoreError {
    fn from(e: CacheError) -> Self {
        StoreError::Cache(e)
    }
}

/// Per-sequence state outside the page arena: the FP16 residual window per
/// head plus logical length bookkeeping.
#[derive(Clone, Debug)]
struct SeqKv {
    /// Logical tokens (packed + residual).
    len: usize,
    residual_k: Vec<TokenMatrix>,
    residual_v: Vec<TokenMatrix>,
    sealed: bool,
}

/// One physical page frame: the packed blocks homed on this page, per KV
/// head, in logical (append) order. A frame only ever holds blocks of the
/// single sequence that owns the page.
type Frame = Vec<Vec<PackedBlock>>;

/// A sequence swapped out of the page arena into host memory: the packed
/// blocks of every head in logical order plus the FP16 residual window,
/// with enough bookkeeping ([`SwappedSeq::reserved_tokens`]) for
/// [`PagedKvStore::swap_in`] to re-reserve the sequence's full page budget
/// and restore it **bitwise**. Produced by [`PagedKvStore::swap_out`].
#[derive(Clone, Debug)]
pub struct SwappedSeq {
    /// Head dimension (consistency check on swap-in).
    dim: usize,
    /// Logical tokens (packed + residual) at swap-out.
    len: usize,
    /// Token length the page pool had reserved (≥ `len`; the prompt +
    /// generation budget under up-front reservation).
    reserved_tokens: usize,
    /// Whether the sequence was sealed.
    sealed: bool,
    /// Per head, the packed blocks in logical (append) order.
    blocks: Vec<Vec<PackedBlock>>,
    /// Per head, the FP16 residual K window.
    residual_k: Vec<TokenMatrix>,
    /// Per head, the FP16 residual V window.
    residual_v: Vec<TokenMatrix>,
}

impl SwappedSeq {
    /// Logical tokens held in the blob.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when the blob holds no tokens.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Pages [`PagedKvStore::swap_in`] must reserve, given the store's
    /// page size.
    pub fn pages_needed(&self, page_tokens: usize) -> usize {
        self.reserved_tokens.div_ceil(page_tokens)
    }

    /// Host bytes the blob occupies (packed payloads + FP16 residual
    /// windows) — the traffic one swap direction moves over the host link.
    pub fn host_bytes(&self) -> usize {
        let packed: usize = self
            .blocks
            .iter()
            .flat_map(|head| head.iter().map(PackedBlock::byte_size))
            .sum();
        let residual: usize = self
            .residual_k
            .iter()
            .chain(&self.residual_v)
            .map(|m| m.len() * self.dim * 2)
            .sum();
        packed + residual
    }
}

/// Paged physical KV storage for many concurrent sequences — see the
/// [module docs](self) for the layout and the contiguous-equivalence
/// invariant.
///
/// # Examples
///
/// ```
/// use bd_kvcache::{CacheConfig, PackLayout, PagedKvStore, QuantScheme, ReferenceCodec};
///
/// let cfg = CacheConfig::new(16, QuantScheme::kc4(), PackLayout::sm80_default());
/// let mut store = PagedKvStore::new(cfg, 1, 64, 32);
/// let seq = store.admit(200).unwrap(); // reserve 200 tokens of pages
/// let row = vec![0.5f32; 16];
/// store
///     .append_step(seq, &[row.clone()], &[row], &ReferenceCodec)
///     .unwrap();
/// assert_eq!(store.seq_len(seq), Some(1));
/// store.evict(seq);
/// assert_eq!(store.free_pages(), 64);
/// ```
#[derive(Clone, Debug)]
pub struct PagedKvStore {
    config: CacheConfig,
    heads: usize,
    pool: PagedPool,
    frames: Vec<Frame>,
    seqs: BTreeMap<SeqId, SeqKv>,
}

impl PagedKvStore {
    /// Creates a store of `total_pages` pages of `page_tokens` tokens each,
    /// holding `heads` KV heads per sequence.
    ///
    /// # Panics
    ///
    /// Panics if `heads` or `page_tokens` is zero.
    pub fn new(config: CacheConfig, heads: usize, total_pages: usize, page_tokens: usize) -> Self {
        assert!(heads > 0, "store needs at least one KV head");
        PagedKvStore {
            config,
            heads,
            pool: PagedPool::new(total_pages, page_tokens),
            frames: vec![vec![Vec::new(); heads]; total_pages],
            seqs: BTreeMap::new(),
        }
    }

    /// The cache configuration shared by every sequence.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// KV heads per sequence.
    pub fn heads(&self) -> usize {
        self.heads
    }

    /// Residual block size `Nr`.
    pub fn residual_block(&self) -> usize {
        self.config.residual_block()
    }

    /// Tokens per page.
    pub fn page_tokens(&self) -> usize {
        self.pool.page_tokens()
    }

    /// Pages not currently assigned.
    pub fn free_pages(&self) -> usize {
        self.pool.free_pages()
    }

    /// Total pool capacity in pages.
    pub fn total_pages(&self) -> usize {
        self.pool.total_pages()
    }

    /// Fraction of pages in use.
    pub fn utilization(&self) -> f64 {
        self.pool.utilization()
    }

    /// The underlying page tables (read-only).
    pub fn pool(&self) -> &PagedPool {
        &self.pool
    }

    /// Number of resident sequences.
    pub fn resident(&self) -> usize {
        self.seqs.len()
    }

    /// Admits a new sequence, reserving pages for `reserve_tokens` tokens
    /// up front (pass the prompt + generation budget to make every later
    /// append infallible, or 0 to grow page-by-page on demand).
    ///
    /// A failed admission leaves the store **completely** unchanged: in
    /// particular it does not consume a [`SeqId`], so an
    /// admit-fail → admit-success history hands out the same id stream as
    /// one without the failure — the property that keeps every device of a
    /// [`crate::ShardedKvStore`] in [`SeqId`] lockstep.
    ///
    /// # Errors
    ///
    /// Returns [`PagedOom`] — and admits nothing — when the pool cannot
    /// cover the reservation.
    pub fn admit(&mut self, reserve_tokens: usize) -> Result<SeqId, PagedOom> {
        // Pre-check the reservation before touching the pool: `PagedPool::
        // admit` advances the id counter unconditionally, so checking after
        // the fact would burn a SeqId on failure.
        let need = reserve_tokens.div_ceil(self.pool.page_tokens());
        if need > self.pool.free_pages() {
            return Err(PagedOom {
                requested: need,
                free: self.pool.free_pages(),
            });
        }
        let seq = self.pool.admit();
        if reserve_tokens > 0 {
            self.pool
                .grow(seq, reserve_tokens)
                .expect("reservation pre-checked against the free list");
        }
        self.seqs.insert(
            seq,
            SeqKv {
                len: 0,
                residual_k: vec![TokenMatrix::new(self.config.dim); self.heads],
                residual_v: vec![TokenMatrix::new(self.config.dim); self.heads],
                sealed: false,
            },
        );
        Ok(seq)
    }

    /// Marks a sequence finished: no further tokens may be appended. Its
    /// pages stay resident (readable) until [`PagedKvStore::evict`].
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::UnknownSeq`] for a non-resident sequence.
    pub fn seal(&mut self, seq: SeqId) -> Result<(), StoreError> {
        self.seqs
            .get_mut(&seq)
            .ok_or(StoreError::UnknownSeq(seq))?
            .sealed = true;
        Ok(())
    }

    /// Clears every page frame `seq` owns and returns its pages to the
    /// pool (the storage half shared by [`PagedKvStore::evict`] and
    /// [`PagedKvStore::swap_out`]).
    fn release_pages(&mut self, seq: SeqId) {
        if let Some(table) = self.pool.table(seq) {
            for page in table {
                for head_blocks in &mut self.frames[page.0 as usize] {
                    head_blocks.clear();
                }
            }
        }
        self.pool.release(seq);
    }

    /// Releases a sequence: clears every page frame it owned and returns
    /// the pages to the pool — **all** of them, whether the residual window
    /// was sealed, unsealed, or mid-append (pages are owned via the page
    /// table alone; the residual window lives outside the arena and is
    /// dropped with the sequence state). Unknown sequences are ignored.
    pub fn evict(&mut self, seq: SeqId) {
        if self.seqs.remove(&seq).is_none() {
            return;
        }
        self.release_pages(seq);
    }

    /// Swaps a sequence out to host memory: serializes its packed blocks
    /// (in logical order, per head) and FP16 residual window into a
    /// [`SwappedSeq`] blob, then frees every page it held. The blob plus
    /// [`PagedKvStore::swap_in`] restore the sequence **bitwise** — the
    /// physical pages may differ after the round trip, but the
    /// page-table-gathered blocks and the residual window are byte-equal,
    /// so decode is unaffected.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::UnknownSeq`] for a non-resident sequence (and
    /// changes nothing).
    pub fn swap_out(&mut self, seq: SeqId) -> Result<SwappedSeq, StoreError> {
        if !self.seqs.contains_key(&seq) {
            return Err(StoreError::UnknownSeq(seq));
        }
        let blocks: Vec<Vec<PackedBlock>> = (0..self.heads)
            .map(|h| self.packed_blocks(seq, h).into_iter().cloned().collect())
            .collect();
        let reserved_tokens = self.pool.seq_len(seq).expect("resident sequence");
        let state = self.seqs.remove(&seq).expect("checked above");
        self.release_pages(seq);
        Ok(SwappedSeq {
            dim: self.config.dim,
            len: state.len,
            reserved_tokens,
            sealed: state.sealed,
            blocks,
            residual_k: state.residual_k,
            residual_v: state.residual_v,
        })
    }

    /// Swaps a previously swapped-out sequence back in: re-reserves the
    /// blob's full page budget (so later appends stay infallible), re-homes
    /// every packed block on the page covering its first token, and
    /// restores the residual window. Returns the sequence's new [`SeqId`]
    /// (ids are never reused; the pool hands out the next one).
    ///
    /// Like [`PagedKvStore::admit`], a failed swap-in leaves the store —
    /// including the id counter — completely unchanged, and the blob is
    /// untouched either way.
    ///
    /// # Errors
    ///
    /// Returns [`PagedOom`] when the pool cannot cover the blob's page
    /// reservation.
    ///
    /// # Panics
    ///
    /// Panics if the blob's head count or dimension disagrees with the
    /// store's configuration.
    pub fn swap_in(&mut self, blob: &SwappedSeq) -> Result<SeqId, PagedOom> {
        assert_eq!(blob.blocks.len(), self.heads, "blob/store head count");
        assert_eq!(blob.dim, self.config.dim, "blob/store dimension");
        let seq = self.admit(blob.reserved_tokens)?;
        let nr = self.residual_block();
        for (head, head_blocks) in blob.blocks.iter().enumerate() {
            for (b, block) in head_blocks.iter().enumerate() {
                let (page, _) = self.pool.translate(seq, b * nr);
                self.frames[page.0 as usize][head].push(block.clone());
            }
        }
        let state = self.seqs.get_mut(&seq).expect("just admitted");
        state.len = blob.len;
        state.sealed = blob.sealed;
        state.residual_k = blob.residual_k.clone();
        state.residual_v = blob.residual_v.clone();
        Ok(seq)
    }

    /// Logical token count of a sequence (packed + residual).
    pub fn seq_len(&self, seq: SeqId) -> Option<usize> {
        self.seqs.get(&seq).map(|s| s.len)
    }

    /// Tokens currently in a sequence's FP16 residual window.
    ///
    /// # Panics
    ///
    /// Panics on a non-resident sequence.
    pub fn residual_len(&self, seq: SeqId) -> usize {
        self.seqs[&seq].residual_k[0].len()
    }

    /// The residual FP16 window of one head (`(k, v)`).
    ///
    /// # Panics
    ///
    /// Panics on a non-resident sequence or bad head index.
    pub fn residual(&self, seq: SeqId, head: usize) -> (&TokenMatrix, &TokenMatrix) {
        let s = &self.seqs[&seq];
        (&s.residual_k[head], &s.residual_v[head])
    }

    /// Gathers one head's packed blocks **through the page table**, oldest
    /// first — the page-indirect iteration the fused kernel consumes. The
    /// returned refs alias the page arena; by the contiguous-equivalence
    /// invariant they equal the contiguous cache's block list bitwise.
    ///
    /// # Panics
    ///
    /// Panics on a non-resident sequence or bad head index.
    pub fn packed_blocks(&self, seq: SeqId, head: usize) -> Vec<&PackedBlock> {
        assert!(head < self.heads, "head {head} out of range");
        let table = self.pool.table(seq).expect("resident sequence");
        let mut out = Vec::new();
        for page in table {
            out.extend(self.frames[page.0 as usize][head].iter());
        }
        out
    }

    /// Appends one decode-step token (one K/V row per head). Rows round
    /// through FP16 and accumulate in the residual window; when the window
    /// reaches `Nr` every head flushes one packed block into the page arena,
    /// homed on the page covering the block's first token.
    ///
    /// Returns `true` when this append flushed.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError`] on shape mismatch, a sealed or unknown
    /// sequence, or pool exhaustion (the sequence is left unchanged).
    pub fn append_step<R: AsRef<[f32]>>(
        &mut self,
        seq: SeqId,
        k_rows: &[R],
        v_rows: &[R],
        codec: &impl BlockCodec,
    ) -> Result<bool, StoreError> {
        let state = self.seqs.get(&seq).ok_or(StoreError::UnknownSeq(seq))?;
        if state.sealed {
            return Err(StoreError::Sealed(seq));
        }
        for got in [k_rows.len(), v_rows.len()] {
            if got != self.heads {
                return Err(StoreError::HeadCount {
                    got,
                    expected: self.heads,
                });
            }
        }
        for row in k_rows.iter().chain(v_rows) {
            if row.as_ref().len() != self.config.dim {
                return Err(StoreError::Cache(CacheError::DimMismatch {
                    expected: self.config.dim,
                    got: row.as_ref().len(),
                }));
            }
        }
        let new_len = state.len + 1;
        // Grow only past the reservation; within it, pages already exist.
        if new_len > self.pool.seq_len(seq).expect("resident sequence") {
            self.pool.grow(seq, new_len)?;
        }

        let nr = self.residual_block();
        let dim = self.config.dim;
        let scheme = self.config.scheme;
        let state = self.seqs.get_mut(&seq).expect("checked above");
        let mut flushed = false;
        for head in 0..self.heads {
            push_rounded(&mut state.residual_k[head], k_rows[head].as_ref());
            push_rounded(&mut state.residual_v[head], v_rows[head].as_ref());
            if state.residual_k[head].tokens() == nr {
                let k_block = std::mem::replace(&mut state.residual_k[head], TokenMatrix::new(dim));
                let v_block = std::mem::replace(&mut state.residual_v[head], TokenMatrix::new(dim));
                let packed = codec.encode(&k_block, &v_block, scheme);
                let start = new_len - nr;
                let (page, _) = self.pool.translate(seq, start);
                self.frames[page.0 as usize][head].push(packed);
                flushed = true;
            }
        }
        state.len = new_len;
        Ok(flushed)
    }

    /// Bulk-loads a prompt for an **empty** sequence: per head, the largest
    /// `Nr`-aligned prefix quantizes block-by-block into the page arena and
    /// the tail becomes the residual window — the paged twin of
    /// [`QuantizedKvCache::prefill`].
    ///
    /// # Errors
    ///
    /// Returns [`StoreError`] on shape mismatch, unknown/sealed/non-empty
    /// sequence, or pool exhaustion (nothing is stored on error).
    ///
    /// # Panics
    ///
    /// Panics if `k`/`v` head counts or per-head token counts disagree.
    pub fn prefill<K, V>(
        &mut self,
        seq: SeqId,
        k: &[K],
        v: &[V],
        codec: &impl BlockCodec,
    ) -> Result<(), StoreError>
    where
        K: TokenRows,
        V: TokenRows,
    {
        let state = self.seqs.get(&seq).ok_or(StoreError::UnknownSeq(seq))?;
        if state.sealed {
            return Err(StoreError::Sealed(seq));
        }
        assert_eq!(state.len, 0, "prefill requires an empty sequence");
        for got in [k.len(), v.len()] {
            if got != self.heads {
                return Err(StoreError::HeadCount {
                    got,
                    expected: self.heads,
                });
            }
        }
        let len = k[0].token_count();
        for (hk, hv) in k.iter().zip(v) {
            assert_eq!(hk.token_count(), len, "per-head prompt length mismatch");
            assert_eq!(hv.token_count(), len, "per-head prompt length mismatch");
            for t in 0..len {
                for row in [hk.token_row(t), hv.token_row(t)] {
                    if row.len() != self.config.dim {
                        return Err(StoreError::Cache(CacheError::DimMismatch {
                            expected: self.config.dim,
                            got: row.len(),
                        }));
                    }
                }
            }
        }
        if len > self.pool.seq_len(seq).expect("resident sequence") {
            self.pool.grow(seq, len)?;
        }

        let nr = self.residual_block();
        let (packed_len, _res) = partition_prefill(len, nr);
        let scheme = self.config.scheme;
        for head in 0..self.heads {
            for b0 in (0..packed_len).step_by(nr) {
                let kb = rounded_block(&k[head], b0, b0 + nr);
                let vb = rounded_block(&v[head], b0, b0 + nr);
                let packed = codec.encode(&kb, &vb, scheme);
                let (page, _) = self.pool.translate(seq, b0);
                self.frames[page.0 as usize][head].push(packed);
            }
        }
        let state = self.seqs.get_mut(&seq).expect("checked above");
        for head in 0..self.heads {
            for t in packed_len..len {
                push_rounded(&mut state.residual_k[head], k[head].token_row(t));
                push_rounded(&mut state.residual_v[head], v[head].token_row(t));
            }
        }
        state.len = len;
        Ok(())
    }

    /// Checks the contiguous-equivalence invariant against a contiguous
    /// cache that replayed the same history: for every head `h`, the blocks
    /// gathered through the page table must equal
    /// `cache.packed_blocks(cache_head_base + h)` bitwise, and the residual
    /// windows must match exactly.
    pub fn matches_cache(
        &self,
        seq: SeqId,
        cache: &QuantizedKvCache,
        cache_head_base: usize,
    ) -> bool {
        let Some(state) = self.seqs.get(&seq) else {
            return false;
        };
        for head in 0..self.heads {
            let ch = cache_head_base + head;
            if state.len != cache.len(ch) {
                return false;
            }
            let paged = self.packed_blocks(seq, head);
            let contiguous = cache.packed_blocks(ch);
            if paged.len() != contiguous.len()
                || paged.iter().zip(contiguous).any(|(a, b)| **a != *b)
            {
                return false;
            }
            let (rk, rv) = cache.residual(ch);
            if state.residual_k[head] != *rk || state.residual_v[head] != *rv {
                return false;
            }
        }
        true
    }

    /// Device bytes currently held by a sequence (packed payloads + FP16
    /// residual windows).
    ///
    /// # Panics
    ///
    /// Panics on a non-resident sequence.
    pub fn seq_bytes(&self, seq: SeqId) -> usize {
        let state = &self.seqs[&seq];
        let packed: usize = (0..self.heads)
            .map(|h| {
                self.packed_blocks(seq, h)
                    .iter()
                    .map(|b| b.byte_size())
                    .sum::<usize>()
            })
            .sum();
        let residual: usize = state
            .residual_k
            .iter()
            .map(|m| m.len() * self.config.dim * 2 * 2)
            .sum();
        packed + residual
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::ReferenceCodec;
    use crate::layout::PackLayout;
    use crate::scheme::QuantScheme;

    fn cfg(dim: usize) -> CacheConfig {
        CacheConfig::new(dim, QuantScheme::kc4(), PackLayout::sm80_default())
    }

    fn row(dim: usize, t: usize, salt: usize) -> Vec<f32> {
        (0..dim)
            .map(|c| ((t * dim + c + salt * 977) as f32 * 0.37).sin())
            .collect()
    }

    /// Appends `n` tokens to both containers and returns the cache twin.
    fn mirrored_appends(
        store: &mut PagedKvStore,
        seq: SeqId,
        n: usize,
        salt: usize,
    ) -> QuantizedKvCache {
        let dim = store.config().dim;
        let heads = store.heads();
        let mut cache = QuantizedKvCache::new(*store.config(), heads);
        for t in 0..n {
            let k: Vec<Vec<f32>> = (0..heads).map(|h| row(dim, t, salt + h)).collect();
            let v: Vec<Vec<f32>> = (0..heads).map(|h| row(dim, t + 500, salt + h)).collect();
            store.append_step(seq, &k, &v, &ReferenceCodec).unwrap();
            for h in 0..heads {
                cache
                    .append_token(h, &k[h], &v[h], &ReferenceCodec)
                    .unwrap();
            }
        }
        cache
    }

    #[test]
    fn append_path_matches_contiguous_cache() {
        for page_tokens in [1, 7, 64, 128, 300] {
            let mut store = PagedKvStore::new(cfg(16), 2, 2048, page_tokens);
            let seq = store.admit(0).unwrap();
            let cache = mirrored_appends(&mut store, seq, 128 * 2 + 37, 0);
            assert!(
                store.matches_cache(seq, &cache, 0),
                "page_tokens={page_tokens}"
            );
            assert_eq!(store.residual_len(seq), 37);
        }
    }

    #[test]
    fn prefill_matches_contiguous_cache() {
        let dim = 16;
        let mut store = PagedKvStore::new(cfg(dim), 2, 64, 48);
        let seq = store.admit(0).unwrap();
        let len = 128 + 50;
        let k: Vec<TokenMatrix> = (0..2)
            .map(|h| TokenMatrix::from_fn(len, dim, |t, c| ((h * 7 + t * dim + c) as f32).sin()))
            .collect();
        let v: Vec<TokenMatrix> = (0..2)
            .map(|h| TokenMatrix::from_fn(len, dim, |t, c| ((h * 13 + t * dim + c) as f32).cos()))
            .collect();
        store.prefill(seq, &k, &v, &ReferenceCodec).unwrap();

        let mut cache = QuantizedKvCache::new(cfg(dim), 2);
        for h in 0..2 {
            cache.prefill(h, &k[h], &v[h], &ReferenceCodec).unwrap();
        }
        assert!(store.matches_cache(seq, &cache, 0));
        assert_eq!(store.seq_len(seq), Some(len));
    }

    #[test]
    fn exact_block_multiple_prefill_matches_contiguous_cache() {
        // A prompt of exactly k·Nr tokens leaves the residual window
        // empty on both sides; the empty windows must still compare equal
        // (regression: the contiguous cache used to leave a dim-0 default
        // matrix there, failing matches_cache — and swap round trips —
        // despite holding identical bytes).
        for len in [128usize, 256] {
            let dim = 16;
            let mut store = PagedKvStore::new(cfg(dim), 2, 64, 48);
            let seq = store.admit(0).unwrap();
            let k: Vec<TokenMatrix> = (0..2)
                .map(|h| TokenMatrix::from_fn(len, dim, |t, c| ((h + t * dim + c) as f32).sin()))
                .collect();
            store.prefill(seq, &k, &k, &ReferenceCodec).unwrap();
            let mut cache = QuantizedKvCache::new(cfg(dim), 2);
            for (h, kh) in k.iter().enumerate() {
                cache.prefill(h, kh, kh, &ReferenceCodec).unwrap();
            }
            assert_eq!(store.residual_len(seq), 0);
            assert!(store.matches_cache(seq, &cache, 0), "len={len}");
            // And the swap round trip holds on the empty-residual state.
            let blob = store.swap_out(seq).unwrap();
            let back = store.swap_in(&blob).unwrap();
            assert!(store.matches_cache(back, &cache, 0), "len={len} swapped");
        }
    }

    #[test]
    fn eviction_frees_pages_and_reuse_does_not_corrupt() {
        // Three sequences; evict the middle one, admit a fourth that reuses
        // its pages; the survivors must still equal their contiguous twins.
        let mut store = PagedKvStore::new(cfg(16), 1, 40, 32);
        let a = store.admit(0).unwrap();
        let b = store.admit(0).unwrap();
        let c = store.admit(0).unwrap();
        let cache_a = mirrored_appends(&mut store, a, 200, 1);
        let _cache_b = mirrored_appends(&mut store, b, 300, 2);
        let cache_c = mirrored_appends(&mut store, c, 150, 3);
        let free_before = store.free_pages();
        store.evict(b);
        assert!(store.free_pages() > free_before);
        let d = store.admit(0).unwrap();
        let cache_d = mirrored_appends(&mut store, d, 280, 4);
        assert!(store.matches_cache(a, &cache_a, 0));
        assert!(store.matches_cache(c, &cache_c, 0));
        assert!(store.matches_cache(d, &cache_d, 0));
    }

    #[test]
    fn reservation_makes_appends_infallible_and_oom_is_clean() {
        let mut store = PagedKvStore::new(cfg(16), 1, 4, 32);
        let seq = store.admit(128).unwrap(); // exactly the pool
        assert_eq!(store.free_pages(), 0);
        let err = store.admit(1).unwrap_err();
        assert_eq!(err.requested, 1);
        assert_eq!(store.resident(), 1);
        for t in 0..128 {
            let k = row(16, t, 0);
            store
                .append_step(
                    seq,
                    std::slice::from_ref(&k),
                    std::slice::from_ref(&k),
                    &ReferenceCodec,
                )
                .unwrap();
        }
        // Past the reservation the pool is exhausted.
        let k = row(16, 999, 0);
        let err = store
            .append_step(
                seq,
                std::slice::from_ref(&k),
                std::slice::from_ref(&k),
                &ReferenceCodec,
            )
            .unwrap_err();
        assert!(matches!(err, StoreError::Oom(_)));
        assert_eq!(store.seq_len(seq), Some(128));
    }

    #[test]
    fn sealed_sequences_reject_appends() {
        let mut store = PagedKvStore::new(cfg(16), 1, 8, 32);
        let seq = store.admit(0).unwrap();
        store.seal(seq).unwrap();
        let k = row(16, 0, 0);
        assert!(matches!(
            store.append_step(
                seq,
                std::slice::from_ref(&k),
                std::slice::from_ref(&k),
                &ReferenceCodec
            ),
            Err(StoreError::Sealed(_))
        ));
        store.evict(seq);
        assert!(store.seq_len(seq).is_none());
        assert!(store.seal(seq).is_err());
    }

    #[test]
    fn shape_errors_are_reported() {
        let mut store = PagedKvStore::new(cfg(16), 2, 8, 32);
        let seq = store.admit(0).unwrap();
        let good = vec![vec![0.0f32; 16]; 2];
        let bad_dim = vec![vec![0.0f32; 8]; 2];
        assert!(matches!(
            store.append_step(seq, &bad_dim, &good, &ReferenceCodec),
            Err(StoreError::Cache(CacheError::DimMismatch { .. }))
        ));
        let bad_heads = vec![vec![0.0f32; 16]; 1];
        assert!(matches!(
            store.append_step(seq, &bad_heads, &good, &ReferenceCodec),
            Err(StoreError::HeadCount {
                got: 1,
                expected: 2
            })
        ));
    }

    #[test]
    fn failed_admit_does_not_burn_a_seq_id() {
        // admit-fail → admit-success must hand out the same SeqId stream
        // as a history without the failure: ids are part of the
        // deterministic-replay contract (and the sharded store's
        // cross-device lockstep).
        let mut store = PagedKvStore::new(cfg(16), 1, 4, 32);
        let a = store.admit(64).unwrap(); // 2 pages
        let err = store.admit(128).unwrap_err(); // needs 4, only 2 free
        assert_eq!(
            err,
            PagedOom {
                requested: 4,
                free: 2
            }
        );
        let b = store.admit(64).unwrap();
        assert_eq!(b.0, a.0 + 1, "failed admit consumed a SeqId");
        // A parallel store that never saw the failure agrees.
        let mut twin = PagedKvStore::new(cfg(16), 1, 4, 32);
        assert_eq!(twin.admit(64).unwrap(), a);
        assert_eq!(twin.admit(64).unwrap(), b);
    }

    #[test]
    fn evict_returns_all_pages_at_any_residual_state() {
        // Pages must return to the pre-admit count whether the sequence is
        // evicted before sealing, after sealing, or mid-append with an
        // unsealed residual window (`Nr` = 128 here, so 200 tokens leave 72
        // residual tokens unflushed).
        let scenarios: [fn(&mut PagedKvStore, SeqId); 3] = [
            |_, _| {},                 // evict-before-seal
            |s, q| s.seal(q).unwrap(), // evict-after-seal
            |s, q| {
                // evict-mid-append: window partly filled post-flush
                let k = vec![row(16, 1000, 9), row(16, 1001, 9)];
                s.append_step(q, &k, &k, &ReferenceCodec).unwrap();
            },
        ];
        for (i, prep) in scenarios.iter().enumerate() {
            let mut store = PagedKvStore::new(cfg(16), 2, 64, 48);
            let free_before = store.free_pages();
            let seq = store.admit(0).unwrap();
            mirrored_appends(&mut store, seq, 200, i);
            assert!(store.residual_len(seq) > 0, "window unsealed mid-run");
            prep(&mut store, seq);
            store.evict(seq);
            assert_eq!(store.free_pages(), free_before, "scenario {i} leaked pages");
            assert_eq!(store.resident(), 0);
        }
    }

    #[test]
    fn swap_round_trip_is_bitwise_and_frees_pages_between() {
        for page_tokens in [1, 7, 48, 64, 300] {
            let mut store = PagedKvStore::new(cfg(16), 2, 2048, page_tokens);
            let free_before = store.free_pages();
            let seq = store.admit(300).unwrap();
            let cache = mirrored_appends(&mut store, seq, 128 * 2 + 37, 0);
            let held = free_before - store.free_pages();
            let bytes = store.seq_bytes(seq);

            let blob = store.swap_out(seq).unwrap();
            assert_eq!(store.free_pages(), free_before, "swap-out frees all pages");
            assert_eq!(store.resident(), 0);
            assert_eq!(blob.host_bytes(), bytes);
            assert_eq!(blob.pages_needed(page_tokens), held);
            assert!(store.swap_out(seq).is_err(), "already swapped out");

            let seq2 = store.swap_in(&blob).unwrap();
            assert_ne!(seq2, seq, "ids are never reused");
            assert!(
                store.matches_cache(seq2, &cache, 0),
                "page_tokens={page_tokens}: swap round trip not bitwise"
            );
            // The restored sequence keeps its full reservation: appends
            // up to the original budget stay infallible.
            let k = row(16, 2000, 0);
            store
                .append_step(
                    seq2,
                    &[k.clone(), k.clone()],
                    &[k.clone(), k],
                    &ReferenceCodec,
                )
                .unwrap();
        }
    }

    #[test]
    fn swap_in_oom_is_clean_and_burns_nothing() {
        let mut store = PagedKvStore::new(cfg(16), 1, 8, 32);
        let seq = store.admit(128).unwrap(); // 4 pages
        let cache = mirrored_appends(&mut store, seq, 100, 0);
        let blob = store.swap_out(seq).unwrap();
        // Occupy too many pages for the blob to come back.
        let hog = store.admit(192).unwrap(); // 6 of 8 pages
        let err = store.swap_in(&blob).unwrap_err();
        assert_eq!(err.requested, 4);
        assert_eq!(err.free, 2);
        store.evict(hog);
        // The failed swap-in burned no id and left the blob reusable.
        let back = store.swap_in(&blob).unwrap();
        assert_eq!(back.0, hog.0 + 1);
        assert!(store.matches_cache(back, &cache, 0));
    }

    #[test]
    fn swapped_sequences_preserve_sealed_state() {
        let mut store = PagedKvStore::new(cfg(16), 1, 8, 32);
        let seq = store.admit(64).unwrap();
        mirrored_appends(&mut store, seq, 20, 0);
        store.seal(seq).unwrap();
        let blob = store.swap_out(seq).unwrap();
        let back = store.swap_in(&blob).unwrap();
        let k = row(16, 0, 0);
        assert!(matches!(
            store.append_step(
                back,
                std::slice::from_ref(&k),
                std::slice::from_ref(&k),
                &ReferenceCodec
            ),
            Err(StoreError::Sealed(_))
        ));
    }

    #[test]
    fn block_straddling_pages_stays_homed_on_first_token_page() {
        // Nr = 128, page_tokens = 48: block 0 covers tokens 0..128, homed on
        // page table[0]; block 1 covers 128..256, starts at offset 32 of
        // table[2].
        let mut store = PagedKvStore::new(cfg(16), 1, 32, 48);
        let seq = store.admit(0).unwrap();
        let cache = mirrored_appends(&mut store, seq, 256, 0);
        assert!(store.matches_cache(seq, &cache, 0));
        assert_eq!(store.packed_blocks(seq, 0).len(), 2);
        let table = store.pool().table(seq).unwrap().to_vec();
        assert_eq!(table.len(), 6); // ceil(256/48)
        assert_eq!(store.seq_bytes(seq), cache.total_bytes());
    }
}
