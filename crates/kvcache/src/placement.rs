//! The device/placement layer: which simulated accelerator owns which KV
//! head.
//!
//! Long-context serving outgrows a single device's memory even at 2-bit
//! (the KVQuant observation), so the KV cache and its attention work must
//! shard. BitDecoding-RS shards **tensor-parallel along KV heads**: every
//! head's full token history lives on exactly one device, so each
//! `(sequence, kv-head)` attention unit runs entirely locally and only the
//! per-head softmax partials — the `(m, l, unnormalized O)` triple of
//! [`bd-core`'s `OnlineSoftmax`] — cross the interconnect in the per-step
//! all-reduce. A [`Placement`] is the pure function from global head index
//! to `(device, local head slot)`; the sharded store
//! ([`crate::sharded::ShardedKvStore`]) and the serve scheduler both
//! consult it, so storage and compute can never disagree about ownership.

use std::fmt;

/// A simulated device (GPU) identifier within a placement.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DeviceId(pub u32);

impl fmt::Display for DeviceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "dev{}", self.0)
    }
}

/// How KV heads are assigned to devices.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Partitioning {
    /// Head `h` lives on device `h mod N` (round-robin; balances head
    /// counts for any `N`).
    HeadModulo,
    /// Heads are split into `N` contiguous ranges (the classic
    /// tensor-parallel column split; devices `0..heads mod N` take one
    /// extra head when the division is uneven).
    HeadContiguous,
}

impl fmt::Display for Partitioning {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Partitioning::HeadModulo => write!(f, "head-modulo"),
            Partitioning::HeadContiguous => write!(f, "head-contiguous"),
        }
    }
}

/// A concrete assignment of `heads` KV heads to `devices` devices.
///
/// Requested device counts above the head count are clamped: a device with
/// zero heads would hold no data and do no work, so it is physically
/// equivalent to not existing. Both partitionings are **deterministic pure
/// functions** — placement never depends on runtime state, which is what
/// keeps N-device serve runs bitwise-reproducible.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Placement {
    devices: usize,
    partitioning: Partitioning,
    heads: usize,
}

impl Placement {
    /// Builds a placement of `heads` KV heads over `devices` devices
    /// (clamped to `1..=heads`).
    ///
    /// # Panics
    ///
    /// Panics if `heads` or `devices` is zero.
    pub fn new(devices: usize, partitioning: Partitioning, heads: usize) -> Self {
        assert!(heads > 0, "placement needs at least one KV head");
        assert!(devices > 0, "placement needs at least one device");
        Placement {
            devices: devices.min(heads),
            partitioning,
            heads,
        }
    }

    /// The trivial single-device placement.
    pub fn single(heads: usize) -> Self {
        Placement::new(1, Partitioning::HeadContiguous, heads)
    }

    /// Devices in the placement (after clamping).
    pub fn devices(&self) -> usize {
        self.devices
    }

    /// The partitioning rule.
    pub fn partitioning(&self) -> Partitioning {
        self.partitioning
    }

    /// Total KV heads placed.
    pub fn heads(&self) -> usize {
        self.heads
    }

    /// First head of device `d`'s contiguous range and the range length.
    /// Devices `0..heads % N` take `ceil(heads / N)` heads, the rest take
    /// `floor(heads / N)`.
    fn contiguous_range(&self, d: usize) -> (usize, usize) {
        let base = self.heads / self.devices;
        let rem = self.heads % self.devices;
        let len = base + usize::from(d < rem);
        let start = d * base + d.min(rem);
        (start, len)
    }

    /// The device owning global head `head`.
    ///
    /// # Panics
    ///
    /// Panics if `head` is out of range.
    pub fn device_of(&self, head: usize) -> DeviceId {
        assert!(head < self.heads, "head {head} beyond {}", self.heads);
        let d = match self.partitioning {
            Partitioning::HeadModulo => head % self.devices,
            Partitioning::HeadContiguous => {
                let base = self.heads / self.devices;
                let rem = self.heads % self.devices;
                let boundary = rem * (base + 1);
                if head < boundary {
                    head / (base + 1)
                } else {
                    rem + (head - boundary) / base
                }
            }
        };
        DeviceId(d as u32)
    }

    /// The head's slot index within its owning device's local store.
    ///
    /// # Panics
    ///
    /// Panics if `head` is out of range.
    pub fn local_index(&self, head: usize) -> usize {
        assert!(head < self.heads, "head {head} beyond {}", self.heads);
        match self.partitioning {
            Partitioning::HeadModulo => head / self.devices,
            Partitioning::HeadContiguous => {
                let d = self.device_of(head).0 as usize;
                head - self.contiguous_range(d).0
            }
        }
    }

    /// Number of heads resident on device `d`.
    ///
    /// # Panics
    ///
    /// Panics if `d` is out of range.
    pub fn heads_on(&self, d: DeviceId) -> usize {
        let d = d.0 as usize;
        assert!(d < self.devices, "device {d} beyond {}", self.devices);
        match self.partitioning {
            Partitioning::HeadModulo => {
                self.heads / self.devices + usize::from(d < self.heads % self.devices)
            }
            Partitioning::HeadContiguous => self.contiguous_range(d).1,
        }
    }

    /// Iterates the global head indices resident on device `d`, in local
    /// slot order.
    pub fn heads_of(&self, d: DeviceId) -> Vec<usize> {
        (0..self.heads)
            .filter(|&h| self.device_of(h) == d)
            .collect()
    }
}

impl fmt::Display for Placement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} heads over {} devices ({})",
            self.heads, self.devices, self.partitioning
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn placement_is_a_partition_for_all_shapes() {
        for heads in 1..=12 {
            for devices in 1..=10 {
                for p in [Partitioning::HeadModulo, Partitioning::HeadContiguous] {
                    let pl = Placement::new(devices, p, heads);
                    assert!(pl.devices() <= heads, "clamped");
                    let mut per_device = vec![0usize; pl.devices()];
                    for h in 0..heads {
                        let d = pl.device_of(h);
                        let local = pl.local_index(h);
                        assert!(local < pl.heads_on(d), "{p:?} h={h}");
                        per_device[d.0 as usize] += 1;
                    }
                    for (d, &count) in per_device.iter().enumerate() {
                        assert_eq!(
                            count,
                            pl.heads_on(DeviceId(d as u32)),
                            "{p:?} heads={heads} devices={devices} d={d}"
                        );
                        assert!(count > 0, "no empty devices after clamping");
                    }
                    // Local indices are a bijection per device.
                    for d in 0..pl.devices() {
                        let d = DeviceId(d as u32);
                        let heads_of = pl.heads_of(d);
                        let locals: Vec<usize> =
                            heads_of.iter().map(|&h| pl.local_index(h)).collect();
                        let want: Vec<usize> = (0..pl.heads_on(d)).collect();
                        assert_eq!(locals, want, "{p:?} {d} local order");
                    }
                }
            }
        }
    }

    #[test]
    fn modulo_round_robins() {
        let pl = Placement::new(3, Partitioning::HeadModulo, 8);
        let devs: Vec<u32> = (0..8).map(|h| pl.device_of(h).0).collect();
        assert_eq!(devs, vec![0, 1, 2, 0, 1, 2, 0, 1]);
        assert_eq!(pl.local_index(7), 2);
        assert_eq!(pl.heads_on(DeviceId(0)), 3);
        assert_eq!(pl.heads_on(DeviceId(2)), 2);
    }

    #[test]
    fn contiguous_splits_ranges() {
        let pl = Placement::new(3, Partitioning::HeadContiguous, 8);
        let devs: Vec<u32> = (0..8).map(|h| pl.device_of(h).0).collect();
        assert_eq!(devs, vec![0, 0, 0, 1, 1, 1, 2, 2]);
        assert_eq!(pl.local_index(3), 0);
        assert_eq!(pl.local_index(7), 1);
    }

    #[test]
    fn oversized_device_count_is_clamped() {
        let pl = Placement::new(8, Partitioning::HeadModulo, 2);
        assert_eq!(pl.devices(), 2);
        assert_eq!(pl.device_of(1), DeviceId(1));
    }

    #[test]
    fn single_is_one_device() {
        let pl = Placement::single(5);
        assert_eq!(pl.devices(), 1);
        for h in 0..5 {
            assert_eq!(pl.device_of(h), DeviceId(0));
            assert_eq!(pl.local_index(h), h);
        }
    }
}
