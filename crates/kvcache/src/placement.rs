//! The device/placement layer: which simulated accelerator owns which KV
//! head.
//!
//! Long-context serving outgrows a single device's memory even at 2-bit
//! (the KVQuant observation), so the KV cache and its attention work must
//! shard. BitDecoding-RS shards **tensor-parallel along KV heads**: every
//! head's full token history lives on exactly one device, so each
//! `(sequence, kv-head)` attention unit runs entirely locally and only the
//! per-head softmax partials — the `(m, l, unnormalized O)` triple of
//! [`bd-core`'s `OnlineSoftmax`] — cross the interconnect in the per-step
//! all-reduce. A [`Placement`] is the pure function from global head index
//! to `(device, local head slot)`; the sharded store
//! ([`crate::sharded::ShardedKvStore`]) and the serve scheduler both
//! consult it, so storage and compute can never disagree about ownership.

use std::fmt;

/// A simulated device (GPU) identifier within a placement.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DeviceId(pub u32);

impl fmt::Display for DeviceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "dev{}", self.0)
    }
}

/// How KV heads are assigned to devices.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Partitioning {
    /// Head `h` lives on device `h mod N` (round-robin; balances head
    /// counts for any `N`).
    HeadModulo,
    /// Heads are split into `N` contiguous ranges (the classic
    /// tensor-parallel column split; devices `0..heads mod N` take one
    /// extra head when the division is uneven).
    HeadContiguous,
    /// Heads are split into `N` contiguous ranges whose sizes are
    /// proportional to per-device throughput weights (heterogeneous
    /// fleets: a faster device takes more heads). Built with
    /// [`Placement::weighted`]; [`Placement::new`] under this variant
    /// uses equal weights, which degenerates to [`Partitioning::HeadContiguous`]'s
    /// head counts.
    Weighted,
}

impl fmt::Display for Partitioning {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Partitioning::HeadModulo => write!(f, "head-modulo"),
            Partitioning::HeadContiguous => write!(f, "head-contiguous"),
            Partitioning::Weighted => write!(f, "weighted"),
        }
    }
}

/// A concrete assignment of `heads` KV heads to `devices` devices.
///
/// Requested device counts above the head count are clamped: a device with
/// zero heads would hold no data and do no work, so it is physically
/// equivalent to not existing. All partitionings are **deterministic pure
/// functions** — placement never depends on runtime state, which is what
/// keeps N-device serve runs bitwise-reproducible. Weighted placements
/// carry their apportioned range boundaries, so equal boundaries compare
/// and hash equal regardless of which weight vector produced them.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Placement {
    devices: usize,
    partitioning: Partitioning,
    heads: usize,
    /// Contiguous-range boundaries for [`Partitioning::Weighted`]:
    /// device `d` owns heads `bounds[d]..bounds[d + 1]`. Empty for the
    /// closed-form partitionings.
    bounds: Vec<usize>,
}

impl Placement {
    /// Builds a placement of `heads` KV heads over `devices` devices
    /// (clamped to `1..=heads`). Under [`Partitioning::Weighted`] every
    /// device gets equal weight; use [`Placement::weighted`] to supply a
    /// throughput-derived weight vector.
    ///
    /// # Panics
    ///
    /// Panics if `heads` or `devices` is zero.
    pub fn new(devices: usize, partitioning: Partitioning, heads: usize) -> Self {
        assert!(heads > 0, "placement needs at least one KV head");
        assert!(devices > 0, "placement needs at least one device");
        if partitioning == Partitioning::Weighted {
            return Placement::weighted(&vec![1.0; devices], heads);
        }
        Placement {
            devices: devices.min(heads),
            partitioning,
            heads,
            bounds: Vec::new(),
        }
    }

    /// Builds a [`Partitioning::Weighted`] placement: `heads` KV heads
    /// split into one contiguous range per device, range sizes
    /// proportional to `weights` (a device's modeled throughput). The
    /// apportionment is the highest-averages (D'Hondt) rule: every device
    /// starts at one head and each remaining head goes to the device with
    /// the largest `weight / heads_assigned` ratio (ties to the lowest
    /// device index), so every head is covered exactly once, every device
    /// keeps at least one head, and the split is deterministic in the
    /// weight vector.
    ///
    /// Device counts above the head count are clamped by dropping
    /// trailing devices, mirroring [`Placement::new`]. Non-finite or
    /// non-positive weights are treated as `1.0` — a degenerate
    /// measurement must not silence a device entirely.
    ///
    /// # Panics
    ///
    /// Panics if `heads` is zero or `weights` is empty.
    pub fn weighted(weights: &[f64], heads: usize) -> Self {
        assert!(heads > 0, "placement needs at least one KV head");
        assert!(!weights.is_empty(), "placement needs at least one device");
        let devices = weights.len().min(heads);
        let w: Vec<f64> = weights[..devices]
            .iter()
            .map(|&w| if w.is_finite() && w > 0.0 { w } else { 1.0 })
            .collect();
        let mut counts = vec![1usize; devices];
        for _ in devices..heads {
            let mut best = 0usize;
            let mut best_score = w[0] / counts[0] as f64;
            for (d, &wd) in w.iter().enumerate().skip(1) {
                let score = wd / counts[d] as f64;
                if score > best_score {
                    best = d;
                    best_score = score;
                }
            }
            counts[best] += 1;
        }
        let mut bounds = Vec::with_capacity(devices + 1);
        let mut acc = 0usize;
        bounds.push(0);
        for c in counts {
            acc += c;
            bounds.push(acc);
        }
        debug_assert_eq!(acc, heads);
        Placement {
            devices,
            partitioning: Partitioning::Weighted,
            heads,
            bounds,
        }
    }

    /// The trivial single-device placement.
    pub fn single(heads: usize) -> Self {
        Placement::new(1, Partitioning::HeadContiguous, heads)
    }

    /// Devices in the placement (after clamping).
    pub fn devices(&self) -> usize {
        self.devices
    }

    /// The partitioning rule.
    pub fn partitioning(&self) -> Partitioning {
        self.partitioning
    }

    /// Total KV heads placed.
    pub fn heads(&self) -> usize {
        self.heads
    }

    /// First head of device `d`'s contiguous range and the range length.
    /// Devices `0..heads % N` take `ceil(heads / N)` heads, the rest take
    /// `floor(heads / N)`.
    fn contiguous_range(&self, d: usize) -> (usize, usize) {
        let base = self.heads / self.devices;
        let rem = self.heads % self.devices;
        let len = base + usize::from(d < rem);
        let start = d * base + d.min(rem);
        (start, len)
    }

    /// The device owning global head `head`.
    ///
    /// # Panics
    ///
    /// Panics if `head` is out of range.
    pub fn device_of(&self, head: usize) -> DeviceId {
        assert!(head < self.heads, "head {head} beyond {}", self.heads);
        let d = match self.partitioning {
            Partitioning::HeadModulo => head % self.devices,
            Partitioning::HeadContiguous => {
                let base = self.heads / self.devices;
                let rem = self.heads % self.devices;
                let boundary = rem * (base + 1);
                if head < boundary {
                    head / (base + 1)
                } else {
                    rem + (head - boundary) / base
                }
            }
            // `partition_point` finds the first boundary beyond `head`;
            // its predecessor's index is the owning range.
            Partitioning::Weighted => self.bounds.partition_point(|&b| b <= head) - 1,
        };
        DeviceId(d as u32)
    }

    /// The head's slot index within its owning device's local store.
    ///
    /// # Panics
    ///
    /// Panics if `head` is out of range.
    pub fn local_index(&self, head: usize) -> usize {
        assert!(head < self.heads, "head {head} beyond {}", self.heads);
        match self.partitioning {
            Partitioning::HeadModulo => head / self.devices,
            Partitioning::HeadContiguous => {
                let d = self.device_of(head).0 as usize;
                head - self.contiguous_range(d).0
            }
            Partitioning::Weighted => {
                let d = self.device_of(head).0 as usize;
                head - self.bounds[d]
            }
        }
    }

    /// Number of heads resident on device `d`.
    ///
    /// # Panics
    ///
    /// Panics if `d` is out of range.
    pub fn heads_on(&self, d: DeviceId) -> usize {
        let d = d.0 as usize;
        assert!(d < self.devices, "device {d} beyond {}", self.devices);
        match self.partitioning {
            Partitioning::HeadModulo => {
                self.heads / self.devices + usize::from(d < self.heads % self.devices)
            }
            Partitioning::HeadContiguous => self.contiguous_range(d).1,
            Partitioning::Weighted => self.bounds[d + 1] - self.bounds[d],
        }
    }

    /// Iterates the global head indices resident on device `d`, in local
    /// slot order.
    pub fn heads_of(&self, d: DeviceId) -> Vec<usize> {
        (0..self.heads)
            .filter(|&h| self.device_of(h) == d)
            .collect()
    }
}

impl fmt::Display for Placement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} heads over {} devices ({})",
            self.heads, self.devices, self.partitioning
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn placement_is_a_partition_for_all_shapes() {
        for heads in 1..=12 {
            for devices in 1..=10 {
                for p in [
                    Partitioning::HeadModulo,
                    Partitioning::HeadContiguous,
                    Partitioning::Weighted,
                ] {
                    let pl = Placement::new(devices, p, heads);
                    assert!(pl.devices() <= heads, "clamped");
                    let mut per_device = vec![0usize; pl.devices()];
                    for h in 0..heads {
                        let d = pl.device_of(h);
                        let local = pl.local_index(h);
                        assert!(local < pl.heads_on(d), "{p:?} h={h}");
                        per_device[d.0 as usize] += 1;
                    }
                    for (d, &count) in per_device.iter().enumerate() {
                        assert_eq!(
                            count,
                            pl.heads_on(DeviceId(d as u32)),
                            "{p:?} heads={heads} devices={devices} d={d}"
                        );
                        assert!(count > 0, "no empty devices after clamping");
                    }
                    // Local indices are a bijection per device.
                    for d in 0..pl.devices() {
                        let d = DeviceId(d as u32);
                        let heads_of = pl.heads_of(d);
                        let locals: Vec<usize> =
                            heads_of.iter().map(|&h| pl.local_index(h)).collect();
                        let want: Vec<usize> = (0..pl.heads_on(d)).collect();
                        assert_eq!(locals, want, "{p:?} {d} local order");
                    }
                }
            }
        }
    }

    #[test]
    fn modulo_round_robins() {
        let pl = Placement::new(3, Partitioning::HeadModulo, 8);
        let devs: Vec<u32> = (0..8).map(|h| pl.device_of(h).0).collect();
        assert_eq!(devs, vec![0, 1, 2, 0, 1, 2, 0, 1]);
        assert_eq!(pl.local_index(7), 2);
        assert_eq!(pl.heads_on(DeviceId(0)), 3);
        assert_eq!(pl.heads_on(DeviceId(2)), 2);
    }

    #[test]
    fn contiguous_splits_ranges() {
        let pl = Placement::new(3, Partitioning::HeadContiguous, 8);
        let devs: Vec<u32> = (0..8).map(|h| pl.device_of(h).0).collect();
        assert_eq!(devs, vec![0, 0, 0, 1, 1, 1, 2, 2]);
        assert_eq!(pl.local_index(3), 0);
        assert_eq!(pl.local_index(7), 1);
    }

    #[test]
    fn oversized_device_count_is_clamped() {
        let pl = Placement::new(8, Partitioning::HeadModulo, 2);
        assert_eq!(pl.devices(), 2);
        assert_eq!(pl.device_of(1), DeviceId(1));
    }

    #[test]
    fn weighted_ranges_follow_weights() {
        // 16 heads over [fast, fast, slow, slow] at a 2:1 ratio: the fast
        // pair takes 5 heads each, the slow pair 3 — D'Hondt on 2:2:1:1.
        let pl = Placement::weighted(&[2.0, 2.0, 1.0, 1.0], 16);
        assert_eq!(pl.partitioning(), Partitioning::Weighted);
        let counts: Vec<usize> = (0..4).map(|d| pl.heads_on(DeviceId(d))).collect();
        assert_eq!(counts, vec![5, 5, 3, 3]);
        // Ranges are contiguous and local indices start at zero.
        assert_eq!(pl.device_of(0), DeviceId(0));
        assert_eq!(pl.device_of(4), DeviceId(0));
        assert_eq!(pl.device_of(5), DeviceId(1));
        assert_eq!(pl.device_of(10), DeviceId(2));
        assert_eq!(pl.device_of(15), DeviceId(3));
        assert_eq!(pl.local_index(10), 0);
        assert_eq!(pl.local_index(15), 2);
    }

    #[test]
    fn weighted_equal_weights_match_contiguous_counts() {
        for heads in 1..=12 {
            for devices in 1..=8 {
                let w = Placement::new(devices, Partitioning::Weighted, heads);
                let c = Placement::new(devices, Partitioning::HeadContiguous, heads);
                assert_eq!(w.devices(), c.devices());
                for d in 0..w.devices() {
                    assert_eq!(
                        w.heads_on(DeviceId(d as u32)),
                        c.heads_on(DeviceId(d as u32)),
                        "heads={heads} devices={devices} d={d}"
                    );
                }
            }
        }
    }

    #[test]
    fn weighted_sanitizes_degenerate_weights() {
        // NaN, infinite, zero, and negative weights all count as 1.0, so
        // no device is silenced and the split stays a partition.
        let pl = Placement::weighted(&[f64::NAN, f64::INFINITY, 0.0, -3.0], 8);
        for d in 0..4 {
            assert_eq!(pl.heads_on(DeviceId(d)), 2);
        }
    }

    #[test]
    fn weighted_clamps_to_head_count() {
        let pl = Placement::weighted(&[1.0, 5.0, 2.0, 4.0, 3.0], 3);
        assert_eq!(pl.devices(), 3);
        let total: usize = (0..3).map(|d| pl.heads_on(DeviceId(d))).sum();
        assert_eq!(total, 3);
    }

    #[test]
    fn single_is_one_device() {
        let pl = Placement::single(5);
        assert_eq!(pl.devices(), 1);
        for h in 0..5 {
            assert_eq!(pl.device_of(h), DeviceId(0));
            assert_eq!(pl.local_index(h), h);
        }
    }
}
