//! Flat, contiguous token-matrix storage — the hot-path value container.
//!
//! # Flat-layout invariants
//!
//! [`TokenMatrix`] replaces the historical `Vec<Vec<f32>>` representation
//! with one contiguous row-major buffer. Every producer and consumer in the
//! workspace relies on these invariants:
//!
//! * **Token-major order**: row `t` (one token's channels) occupies
//!   `data[t * dim .. (t + 1) * dim]`. This is exactly the orientation the
//!   fused decode kernel's `Q·Kᵀ` row-dot and `P·V` accumulation consume,
//!   so decoded blocks never need a transpose round-trip.
//! * **Fixed width**: `dim` is fixed at construction (or adopted from the
//!   first pushed row); `data.len()` is always a multiple of `dim`.
//! * **No per-row allocation**: growing by one token (`push_row`) extends
//!   the single backing `Vec<f32>` — the residual region of the cache grows
//!   amortized-O(dim) per decode step with no heap churn per token.
//!
//! Callers that still traffic in nested `Vec<Vec<f32>>` (tests, accuracy
//! harnesses, examples) interoperate through [`TokenRows`], the read-only
//! row-view trait implemented for both representations, plus the
//! `From`/`FromIterator` conversions.

use std::ops::{Index, IndexMut, Range};

/// Values for one block of tokens in flat row-major storage:
/// row `t` = `data[t * dim .. (t + 1) * dim]`, channel `c` at offset `c`.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TokenMatrix {
    data: Vec<f32>,
    dim: usize,
}

impl TokenMatrix {
    /// An empty matrix that will hold `dim`-channel tokens.
    pub fn new(dim: usize) -> Self {
        TokenMatrix {
            data: Vec::new(),
            dim,
        }
    }

    /// An empty matrix with capacity reserved for `tokens` rows.
    pub fn with_capacity(tokens: usize, dim: usize) -> Self {
        TokenMatrix {
            data: Vec::with_capacity(tokens * dim),
            dim,
        }
    }

    /// A zero-filled `tokens × dim` matrix.
    pub fn zeros(tokens: usize, dim: usize) -> Self {
        TokenMatrix {
            data: vec![0.0; tokens * dim],
            dim,
        }
    }

    /// Wraps an existing flat row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` is not a multiple of `dim`.
    pub fn from_flat(data: Vec<f32>, dim: usize) -> Self {
        assert!(
            dim > 0 && data.len().is_multiple_of(dim),
            "flat buffer of {} values does not tile by dim {dim}",
            data.len()
        );
        TokenMatrix { data, dim }
    }

    /// Builds from a generator over `(token, channel)`.
    pub fn from_fn(tokens: usize, dim: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut m = TokenMatrix::with_capacity(tokens, dim);
        for t in 0..tokens {
            for c in 0..dim {
                m.data.push(f(t, c));
            }
        }
        m
    }

    /// Number of tokens (rows).
    pub fn tokens(&self) -> usize {
        self.data.len().checked_div(self.dim).unwrap_or(0)
    }

    /// Number of tokens — alias kept for `Vec`-era call sites.
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&self) -> usize {
        self.tokens()
    }

    /// `true` when no tokens are stored.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Channels per token (0 until the first row fixes it).
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// One token's channels.
    pub fn row(&self, t: usize) -> &[f32] {
        &self.data[t * self.dim..(t + 1) * self.dim]
    }

    /// One token's channels, mutably.
    pub fn row_mut(&mut self, t: usize) -> &mut [f32] {
        &mut self.data[t * self.dim..(t + 1) * self.dim]
    }

    /// Appends one token row.
    ///
    /// An empty matrix constructed with `dim == 0` adopts the first row's
    /// width; afterwards every row must match.
    ///
    /// # Panics
    ///
    /// Panics on a row-width mismatch.
    pub fn push_row(&mut self, row: &[f32]) {
        if self.dim == 0 && self.data.is_empty() {
            self.dim = row.len();
        }
        assert_eq!(row.len(), self.dim, "row width mismatch");
        self.data.extend_from_slice(row);
    }

    /// Appends all rows of another matrix.
    ///
    /// # Panics
    ///
    /// Panics on a width mismatch (unless `self` is empty).
    pub fn extend_rows(&mut self, other: &TokenMatrix) {
        if other.is_empty() {
            return;
        }
        if self.dim == 0 && self.data.is_empty() {
            self.dim = other.dim;
        }
        assert_eq!(other.dim, self.dim, "matrix width mismatch");
        self.data.extend_from_slice(&other.data);
    }

    /// A copy of the token range `r` as a new matrix.
    pub fn slice_rows(&self, r: Range<usize>) -> TokenMatrix {
        TokenMatrix {
            data: self.data[r.start * self.dim..r.end * self.dim].to_vec(),
            dim: self.dim,
        }
    }

    /// Iterates over token rows as slices.
    pub fn iter(&self) -> std::slice::ChunksExact<'_, f32> {
        self.data.chunks_exact(self.dim.max(1))
    }

    /// Iterates over token rows as mutable slices.
    pub fn iter_mut(&mut self) -> std::slice::ChunksExactMut<'_, f32> {
        self.data.chunks_exact_mut(self.dim.max(1))
    }

    /// The whole backing buffer in row-major order.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// The whole backing buffer, mutably.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes into the backing buffer.
    pub fn into_flat(self) -> Vec<f32> {
        self.data
    }

    /// Removes all tokens, keeping the width and capacity.
    pub fn clear(&mut self) {
        self.data.clear();
    }

    /// Reshapes to `tokens × dim`, reusing the backing allocation.
    /// Newly exposed elements are zeroed; existing ones keep their values
    /// (callers that scatter into every slot may ignore them).
    pub fn resize_tokens(&mut self, tokens: usize, dim: usize) {
        self.dim = dim;
        self.data.resize(tokens * dim, 0.0);
    }

    /// Converts to the legacy nested representation (test/compat use only —
    /// this allocates one `Vec` per token).
    pub fn to_rows(&self) -> Vec<Vec<f32>> {
        self.iter().map(<[f32]>::to_vec).collect()
    }
}

impl Index<usize> for TokenMatrix {
    type Output = [f32];
    fn index(&self, t: usize) -> &[f32] {
        self.row(t)
    }
}

impl IndexMut<usize> for TokenMatrix {
    fn index_mut(&mut self, t: usize) -> &mut [f32] {
        self.row_mut(t)
    }
}

impl FromIterator<Vec<f32>> for TokenMatrix {
    fn from_iter<I: IntoIterator<Item = Vec<f32>>>(iter: I) -> Self {
        let mut m = TokenMatrix::new(0);
        for row in iter {
            m.push_row(&row);
        }
        m
    }
}

impl From<Vec<Vec<f32>>> for TokenMatrix {
    fn from(rows: Vec<Vec<f32>>) -> Self {
        rows.into_iter().collect()
    }
}

impl From<&[Vec<f32>]> for TokenMatrix {
    fn from(rows: &[Vec<f32>]) -> Self {
        let mut m = TokenMatrix::new(0);
        for row in rows {
            m.push_row(row);
        }
        m
    }
}

impl<'a> IntoIterator for &'a TokenMatrix {
    type Item = &'a [f32];
    type IntoIter = std::slice::ChunksExact<'a, f32>;
    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

impl<'a> IntoIterator for &'a mut TokenMatrix {
    type Item = &'a mut [f32];
    type IntoIter = std::slice::ChunksExactMut<'a, f32>;
    fn into_iter(self) -> Self::IntoIter {
        self.iter_mut()
    }
}

/// Read-only row view over any token-matrix representation.
///
/// The flat [`TokenMatrix`] is the hot-path type; nested `Vec<Vec<f32>>`
/// (tests, examples, accuracy harnesses) remains accepted at API
/// boundaries through this trait.
pub trait TokenRows {
    /// Number of tokens.
    fn token_count(&self) -> usize;
    /// Channels per token (0 for an empty matrix of unknown width).
    fn token_dim(&self) -> usize;
    /// One token's channels.
    fn token_row(&self, t: usize) -> &[f32];
}

impl TokenRows for TokenMatrix {
    fn token_count(&self) -> usize {
        self.tokens()
    }
    fn token_dim(&self) -> usize {
        self.dim()
    }
    fn token_row(&self, t: usize) -> &[f32] {
        self.row(t)
    }
}

impl TokenRows for [Vec<f32>] {
    fn token_count(&self) -> usize {
        self.len()
    }
    fn token_dim(&self) -> usize {
        self.first().map_or(0, Vec::len)
    }
    fn token_row(&self, t: usize) -> &[f32] {
        &self[t]
    }
}

impl TokenRows for Vec<Vec<f32>> {
    fn token_count(&self) -> usize {
        self.len()
    }
    fn token_dim(&self) -> usize {
        self.first().map_or(0, Vec::len)
    }
    fn token_row(&self, t: usize) -> &[f32] {
        &self[t]
    }
}

impl<const N: usize> TokenRows for [Vec<f32>; N] {
    fn token_count(&self) -> usize {
        N
    }
    fn token_dim(&self) -> usize {
        self.first().map_or(0, Vec::len)
    }
    fn token_row(&self, t: usize) -> &[f32] {
        &self[t]
    }
}

impl TokenRows for bd_gpu_sim::Tile {
    fn token_count(&self) -> usize {
        self.rows()
    }
    fn token_dim(&self) -> usize {
        self.cols()
    }
    fn token_row(&self, t: usize) -> &[f32] {
        self.row(t)
    }
}

impl<T: TokenRows + ?Sized> TokenRows for &T {
    fn token_count(&self) -> usize {
        (**self).token_count()
    }
    fn token_dim(&self) -> usize {
        (**self).token_dim()
    }
    fn token_row(&self, t: usize) -> &[f32] {
        (**self).token_row(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_layout_round_trips_rows() {
        let rows: Vec<Vec<f32>> = (0..5).map(|t| vec![t as f32, t as f32 + 0.5]).collect();
        let m: TokenMatrix = rows.clone().into();
        assert_eq!(m.tokens(), 5);
        assert_eq!(m.dim(), 2);
        assert_eq!(m.to_rows(), rows);
        assert_eq!(m[3][1], 3.5);
        assert_eq!(m.as_slice()[3 * 2 + 1], 3.5);
    }

    #[test]
    fn push_adopts_width_and_enforces_it() {
        let mut m = TokenMatrix::new(0);
        m.push_row(&[1.0, 2.0, 3.0]);
        assert_eq!(m.dim(), 3);
        m.push_row(&[4.0, 5.0, 6.0]);
        assert_eq!(m.tokens(), 2);
        assert_eq!(m.row(1), &[4.0, 5.0, 6.0]);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn mismatched_row_rejected() {
        let mut m = TokenMatrix::new(4);
        m.push_row(&[0.0; 3]);
    }

    #[test]
    fn slice_and_extend() {
        let m = TokenMatrix::from_fn(6, 2, |t, c| (t * 2 + c) as f32);
        let mid = m.slice_rows(2..4);
        assert_eq!(mid.tokens(), 2);
        assert_eq!(mid.row(0), &[4.0, 5.0]);
        let mut out = TokenMatrix::new(0);
        out.extend_rows(&mid);
        out.extend_rows(&m.slice_rows(0..1));
        assert_eq!(out.tokens(), 3);
        assert_eq!(out.row(2), &[0.0, 1.0]);
    }

    #[test]
    fn iteration_yields_row_slices() {
        let m = TokenMatrix::from_fn(3, 4, |t, c| (t * 4 + c) as f32);
        let sums: Vec<f32> = (&m).into_iter().map(|r| r.iter().sum()).collect();
        assert_eq!(sums, vec![6.0, 22.0, 38.0]);
        let mut m = m;
        for row in &mut m {
            row[0] = -1.0;
        }
        assert_eq!(m[2][0], -1.0);
    }

    #[test]
    fn empty_matrix_is_safe() {
        let m = TokenMatrix::new(0);
        assert!(m.is_empty());
        assert_eq!(m.tokens(), 0);
        assert_eq!(m.iter().count(), 0);
    }

    #[test]
    fn token_rows_unifies_representations() {
        fn total<M: TokenRows + ?Sized>(m: &M) -> f32 {
            (0..m.token_count())
                .flat_map(|t| m.token_row(t).to_vec())
                .sum()
        }
        let nested = vec![vec![1.0f32, 2.0], vec![3.0, 4.0]];
        let flat: TokenMatrix = nested.clone().into();
        assert_eq!(total(&nested), total(&flat));
        assert_eq!(nested.token_dim(), flat.token_dim());
    }
}
