//! Property-based tests for cache containers and codecs.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use bd_kvcache::*;
use bd_lowbit::BitWidth;
use proptest::prelude::*;

fn matrix(tokens: usize, dim: usize, seed: u64) -> TokenMatrix {
    let mut s = seed | 1;
    (0..tokens)
        .map(|_| {
            (0..dim)
                .map(|_| {
                    s = s
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    ((s >> 40) as i32 % 1000) as f32 / 125.0 - 4.0
                })
                .collect()
        })
        .collect()
}

fn arb_scheme() -> impl Strategy<Value = QuantScheme> {
    prop_oneof![
        Just(QuantScheme::kc4()),
        Just(QuantScheme::kt4()),
        Just(QuantScheme::kc2()),
        Just(QuantScheme::kt2()),
        Just(QuantScheme::mxfp4()),
        Just(QuantScheme::nvfp4()),
    ]
}

proptest! {
    /// encode → decode reconstruction error is bounded by the scheme's
    /// worst-case step over the data range, for every scheme.
    #[test]
    fn codec_round_trip_error_bounded(scheme in arb_scheme(), seed: u64,
                                      tokens in 1usize..96, dim in 1usize..48) {
        let k = matrix(tokens, dim, seed);
        let v = matrix(tokens, dim, seed ^ 0xABCD);
        let err = reconstruction_error(&ReferenceCodec, &k, &v, scheme);
        // Data range is ±4; worst grid step: INT2 → 8/3, INT4 → 8/15,
        // FP4 → 2×(power-of-two scale ≤ 2).
        let bound = match scheme.int_width() {
            Some(BitWidth::B2) => 8.0 / 3.0 * 0.6 + 0.05,
            Some(BitWidth::B4) => 8.0 / 15.0 * 0.6 + 0.05,
            None => 4.1, // saturating E2M1 with shared block scale
        };
        prop_assert!(err <= bound, "{scheme}: err {err} > {bound}");
    }

    /// The residual region never reaches the block size, and the total
    /// token count is always preserved, under any append/prefill pattern.
    #[test]
    fn cache_length_invariants(prefill_len in 0usize..300, appends in 0usize..300, seed: u64) {
        let cfg = CacheConfig::new(16, QuantScheme::kc4(), PackLayout::sm80_default());
        let mut cache = QuantizedKvCache::new(cfg, 1);
        let nr = cache.residual_block();
        let pre = matrix(prefill_len, 16, seed);
        if prefill_len > 0 {
            cache.prefill(0, &pre, &pre, &ReferenceCodec).unwrap();
        }
        let toks = matrix(appends, 16, seed ^ 99);
        for row in &toks {
            cache.append_token(0, row, row, &ReferenceCodec).unwrap();
            prop_assert!(cache.residual_len(0) < nr);
        }
        prop_assert_eq!(cache.len(0), prefill_len + appends);
        let packed_tokens: usize = cache.packed_blocks(0).iter().map(|b| b.tokens()).sum();
        prop_assert_eq!(packed_tokens + cache.residual_len(0), prefill_len + appends);
        prop_assert_eq!(packed_tokens % nr, 0);
    }

    /// logical_kv returns exactly len(head) rows whose values stay within
    /// quantization distance of the originals.
    #[test]
    fn logical_view_is_complete(len in 1usize..280, seed: u64) {
        let cfg = CacheConfig::new(8, QuantScheme::kc4(), PackLayout::sm80_default());
        let mut cache = QuantizedKvCache::new(cfg, 1);
        let k = matrix(len, 8, seed);
        let v = matrix(len, 8, seed ^ 7);
        cache.prefill(0, &k, &v, &ReferenceCodec).unwrap();
        let (dk, dv) = cache.logical_kv(0, &ReferenceCodec);
        prop_assert_eq!(dk.len(), len);
        prop_assert_eq!(dv.len(), len);
        for t in 0..len {
            for c in 0..8 {
                prop_assert!((dk[t][c] - k[t][c]).abs() < 0.5);
                prop_assert!((dv[t][c] - v[t][c]).abs() < 0.5);
            }
        }
    }

    /// Cache memory accounting: packed bytes match the scheme's per-token
    /// cost; compression always beats FP16 once blocks exist.
    #[test]
    fn memory_accounting_consistent(blocks in 1usize..5, tail in 0usize..127) {
        let dim = 64;
        let cfg = CacheConfig::new(dim, QuantScheme::kc4(), PackLayout::sm80_default());
        let mut cache = QuantizedKvCache::new(cfg, 1);
        let len = blocks * cache.residual_block() + tail;
        let k = matrix(len, dim, 5);
        cache.prefill(0, &k, &k, &ReferenceCodec).unwrap();
        let fp16 = len * dim * 2 * 2;
        prop_assert!(cache.total_bytes() < fp16);
        let packed_len = blocks * cache.residual_block();
        let expect_packed = QuantScheme::kc4().bytes_per_token(dim) * packed_len as f64;
        let expect = expect_packed + (tail * dim * 2 * 2) as f64;
        let actual = cache.total_bytes() as f64;
        prop_assert!((actual - expect).abs() / expect < 0.05, "{actual} vs {expect}");
    }

    /// Paged pool conservation: free + allocated always equals the total,
    /// and released pages are reusable.
    #[test]
    fn paged_pool_conserves_pages(ops in prop::collection::vec((0usize..3, 1usize..2048), 1..40)) {
        let mut pool = PagedPool::new(64, 32);
        let mut live: Vec<SeqId> = Vec::new();
        for (op, len) in ops {
            match op {
                0 => {
                    let s = pool.admit();
                    if pool.grow(s, len).is_ok() {
                        live.push(s);
                    } else {
                        pool.release(s);
                    }
                }
                1 if !live.is_empty() => {
                    let s = live.remove(0);
                    pool.release(s);
                }
                _ => {}
            }
            let allocated: usize = live.iter().map(|s| pool.table(*s).unwrap().len()).sum();
            prop_assert_eq!(allocated + pool.free_pages(), pool.total_pages());
        }
    }

    /// Copy-on-write fork lineages: for any page size, fork boundary
    /// flavor (Nr-aligned or mid-residual), divergent append lengths, and
    /// evict/swap interleaving, (1) both lineages stay **bitwise**
    /// contiguous-equivalent — a CoW'd page's bytes are independent of its
    /// sibling's subsequent writes in either direction — and (2) no page
    /// ever leaks: when the last lineage member leaves, every refcount has
    /// returned to zero and the pool is whole again.
    #[test]
    fn fork_lineages_leak_no_pages_and_cow_isolates_bytes(
        page_tokens in 1usize..80,
        prompt in 1usize..300,
        parent_extra in 0usize..150,
        child_extra in 0usize..150,
        boundary_sel in 0usize..3,
        order in 0usize..4,
        seed: u64,
    ) {
        let dim = 8;
        let cfg = CacheConfig::new(dim, QuantScheme::kc4(), PackLayout::sm80_default());
        let nr = cfg.residual_block();
        let row = |t: usize, salt: u64| -> Vec<f32> {
            matrix(1, dim, (t as u64) << 9 ^ salt ^ seed).row(0).to_vec()
        };
        let append = |store: &mut PagedKvStore,
                      seq: SeqId,
                      cache: &mut QuantizedKvCache,
                      t0: usize,
                      n: usize,
                      salt: u64| {
            for t in t0..t0 + n {
                let k = row(t, salt);
                let v = row(t + 100_000, salt);
                store
                    .append_step(seq, std::slice::from_ref(&k), std::slice::from_ref(&v),
                                 &ReferenceCodec)
                    .unwrap();
                cache.append_token(0, &k, &v, &ReferenceCodec).unwrap();
            }
        };
        // Fork at the parent's exact length (residual rows recoverable),
        // at the largest aligned boundary, or at an *earlier* aligned
        // boundary — the last leaves the parent's past-boundary blocks on
        // pages the child shares, exercising frame reclaim after a
        // departure.
        let at = match boundary_sel {
            0 => prompt,
            1 => prompt - prompt % nr,
            _ => (prompt / nr / 2) * nr,
        };
        let budget = prompt + parent_extra + at + child_extra + 82;
        let pages = budget.div_ceil(page_tokens) + 8;
        let mut store = PagedKvStore::new(cfg, 1, pages, page_tokens);
        let total = store.total_pages();

        let parent = store.admit(prompt + parent_extra).unwrap();
        let mut parent_cache = QuantizedKvCache::new(cfg, 1);
        append(&mut store, parent, &mut parent_cache, 0, prompt, 1);
        // The child's ground truth replays only the shared prefix.
        let mut child_cache = QuantizedKvCache::new(cfg, 1);
        {
            let mut scratch = PagedKvStore::new(cfg, 1, pages, page_tokens);
            let s = scratch.admit(at).unwrap();
            append(&mut scratch, s, &mut child_cache, 0, at, 1);
        }
        let child = store.fork(parent, at, at + child_extra).unwrap();
        prop_assert!(store.matches_cache(child, &child_cache, 0), "fork is not the prefix");

        // Divergent continuations through (what was) shared territory.
        append(&mut store, parent, &mut parent_cache, prompt, parent_extra, 2);
        append(&mut store, child, &mut child_cache, at, child_extra, 3);
        prop_assert!(store.matches_cache(parent, &parent_cache, 0), "child leaked into parent");
        prop_assert!(store.matches_cache(child, &child_cache, 0), "parent leaked into child");

        // Interleave departures: evicts and swap round trips in every
        // order, with the survivor decoding on (through any frames it
        // inherits from the departed sibling); survivors must stay bitwise
        // and the pool must end whole.
        let plen = prompt + parent_extra;
        let clen = at + child_extra;
        match order {
            0 => {
                store.evict(parent);
                append(&mut store, child, &mut child_cache, clen, 40, 4);
                prop_assert!(store.matches_cache(child, &child_cache, 0),
                    "departed parent's blocks leaked into the child");
                store.evict(child);
            }
            1 => {
                store.evict(child);
                append(&mut store, parent, &mut parent_cache, plen, 40, 5);
                prop_assert!(store.matches_cache(parent, &parent_cache, 0),
                    "departed child's blocks leaked into the parent");
                store.evict(parent);
            }
            2 => {
                let blob = store.swap_out(child).unwrap();
                append(&mut store, parent, &mut parent_cache, plen, 40, 5);
                prop_assert!(store.matches_cache(parent, &parent_cache, 0));
                let back = store.swap_in(&blob).unwrap();
                prop_assert!(store.matches_cache(back, &child_cache, 0), "swap round trip");
                store.evict(back);
                store.evict(parent);
            }
            _ => {
                // The survivor's continued decode may reclaim inherited
                // frames; the swapped parent must then restore privately
                // (generation bump) and still come back bitwise.
                let blob = store.swap_out(parent).unwrap();
                append(&mut store, child, &mut child_cache, clen, 40, 4);
                prop_assert!(store.matches_cache(child, &child_cache, 0));
                let back = store.swap_in(&blob).unwrap();
                prop_assert!(store.matches_cache(back, &parent_cache, 0),
                    "swapped parent re-shared a reclaimed frame");
                store.evict(back);
                store.evict(child);
            }
        }
        prop_assert_eq!(store.free_pages(), total, "pages leaked (refcount > 0 left behind)");
        prop_assert_eq!(store.sharing_stats().logical_pages, 0);
    }

    /// Prefill partitioning always covers all tokens with an Nr-aligned
    /// packed prefix.
    #[test]
    fn partition_invariants(len in 0usize..1_000_000, nr_pow in 5u32..9) {
        let nr = 1usize << nr_pow;
        let (packed, res) = partition_prefill(len, nr);
        prop_assert_eq!(packed + res, len);
        prop_assert_eq!(packed % nr, 0);
        prop_assert!(res < nr);
    }

    /// Weighted placement is a total partition: for ANY weight vector
    /// (including zero, negative, NaN, and infinite entries) and any head
    /// count, every head maps to exactly one device, local indices are
    /// dense per device, the device count never exceeds
    /// `min(weights.len(), heads)`, and every device owns at least one
    /// head.
    #[test]
    fn weighted_placement_covers_every_head_exactly_once(
        weights in prop::collection::vec(
            prop_oneof![
                0.01f64..1000.0,
                0.01f64..1000.0,
                0.01f64..1000.0,
                Just(0.0),
                Just(-3.5),
                Just(f64::NAN),
                Just(f64::INFINITY),
            ],
            1..9,
        ),
        heads in 1usize..33,
    ) {
        let p = Placement::weighted(&weights, heads);
        prop_assert_eq!(p.heads(), heads);
        prop_assert!(p.devices() <= weights.len().min(heads));
        prop_assert!(p.devices() >= 1);
        let mut counts = vec![0usize; p.devices()];
        for head in 0..heads {
            let d = p.device_of(head);
            prop_assert!((d.0 as usize) < p.devices(), "head {} off fleet", head);
            let local = p.local_index(head);
            prop_assert_eq!(local, counts[d.0 as usize], "head {} local index", head);
            counts[d.0 as usize] += 1;
        }
        for (d, &n) in counts.iter().enumerate() {
            prop_assert!(n >= 1, "device {} owns no head", d);
            prop_assert_eq!(
                n,
                p.heads_on(DeviceId(d as u32)),
                "device {} heads_on disagrees with cover", d
            );
        }
        prop_assert_eq!(counts.iter().sum::<usize>(), heads);
    }

    /// Heavier devices never get fewer heads: weighted apportionment is
    /// monotone in the weights, and equal weights reproduce the
    /// contiguous placement's counts exactly.
    #[test]
    fn weighted_placement_is_monotone_and_degenerates_to_contiguous(
        devices in 1usize..9,
        heads in 1usize..33,
        weights in prop::collection::vec(0.5f64..100.0, 8),
    ) {
        let weights = &weights[..devices];
        let p = Placement::weighted(weights, heads);
        for a in 0..p.devices() {
            for b in 0..p.devices() {
                if weights[a] > weights[b] {
                    prop_assert!(
                        p.heads_on(DeviceId(a as u32)) >= p.heads_on(DeviceId(b as u32)),
                        "device {} (w={}) got fewer heads than {} (w={})",
                        a, weights[a], b, weights[b]
                    );
                }
            }
        }
        let equal = Placement::weighted(&vec![1.0; devices], heads);
        let contiguous = Placement::new(devices, Partitioning::HeadContiguous, heads);
        for d in 0..equal.devices() {
            prop_assert_eq!(
                equal.heads_on(DeviceId(d as u32)),
                contiguous.heads_on(DeviceId(d as u32)),
                "equal-weight counts diverge from contiguous on device {}", d
            );
        }
    }
}
