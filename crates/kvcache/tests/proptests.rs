//! Property-based tests for cache containers and codecs.

use bd_kvcache::*;
use bd_lowbit::BitWidth;
use proptest::prelude::*;

fn matrix(tokens: usize, dim: usize, seed: u64) -> TokenMatrix {
    let mut s = seed | 1;
    (0..tokens)
        .map(|_| {
            (0..dim)
                .map(|_| {
                    s = s
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    ((s >> 40) as i32 % 1000) as f32 / 125.0 - 4.0
                })
                .collect()
        })
        .collect()
}

fn arb_scheme() -> impl Strategy<Value = QuantScheme> {
    prop_oneof![
        Just(QuantScheme::kc4()),
        Just(QuantScheme::kt4()),
        Just(QuantScheme::kc2()),
        Just(QuantScheme::kt2()),
        Just(QuantScheme::mxfp4()),
        Just(QuantScheme::nvfp4()),
    ]
}

proptest! {
    /// encode → decode reconstruction error is bounded by the scheme's
    /// worst-case step over the data range, for every scheme.
    #[test]
    fn codec_round_trip_error_bounded(scheme in arb_scheme(), seed: u64,
                                      tokens in 1usize..96, dim in 1usize..48) {
        let k = matrix(tokens, dim, seed);
        let v = matrix(tokens, dim, seed ^ 0xABCD);
        let err = reconstruction_error(&ReferenceCodec, &k, &v, scheme);
        // Data range is ±4; worst grid step: INT2 → 8/3, INT4 → 8/15,
        // FP4 → 2×(power-of-two scale ≤ 2).
        let bound = match scheme.int_width() {
            Some(BitWidth::B2) => 8.0 / 3.0 * 0.6 + 0.05,
            Some(BitWidth::B4) => 8.0 / 15.0 * 0.6 + 0.05,
            None => 4.1, // saturating E2M1 with shared block scale
        };
        prop_assert!(err <= bound, "{scheme}: err {err} > {bound}");
    }

    /// The residual region never reaches the block size, and the total
    /// token count is always preserved, under any append/prefill pattern.
    #[test]
    fn cache_length_invariants(prefill_len in 0usize..300, appends in 0usize..300, seed: u64) {
        let cfg = CacheConfig::new(16, QuantScheme::kc4(), PackLayout::sm80_default());
        let mut cache = QuantizedKvCache::new(cfg, 1);
        let nr = cache.residual_block();
        let pre = matrix(prefill_len, 16, seed);
        if prefill_len > 0 {
            cache.prefill(0, &pre, &pre, &ReferenceCodec).unwrap();
        }
        let toks = matrix(appends, 16, seed ^ 99);
        for row in &toks {
            cache.append_token(0, row, row, &ReferenceCodec).unwrap();
            prop_assert!(cache.residual_len(0) < nr);
        }
        prop_assert_eq!(cache.len(0), prefill_len + appends);
        let packed_tokens: usize = cache.packed_blocks(0).iter().map(|b| b.tokens()).sum();
        prop_assert_eq!(packed_tokens + cache.residual_len(0), prefill_len + appends);
        prop_assert_eq!(packed_tokens % nr, 0);
    }

    /// logical_kv returns exactly len(head) rows whose values stay within
    /// quantization distance of the originals.
    #[test]
    fn logical_view_is_complete(len in 1usize..280, seed: u64) {
        let cfg = CacheConfig::new(8, QuantScheme::kc4(), PackLayout::sm80_default());
        let mut cache = QuantizedKvCache::new(cfg, 1);
        let k = matrix(len, 8, seed);
        let v = matrix(len, 8, seed ^ 7);
        cache.prefill(0, &k, &v, &ReferenceCodec).unwrap();
        let (dk, dv) = cache.logical_kv(0, &ReferenceCodec);
        prop_assert_eq!(dk.len(), len);
        prop_assert_eq!(dv.len(), len);
        for t in 0..len {
            for c in 0..8 {
                prop_assert!((dk[t][c] - k[t][c]).abs() < 0.5);
                prop_assert!((dv[t][c] - v[t][c]).abs() < 0.5);
            }
        }
    }

    /// Cache memory accounting: packed bytes match the scheme's per-token
    /// cost; compression always beats FP16 once blocks exist.
    #[test]
    fn memory_accounting_consistent(blocks in 1usize..5, tail in 0usize..127) {
        let dim = 64;
        let cfg = CacheConfig::new(dim, QuantScheme::kc4(), PackLayout::sm80_default());
        let mut cache = QuantizedKvCache::new(cfg, 1);
        let len = blocks * cache.residual_block() + tail;
        let k = matrix(len, dim, 5);
        cache.prefill(0, &k, &k, &ReferenceCodec).unwrap();
        let fp16 = len * dim * 2 * 2;
        prop_assert!(cache.total_bytes() < fp16);
        let packed_len = blocks * cache.residual_block();
        let expect_packed = QuantScheme::kc4().bytes_per_token(dim) * packed_len as f64;
        let expect = expect_packed + (tail * dim * 2 * 2) as f64;
        let actual = cache.total_bytes() as f64;
        prop_assert!((actual - expect).abs() / expect < 0.05, "{actual} vs {expect}");
    }

    /// Paged pool conservation: free + allocated always equals the total,
    /// and released pages are reusable.
    #[test]
    fn paged_pool_conserves_pages(ops in prop::collection::vec((0usize..3, 1usize..2048), 1..40)) {
        let mut pool = PagedPool::new(64, 32);
        let mut live: Vec<SeqId> = Vec::new();
        for (op, len) in ops {
            match op {
                0 => {
                    let s = pool.admit();
                    if pool.grow(s, len).is_ok() {
                        live.push(s);
                    } else {
                        pool.release(s);
                    }
                }
                1 if !live.is_empty() => {
                    let s = live.remove(0);
                    pool.release(s);
                }
                _ => {}
            }
            let allocated: usize = live.iter().map(|s| pool.table(*s).unwrap().len()).sum();
            prop_assert_eq!(allocated + pool.free_pages(), pool.total_pages());
        }
    }

    /// Prefill partitioning always covers all tokens with an Nr-aligned
    /// packed prefix.
    #[test]
    fn partition_invariants(len in 0usize..1_000_000, nr_pow in 5u32..9) {
        let nr = 1usize << nr_pow;
        let (packed, res) = partition_prefill(len, nr);
        prop_assert_eq!(packed + res, len);
        prop_assert_eq!(packed % nr, 0);
        prop_assert!(res < nr);
    }
}
