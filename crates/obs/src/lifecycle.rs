//! Per-request lifecycle tracking: submit → admit → first-token →
//! complete, with preemption/resume and fault-recovery episodes
//! attributed to the request they delayed.
//!
//! The tracker turns the serve loop's per-step callbacks into the
//! latency distributions a service operator actually buys:
//!
//! * **TTFT** — time to first token, in scheduler steps and wall seconds;
//! * **TBT** — time between tokens (inter-token gaps after the first);
//! * **queue wait** — submit → first admission, in steps;
//! * **goodput** — per-request generated tokens per wall second, plus an
//!   aggregate over the whole run.
//!
//! One subtlety: fault recovery **replays** steps, re-deriving tokens the
//! stream already delivered. [`LifecycleTracker::on_token`] ignores any
//! token at a step index at or below the request's last counted step, so
//! replays never double-count or produce negative gaps.

use std::collections::BTreeMap;

use crate::hist::LogHistogram;

/// Summary statistics of one distribution. All plain fields so the
/// containing summary stays `Copy`.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Quantiles {
    /// Number of samples.
    pub count: u64,
    /// Median (nearest-rank over quantized samples).
    pub p50: f64,
    /// 90th percentile.
    pub p90: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Exact maximum of raw samples.
    pub max: f64,
    /// Exact mean of raw samples.
    pub mean: f64,
}

impl Quantiles {
    /// Extracts quantiles from a histogram, multiplying every statistic
    /// by `scale` (e.g. `1e-6` to turn microsecond samples into seconds).
    pub fn from_hist(h: &LogHistogram, scale: f64) -> Self {
        Quantiles {
            count: h.count(),
            p50: h.percentile(50.0).unwrap_or(0) as f64 * scale,
            p90: h.percentile(90.0).unwrap_or(0) as f64 * scale,
            p99: h.percentile(99.0).unwrap_or(0) as f64 * scale,
            max: h.max().unwrap_or(0) as f64 * scale,
            mean: h.mean() * scale,
        }
    }
}

/// SLO-level rollup of a serve run. Zeroed when lifecycle tracking is
/// disabled. `Copy` so it can ride inside `ServeSummary`.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct SloSummary {
    /// Requests submitted.
    pub submitted: u64,
    /// Requests admitted at least once.
    pub admitted: u64,
    /// Requests that completed.
    pub completed: u64,
    /// Requests that terminally failed.
    pub failed: u64,
    /// Generated tokens counted (replays excluded).
    pub tokens: u64,
    /// Preemption episodes across all requests.
    pub preemptions: u64,
    /// Resume (re-admission after preemption) episodes.
    pub resumes: u64,
    /// Fault-recovery episodes attributed to requests.
    pub recoveries: u64,
    /// Time to first token, in scheduler steps.
    pub ttft_steps: Quantiles,
    /// Time to first token, in wall seconds.
    pub ttft_s: Quantiles,
    /// Inter-token gap, in scheduler steps.
    pub tbt_steps: Quantiles,
    /// Inter-token gap, in wall seconds.
    pub tbt_s: Quantiles,
    /// Submit → first admission, in scheduler steps.
    pub queue_wait_steps: Quantiles,
    /// Per-request goodput (tokens per wall second), over completed
    /// requests.
    pub goodput_tok_s: Quantiles,
    /// Aggregate goodput: all counted tokens over the wall interval from
    /// first submit to last completion.
    pub aggregate_goodput_tok_s: f64,
}

#[derive(Clone, Debug)]
struct ReqLife {
    submit_step: usize,
    submit_us: f64,
    admitted: bool,
    preempted: bool,
    first_token_step: Option<usize>,
    last_token_step: usize,
    last_token_us: f64,
    tokens: u64,
    done: bool,
}

/// Tracks request lifecycles and aggregates SLO histograms.
#[derive(Clone, Debug, Default)]
pub struct LifecycleTracker {
    enabled: bool,
    reqs: BTreeMap<u64, ReqLife>,
    ttft_steps: LogHistogram,
    ttft_us: LogHistogram,
    tbt_steps: LogHistogram,
    tbt_us: LogHistogram,
    queue_wait_steps: LogHistogram,
    goodput_tok_s: LogHistogram,
    submitted: u64,
    admitted: u64,
    completed: u64,
    failed: u64,
    tokens: u64,
    preemptions: u64,
    resumes: u64,
    recoveries: u64,
    first_submit_us: Option<f64>,
    last_complete_us: f64,
}

impl LifecycleTracker {
    /// A tracker that records nothing.
    pub fn disabled() -> Self {
        LifecycleTracker::default()
    }

    /// An enabled tracker.
    pub fn enabled() -> Self {
        LifecycleTracker {
            enabled: true,
            ..LifecycleTracker::default()
        }
    }

    /// Whether lifecycles are being tracked.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// A request entered the system (queued, not yet scheduled).
    pub fn on_submit(&mut self, id: u64, step: usize, wall_us: f64) {
        if !self.enabled {
            return;
        }
        self.submitted += 1;
        self.first_submit_us = Some(match self.first_submit_us {
            Some(f) => f.min(wall_us),
            None => wall_us,
        });
        self.reqs.insert(
            id,
            ReqLife {
                submit_step: step,
                submit_us: wall_us,
                admitted: false,
                preempted: false,
                first_token_step: None,
                last_token_step: 0,
                last_token_us: 0.0,
                tokens: 0,
                done: false,
            },
        );
    }

    /// A request was granted pages and scheduled. First admission records
    /// queue wait; admission after a preemption counts as a resume.
    pub fn on_admit(&mut self, id: u64, step: usize) {
        if !self.enabled {
            return;
        }
        let Some(r) = self.reqs.get_mut(&id) else {
            return;
        };
        if !r.admitted {
            r.admitted = true;
            self.admitted += 1;
            self.queue_wait_steps
                .record((step - r.submit_step.min(step)) as u64);
        } else if r.preempted {
            r.preempted = false;
            self.resumes += 1;
        }
    }

    /// A generated token streamed out for `id` at scheduler step `step`.
    /// Steps at or below the last counted step are replays (fault
    /// recovery re-deriving already-streamed tokens) and are ignored.
    pub fn on_token(&mut self, id: u64, step: usize, wall_us: f64) {
        if !self.enabled {
            return;
        }
        let Some(r) = self.reqs.get_mut(&id) else {
            return;
        };
        if r.done || (r.tokens > 0 && step <= r.last_token_step) {
            return;
        }
        match r.first_token_step {
            None => {
                r.first_token_step = Some(step);
                self.ttft_steps
                    .record((step - r.submit_step.min(step)) as u64);
                self.ttft_us
                    .record((wall_us - r.submit_us).max(0.0).round() as u64);
            }
            Some(_) => {
                self.tbt_steps.record((step - r.last_token_step) as u64);
                self.tbt_us
                    .record((wall_us - r.last_token_us).max(0.0).round() as u64);
            }
        }
        r.last_token_step = step;
        r.last_token_us = wall_us;
        r.tokens += 1;
        self.tokens += 1;
    }

    /// The request was preempted (pages reclaimed, state swapped out).
    pub fn on_preempt(&mut self, id: u64, _step: usize) {
        if !self.enabled {
            return;
        }
        if let Some(r) = self.reqs.get_mut(&id) {
            if !r.preempted {
                r.preempted = true;
                self.preemptions += 1;
            }
        }
    }

    /// A fault-recovery episode (rebuild + replay) delayed this request.
    pub fn on_recovery(&mut self, id: u64, _step: usize) {
        if !self.enabled {
            return;
        }
        if self.reqs.contains_key(&id) {
            self.recoveries += 1;
        }
    }

    /// The request finished generating; records its goodput.
    pub fn on_complete(&mut self, id: u64, _step: usize, wall_us: f64) {
        if !self.enabled {
            return;
        }
        let Some(r) = self.reqs.get_mut(&id) else {
            return;
        };
        if r.done {
            return;
        }
        r.done = true;
        self.completed += 1;
        self.last_complete_us = self.last_complete_us.max(wall_us);
        let dur_s = ((wall_us - r.submit_us).max(1.0)) / 1e6;
        self.goodput_tok_s
            .record((r.tokens as f64 / dur_s).round() as u64);
    }

    /// The request terminally failed (e.g. unrecoverable fault).
    pub fn on_failed(&mut self, id: u64, _step: usize) {
        if !self.enabled {
            return;
        }
        if let Some(r) = self.reqs.get_mut(&id) {
            if !r.done {
                r.done = true;
                self.failed += 1;
            }
        }
    }

    /// Tokens counted for one request so far (replays excluded).
    pub fn request_tokens(&self, id: u64) -> Option<u64> {
        self.reqs.get(&id).map(|r| r.tokens)
    }

    /// TTFT histogram in scheduler steps (for reconciliation tests).
    pub fn ttft_steps_hist(&self) -> &LogHistogram {
        &self.ttft_steps
    }

    /// TBT histogram in scheduler steps (for reconciliation tests).
    pub fn tbt_steps_hist(&self) -> &LogHistogram {
        &self.tbt_steps
    }

    /// Queue-wait histogram in scheduler steps.
    pub fn queue_wait_steps_hist(&self) -> &LogHistogram {
        &self.queue_wait_steps
    }

    /// Rolls the tracker up into a `Copy` summary. Zeroed when disabled.
    pub fn summary(&self) -> SloSummary {
        if !self.enabled {
            return SloSummary::default();
        }
        let aggregate = match self.first_submit_us {
            Some(first) if self.last_complete_us > first && self.tokens > 0 => {
                self.tokens as f64 / ((self.last_complete_us - first) / 1e6)
            }
            _ => 0.0,
        };
        SloSummary {
            submitted: self.submitted,
            admitted: self.admitted,
            completed: self.completed,
            failed: self.failed,
            tokens: self.tokens,
            preemptions: self.preemptions,
            resumes: self.resumes,
            recoveries: self.recoveries,
            ttft_steps: Quantiles::from_hist(&self.ttft_steps, 1.0),
            ttft_s: Quantiles::from_hist(&self.ttft_us, 1e-6),
            tbt_steps: Quantiles::from_hist(&self.tbt_steps, 1.0),
            tbt_s: Quantiles::from_hist(&self.tbt_us, 1e-6),
            queue_wait_steps: Quantiles::from_hist(&self.queue_wait_steps, 1.0),
            goodput_tok_s: Quantiles::from_hist(&self.goodput_tok_s, 1.0),
            aggregate_goodput_tok_s: aggregate,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracker_yields_zeroed_summary() {
        let mut t = LifecycleTracker::disabled();
        t.on_submit(1, 0, 0.0);
        t.on_token(1, 1, 10.0);
        assert_eq!(t.summary(), SloSummary::default());
    }

    #[test]
    fn basic_lifecycle_ttft_tbt_queue_wait() {
        let mut t = LifecycleTracker::enabled();
        t.on_submit(1, 0, 0.0);
        t.on_admit(1, 2); // queue wait 2 steps
        t.on_token(1, 5, 50.0); // TTFT 5 steps / 50 µs
        t.on_token(1, 6, 60.0); // TBT 1 step
        t.on_token(1, 8, 90.0); // TBT 2 steps
        t.on_complete(1, 8, 90.0);
        let s = t.summary();
        assert_eq!(s.submitted, 1);
        assert_eq!(s.admitted, 1);
        assert_eq!(s.completed, 1);
        assert_eq!(s.tokens, 3);
        assert_eq!(s.queue_wait_steps.max, 2.0);
        assert_eq!(s.ttft_steps.p50, 5.0);
        assert_eq!(s.tbt_steps.count, 2);
        assert_eq!(s.tbt_steps.max, 2.0);
        assert!((s.ttft_s.max - 50e-6).abs() < 1e-12);
        // 3 tokens over 90 µs ≈ 33 333 tok/s.
        assert!(s.goodput_tok_s.max > 30_000.0);
        assert!(s.aggregate_goodput_tok_s > 30_000.0);
    }

    #[test]
    fn replayed_steps_are_ignored() {
        let mut t = LifecycleTracker::enabled();
        t.on_submit(1, 0, 0.0);
        t.on_admit(1, 0);
        t.on_token(1, 1, 10.0);
        t.on_token(1, 2, 20.0);
        // Fault recovery replays steps 1-2, then resumes at 3.
        t.on_token(1, 1, 30.0);
        t.on_token(1, 2, 31.0);
        t.on_token(1, 3, 40.0);
        assert_eq!(t.request_tokens(1), Some(3));
        let s = t.summary();
        assert_eq!(s.tokens, 3);
        assert_eq!(s.tbt_steps.count, 2); // gaps 1→2 and 2→3 only
        assert_eq!(s.tbt_steps.max, 1.0);
    }

    #[test]
    fn preempt_resume_and_recovery_attribution() {
        let mut t = LifecycleTracker::enabled();
        t.on_submit(1, 0, 0.0);
        t.on_admit(1, 0);
        t.on_preempt(1, 3);
        t.on_admit(1, 7); // resume, not a second admission
        t.on_recovery(1, 9);
        t.on_recovery(999, 9); // unknown id: ignored
        let s = t.summary();
        assert_eq!(s.admitted, 1);
        assert_eq!(s.preemptions, 1);
        assert_eq!(s.resumes, 1);
        assert_eq!(s.recoveries, 1);
    }

    #[test]
    fn failure_counts_once() {
        let mut t = LifecycleTracker::enabled();
        t.on_submit(1, 0, 0.0);
        t.on_failed(1, 4);
        t.on_failed(1, 5);
        t.on_complete(1, 6, 60.0); // already terminal: ignored
        let s = t.summary();
        assert_eq!(s.failed, 1);
        assert_eq!(s.completed, 0);
    }

    #[test]
    fn tokens_after_complete_are_ignored() {
        let mut t = LifecycleTracker::enabled();
        t.on_submit(1, 0, 0.0);
        t.on_token(1, 1, 10.0);
        t.on_complete(1, 1, 10.0);
        t.on_token(1, 2, 20.0);
        assert_eq!(t.summary().tokens, 1);
    }
}
