//! Bounded-ring span tracer with Chrome `trace_event` export.
//!
//! Spans are cheap: beginning one reads the wall clock, ending one pushes
//! a small record into a mutex-guarded ring buffer. When the tracer is
//! disabled (the default) both calls reduce to a relaxed atomic load — no
//! clock read, no lock, no allocation — which is what lets the serve hot
//! path keep the tracer plumbed in unconditionally.
//!
//! ## Timeline layout
//!
//! The exporter maps the two clock domains to two Chrome trace
//! *processes* and lanes to *threads*:
//!
//! | pid | meaning                        |
//! |-----|--------------------------------|
//! | 0   | wall clock (measured host µs)  |
//! | 1   | modeled clock (simulator µs)   |
//!
//! | tid   | meaning                    |
//! |-------|----------------------------|
//! | 0     | session control lane       |
//! | 1 + d | device `d` execution lane  |
//!
//! The emitted JSON is a complete-event (`"ph":"X"`) stream with metadata
//! records naming each process and thread; it loads directly in Perfetto
//! (`ui.perfetto.dev` → "Open trace file") or `chrome://tracing`.

use std::collections::BTreeSet;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::clock::DualClock;

/// Lane (trace thread) for the session control path.
pub const LANE_SESSION: u32 = 0;

/// Lane (trace thread) for device `d`'s execution.
pub fn device_lane(device: usize) -> u32 {
    1 + device as u32
}

/// Which clock a span's timestamps belong to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ClockDomain {
    /// Measured host time.
    Wall,
    /// Modeled simulator time.
    Modeled,
}

/// One completed span.
#[derive(Clone, Debug, PartialEq)]
pub struct SpanRecord {
    /// Phase name (static so recording never allocates for it).
    pub name: &'static str,
    /// Lane: [`LANE_SESSION`] or [`device_lane`].
    pub lane: u32,
    /// Clock domain the timestamps are in.
    pub domain: ClockDomain,
    /// Start, microseconds since the tracer's epoch (in `domain`).
    pub begin_us: f64,
    /// Duration in microseconds.
    pub dur_us: f64,
    /// Numeric annotations carried into the trace `args` object.
    pub args: Vec<(&'static str, f64)>,
}

/// Opaque token returned by [`SpanTracer::begin`]; NaN marks "tracer was
/// disabled at begin" so the matching `end` is also free.
#[derive(Clone, Copy, Debug)]
pub struct SpanStart(f64);

struct Ring {
    spans: Vec<SpanRecord>,
    /// Index of the logical start when the ring has wrapped.
    head: usize,
    cap: usize,
}

struct Shared {
    enabled: AtomicBool,
    clock: DualClock,
    ring: Mutex<Ring>,
    recorded: AtomicU64,
    dropped: AtomicU64,
}

/// Cheap, clonable handle to a shared span ring. Clones record into the
/// same buffer, so worker threads can hold their own handle.
#[derive(Clone)]
pub struct SpanTracer {
    shared: Arc<Shared>,
}

impl SpanTracer {
    /// A tracer that records nothing; begin/end cost one atomic load.
    pub fn disabled() -> Self {
        Self::build(false, 0)
    }

    /// An enabled tracer whose ring keeps the most recent `capacity`
    /// spans (older spans drop, counted in [`Self::dropped`]).
    pub fn with_capacity(capacity: usize) -> Self {
        Self::build(true, capacity.max(1))
    }

    fn build(enabled: bool, cap: usize) -> Self {
        SpanTracer {
            shared: Arc::new(Shared {
                enabled: AtomicBool::new(enabled),
                clock: DualClock::new(),
                ring: Mutex::new(Ring {
                    spans: Vec::new(),
                    head: 0,
                    cap,
                }),
                recorded: AtomicU64::new(0),
                dropped: AtomicU64::new(0),
            }),
        }
    }

    /// Whether spans are being recorded.
    pub fn is_enabled(&self) -> bool {
        self.shared.enabled.load(Ordering::Relaxed)
    }

    /// The tracer's dual clock (shared by all clones).
    pub fn clock(&self) -> &DualClock {
        &self.shared.clock
    }

    /// Marks the start of a wall-clock span. Free when disabled.
    #[inline]
    pub fn begin(&self) -> SpanStart {
        if self.is_enabled() {
            SpanStart(self.shared.clock.wall_us())
        } else {
            SpanStart(f64::NAN)
        }
    }

    /// Ends a wall-clock span begun with [`Self::begin`].
    #[inline]
    pub fn end(&self, start: SpanStart, name: &'static str, lane: u32) {
        self.end_with(start, name, lane, Vec::new());
    }

    /// Ends a wall-clock span, attaching numeric annotations.
    pub fn end_with(
        &self,
        start: SpanStart,
        name: &'static str,
        lane: u32,
        args: Vec<(&'static str, f64)>,
    ) {
        if !self.is_enabled() || start.0.is_nan() {
            return;
        }
        let now = self.shared.clock.wall_us();
        self.record(SpanRecord {
            name,
            lane,
            domain: ClockDomain::Wall,
            begin_us: start.0,
            dur_us: (now - start.0).max(0.0),
            args,
        });
    }

    /// Records a span on the modeled timeline at an explicit interval
    /// (microseconds of simulator time). Use [`DualClock::advance_sim_s`]
    /// via [`Self::clock`] to allocate intervals; keeping placement
    /// explicit lets concurrent device lanes share one interval.
    pub fn record_modeled(
        &self,
        name: &'static str,
        lane: u32,
        begin_us: f64,
        dur_us: f64,
        args: Vec<(&'static str, f64)>,
    ) {
        if !self.is_enabled() {
            return;
        }
        self.record(SpanRecord {
            name,
            lane,
            domain: ClockDomain::Modeled,
            begin_us,
            dur_us,
            args,
        });
    }

    /// Pushes a finished record into the ring.
    pub fn record(&self, record: SpanRecord) {
        if !self.is_enabled() {
            return;
        }
        self.shared.recorded.fetch_add(1, Ordering::Relaxed);
        let mut ring = match self.shared.ring.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        if ring.spans.len() < ring.cap {
            ring.spans.push(record);
        } else {
            let head = ring.head;
            ring.spans[head] = record;
            ring.head = (head + 1) % ring.cap;
            self.shared.dropped.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Total spans recorded (including any since dropped from the ring).
    pub fn recorded(&self) -> u64 {
        self.shared.recorded.load(Ordering::Relaxed)
    }

    /// Spans evicted from the ring because it was full.
    pub fn dropped(&self) -> u64 {
        self.shared.dropped.load(Ordering::Relaxed)
    }

    /// Copies the ring's contents in record order (oldest first).
    pub fn snapshot(&self) -> Vec<SpanRecord> {
        let ring = match self.shared.ring.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        let mut out = Vec::with_capacity(ring.spans.len());
        out.extend_from_slice(&ring.spans[ring.head..]);
        out.extend_from_slice(&ring.spans[..ring.head]);
        out
    }

    /// Exports the ring as Chrome `trace_event` JSON (Perfetto-loadable).
    ///
    /// Field order is stable — `name, ph, ts, dur, pid, tid, args` for
    /// complete events — and guarded by a golden test, so downstream
    /// tooling may diff traces textually.
    pub fn chrome_trace_json(&self) -> String {
        let spans = self.snapshot();
        let mut lanes: BTreeSet<(u32, u32)> = BTreeSet::new();
        let mut pids: BTreeSet<u32> = BTreeSet::new();
        for s in &spans {
            let pid = match s.domain {
                ClockDomain::Wall => 0,
                ClockDomain::Modeled => 1,
            };
            pids.insert(pid);
            lanes.insert((pid, s.lane));
        }

        let mut out = String::with_capacity(128 + spans.len() * 96);
        out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
        let mut first = true;
        let mut push_event = |out: &mut String, body: &str| {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(body);
        };

        for pid in &pids {
            let pname = if *pid == 0 { "wall" } else { "modeled" };
            push_event(
                &mut out,
                &format!(
                    "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\
                     \"args\":{{\"name\":\"{pname}\"}}}}"
                ),
            );
        }
        for (pid, tid) in &lanes {
            let tname = if *tid == LANE_SESSION {
                "session".to_string()
            } else {
                format!("device {}", tid - 1)
            };
            push_event(
                &mut out,
                &format!(
                    "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\
                     \"args\":{{\"name\":\"{tname}\"}}}}"
                ),
            );
        }

        for s in &spans {
            let pid = match s.domain {
                ClockDomain::Wall => 0,
                ClockDomain::Modeled => 1,
            };
            let mut body = String::with_capacity(96);
            let _ = write!(
                body,
                "{{\"name\":\"{}\",\"ph\":\"X\",\"ts\":{:.3},\"dur\":{:.3},\
                 \"pid\":{},\"tid\":{},\"args\":{{",
                s.name, s.begin_us, s.dur_us, pid, s.lane
            );
            for (i, (k, v)) in s.args.iter().enumerate() {
                if i > 0 {
                    body.push(',');
                }
                let v = if v.is_finite() { *v } else { 0.0 };
                let _ = write!(body, "\"{k}\":{v}");
            }
            body.push_str("}}");
            push_event(&mut out, &body);
        }

        out.push_str("]}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::{self, JsonValue};

    #[test]
    fn disabled_tracer_records_nothing() {
        let t = SpanTracer::disabled();
        let s = t.begin();
        t.end(s, "step", LANE_SESSION);
        t.record_modeled("execute", device_lane(0), 0.0, 10.0, Vec::new());
        assert_eq!(t.recorded(), 0);
        assert!(t.snapshot().is_empty());
    }

    #[test]
    fn spans_round_trip_through_ring() {
        let t = SpanTracer::with_capacity(8);
        let s = t.begin();
        t.end_with(s, "step", LANE_SESSION, vec![("batch", 4.0)]);
        let (b, e) = t.clock().advance_sim_s(1e-3);
        t.record_modeled("execute", device_lane(1), b, e - b, vec![("units", 2.0)]);
        let spans = t.snapshot();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].name, "step");
        assert_eq!(spans[0].domain, ClockDomain::Wall);
        assert_eq!(spans[1].name, "execute");
        assert_eq!(spans[1].lane, device_lane(1));
        assert_eq!(spans[1].dur_us, 1_000.0);
        assert_eq!(t.recorded(), 2);
        assert_eq!(t.dropped(), 0);
    }

    #[test]
    fn ring_drops_oldest_past_capacity() {
        let t = SpanTracer::with_capacity(3);
        for i in 0..5u32 {
            t.record_modeled("e", i, i as f64, 1.0, Vec::new());
        }
        let spans = t.snapshot();
        assert_eq!(spans.len(), 3);
        // Oldest two (lanes 0, 1) evicted; survivors in order.
        assert_eq!(
            spans.iter().map(|s| s.lane).collect::<Vec<_>>(),
            vec![2, 3, 4]
        );
        assert_eq!(t.recorded(), 5);
        assert_eq!(t.dropped(), 2);
    }

    #[test]
    fn clones_share_one_ring() {
        let t = SpanTracer::with_capacity(8);
        let t2 = t.clone();
        t2.record_modeled("from_clone", LANE_SESSION, 0.0, 1.0, Vec::new());
        assert_eq!(t.snapshot().len(), 1);
    }

    /// Golden-file test for the exporter: exact bytes, which pins both
    /// JSON validity and field order.
    #[test]
    fn chrome_trace_golden() {
        let t = SpanTracer::with_capacity(8);
        t.record(SpanRecord {
            name: "step",
            lane: LANE_SESSION,
            domain: ClockDomain::Wall,
            begin_us: 10.5,
            dur_us: 2.25,
            args: vec![("batch", 4.0), ("tokens", 128.0)],
        });
        t.record_modeled("execute", device_lane(0), 0.0, 1000.0, vec![("units", 3.0)]);
        let got = t.chrome_trace_json();
        let want = concat!(
            "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[",
            "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,\"args\":{\"name\":\"wall\"}},",
            "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\"args\":{\"name\":\"modeled\"}},",
            "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,\"args\":{\"name\":\"session\"}},",
            "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":1,\"args\":{\"name\":\"device 0\"}},",
            "{\"name\":\"step\",\"ph\":\"X\",\"ts\":10.500,\"dur\":2.250,\"pid\":0,\"tid\":0,",
            "\"args\":{\"batch\":4,\"tokens\":128}},",
            "{\"name\":\"execute\",\"ph\":\"X\",\"ts\":0.000,\"dur\":1000.000,\"pid\":1,\"tid\":1,",
            "\"args\":{\"units\":3}}",
            "]}"
        );
        assert_eq!(got, want);
    }

    #[test]
    fn chrome_trace_is_valid_json_with_expected_shape() {
        let t = SpanTracer::with_capacity(64);
        for i in 0..10 {
            let s = t.begin();
            t.end_with(s, "step", LANE_SESSION, vec![("i", i as f64)]);
        }
        let parsed = json::parse(&t.chrome_trace_json()).expect("exporter must emit valid JSON");
        let obj = parsed.as_object().expect("top level is an object");
        assert_eq!(obj[0].0, "displayTimeUnit");
        let events = obj[1].1.as_array().expect("traceEvents is an array");
        let x_events: Vec<_> = events
            .iter()
            .filter(|e| e.get("ph").and_then(JsonValue::as_str) == Some("X"))
            .collect();
        assert_eq!(x_events.len(), 10);
        for e in x_events {
            let keys: Vec<&str> = e
                .as_object()
                .expect("event is an object")
                .iter()
                .map(|(k, _)| k.as_str())
                .collect();
            assert_eq!(keys, vec!["name", "ph", "ts", "dur", "pid", "tid", "args"]);
        }
    }
}
