//! Dual clock: measured wall time and modeled simulator time.
//!
//! The serve runtime lives in two time domains at once. Work the host
//! actually performs (packing, decode math, merges) is measured on the
//! **wall** clock; work the simulator only *models* (interconnect
//! transfers, swap traffic, per-device compute at a modeled rate) carries
//! a duration in modeled seconds but occupies zero wall time. A
//! [`DualClock`] keeps one epoch for each domain so spans from both can
//! be laid out on separate, internally-consistent timelines in the same
//! trace: the wall timeline shows where host microseconds went, the
//! modeled timeline shows what the simulated cluster was doing.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Paired wall/modeled clocks sharing one epoch.
///
/// Wall time is `Instant`-based and read-only; modeled time is an atomic
/// nanosecond counter advanced explicitly by whoever owns the model
/// (the serve session, after it computes a step's modeled cost).
#[derive(Debug)]
pub struct DualClock {
    epoch: Instant,
    sim_ns: AtomicU64,
}

impl Default for DualClock {
    fn default() -> Self {
        DualClock::new()
    }
}

impl DualClock {
    /// Starts both clocks at zero (wall epoch = now).
    pub fn new() -> Self {
        DualClock {
            epoch: Instant::now(),
            sim_ns: AtomicU64::new(0),
        }
    }

    /// Microseconds of wall time elapsed since the clock was created.
    pub fn wall_us(&self) -> f64 {
        self.epoch.elapsed().as_nanos() as f64 / 1_000.0
    }

    /// Current modeled simulator time, in microseconds.
    pub fn sim_us(&self) -> f64 {
        self.sim_ns.load(Ordering::Relaxed) as f64 / 1_000.0
    }

    /// Advances the modeled clock by `seconds` (clamped at ≥ 0) and
    /// returns the interval `(begin_us, end_us)` it covered.
    pub fn advance_sim_s(&self, seconds: f64) -> (f64, f64) {
        let ns = if seconds.is_finite() && seconds > 0.0 {
            (seconds * 1e9).round() as u64
        } else {
            0
        };
        let begin = self.sim_ns.fetch_add(ns, Ordering::Relaxed);
        (begin as f64 / 1_000.0, (begin + ns) as f64 / 1_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wall_is_monotone() {
        let c = DualClock::new();
        let a = c.wall_us();
        let b = c.wall_us();
        assert!(b >= a);
        assert!(a >= 0.0);
    }

    #[test]
    fn sim_advances_by_requested_amount() {
        let c = DualClock::new();
        assert_eq!(c.sim_us(), 0.0);
        let (b0, e0) = c.advance_sim_s(0.001); // 1 ms
        assert_eq!(b0, 0.0);
        assert_eq!(e0, 1_000.0);
        let (b1, e1) = c.advance_sim_s(0.5e-6); // 0.5 µs
        assert_eq!(b1, 1_000.0);
        assert_eq!(e1, 1_000.5);
        assert_eq!(c.sim_us(), 1_000.5);
    }

    #[test]
    fn sim_ignores_nonpositive_and_nonfinite() {
        let c = DualClock::new();
        c.advance_sim_s(-1.0);
        c.advance_sim_s(f64::NAN);
        c.advance_sim_s(f64::INFINITY);
        assert_eq!(c.sim_us(), 0.0);
    }
}
