//! Minimal JSON parser for validating exported artifacts in tests.
//!
//! The workspace is zero-external-dependency, yet several tests need to
//! assert that emitted JSON (Chrome traces, `BENCH_serve.json`, JSONL
//! event lines) is well-formed and has a particular shape. This is a
//! small recursive-descent parser, sufficient for machine-emitted JSON:
//! objects preserve **insertion order** (stored as a `Vec` of pairs,
//! duplicate keys kept as-is) so field-order guarantees are testable.
//!
//! It is a *validator*, not a serializer — emission sites build strings
//! directly so their field order stays under explicit control.

/// A parsed JSON value. Objects preserve source order.
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (parsed as `f64`).
    Num(f64),
    /// String (escapes decoded).
    Str(String),
    /// Array.
    Arr(Vec<JsonValue>),
    /// Object, in source order, duplicates preserved.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// The object's ordered key/value pairs, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            JsonValue::Obj(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// The array's elements, if this is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The boolean value, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// First value under `key`, if this is an object containing it.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        self.as_object()?
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }
}

/// Parse failure: a message and the byte offset it occurred at.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub message: String,
    /// Byte offset into the input.
    pub offset: usize,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Parses a complete JSON document; trailing whitespace only.
pub fn parse(input: &str) -> Result<JsonValue, JsonError> {
    let bytes = input.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(p.err("trailing data after document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            message: message.to_string(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, value: JsonValue) -> Result<JsonValue, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn value(&mut self) -> Result<JsonValue, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = self.peek().ok_or_else(|| self.err("unterminated string"))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not needed for our
                            // machine-emitted ASCII artifacts; map lone
                            // surrogates to the replacement character.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ if b < 0x20 => return Err(self.err("raw control character in string")),
                _ => {
                    // Re-sync to char boundary for multi-byte UTF-8.
                    let start = self.pos - 1;
                    let width = utf8_width(b);
                    let end = start + width;
                    let s = self
                        .bytes
                        .get(start..end)
                        .and_then(|sl| std::str::from_utf8(sl).ok())
                        .ok_or_else(|| self.err("invalid UTF-8 in string"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        text.parse::<f64>()
            .map(JsonValue::Num)
            .map_err(|_| self.err("invalid number"))
    }
}

fn utf8_width(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

/// Escapes a string for embedding in emitted JSON (quotes not included).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), JsonValue::Null);
        assert_eq!(parse("true").unwrap(), JsonValue::Bool(true));
        assert_eq!(parse("false").unwrap(), JsonValue::Bool(false));
        assert_eq!(parse("42").unwrap(), JsonValue::Num(42.0));
        assert_eq!(parse("-1.5e3").unwrap(), JsonValue::Num(-1500.0));
        assert_eq!(
            parse("\"a\\nb\"").unwrap(),
            JsonValue::Str("a\nb".to_string())
        );
    }

    #[test]
    fn objects_preserve_order() {
        let v = parse("{\"z\": 1, \"a\": 2, \"m\": 3}").unwrap();
        let keys: Vec<&str> = v
            .as_object()
            .unwrap()
            .iter()
            .map(|(k, _)| k.as_str())
            .collect();
        assert_eq!(keys, vec!["z", "a", "m"]);
        assert_eq!(v.get("a").and_then(JsonValue::as_f64), Some(2.0));
    }

    #[test]
    fn nested_structures() {
        let v = parse("{\"xs\": [1, {\"y\": [true, null]}], \"s\": \"hi\"}").unwrap();
        let xs = v.get("xs").unwrap().as_array().unwrap();
        assert_eq!(xs[0], JsonValue::Num(1.0));
        assert_eq!(
            xs[1].get("y").unwrap().as_array().unwrap()[1],
            JsonValue::Null
        );
        assert_eq!(v.get("s").unwrap().as_str(), Some("hi"));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\"}",
            "{\"a\":}",
            "tru",
            "1.2.3",
            "\"unterminated",
            "[1] extra",
            "{'a': 1}",
        ] {
            assert!(parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn unicode_and_escapes_round_trip() {
        let v = parse("\"caf\\u00e9 — ✓\"").unwrap();
        assert_eq!(v.as_str(), Some("café — ✓"));
    }

    #[test]
    fn escape_produces_parseable_strings() {
        let raw = "line1\nline2\t\"quoted\" \\ end\u{1}";
        let doc = format!("\"{}\"", escape(raw));
        assert_eq!(parse(&doc).unwrap().as_str(), Some(raw));
    }
}
