#![warn(missing_docs)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

//! # bd-obs — zero-dependency observability for the serve runtime
//!
//! The serve layer's only window used to be the flat per-step
//! `ServeMetrics` struct: aggregate numbers, no per-request latency, no
//! view of *where inside a step* time went. This crate supplies the three
//! missing instruments, all allocation-light and default-off so the
//! decode hot path pays nothing when observability is disabled:
//!
//! * **Span tracing** ([`SpanTracer`]) — cheap begin/end spans over a
//!   [`DualClock`] (measured wall microseconds *and* modeled simulator
//!   microseconds), recorded into a bounded ring buffer and exportable as
//!   Chrome `trace_event` JSON ([`SpanTracer::chrome_trace_json`]) that
//!   loads directly in Perfetto (`ui.perfetto.dev`) or `chrome://tracing`.
//!   Lanes separate the session control path from per-device execution.
//! * **Metrics** ([`MetricsRegistry`], [`LogHistogram`]) — named counters,
//!   gauges, and log-bucketed histograms whose percentile readout is
//!   *exactly* the nearest-rank percentile of the quantized samples
//!   (≤ 1/32 relative quantization error, exact below 32).
//! * **Request lifecycle** ([`LifecycleTracker`]) — submit → admit →
//!   first-token → complete per request, with preemption/resume and
//!   fault-recovery episodes attributed, yielding TTFT, TBT, queue-wait,
//!   and goodput distributions ([`SloSummary`]) — the numbers a service
//!   operator actually buys.
//!
//! A structured JSONL [`EventLog`] (admissions, preemptions, faults,
//! recoveries, CoW breaks, completions) and a minimal [`json`] parser (for
//! validating exported artifacts in tests without external crates) round
//! out the toolkit. [`ObsConfig`] gates everything; the default is
//! everything **off**, and the disabled paths reduce to a relaxed atomic
//! load or a branch on a bool.

pub mod clock;
pub mod events;
pub mod hist;
pub mod json;
pub mod lifecycle;
pub mod registry;
pub mod span;

pub use clock::DualClock;
pub use events::{EventField, EventLog};
pub use hist::LogHistogram;
pub use lifecycle::{LifecycleTracker, Quantiles, SloSummary};
pub use registry::MetricsRegistry;
pub use span::{device_lane, ClockDomain, SpanRecord, SpanStart, SpanTracer, LANE_SESSION};

/// What the observability layer records. Everything defaults **off**: a
/// session built with `ObsConfig::default()` pays only a branch per
/// would-be record, so benchmark numbers do not move.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ObsConfig {
    /// Record phase spans (admission, prefill, execute, merge, all-reduce,
    /// swap, append, recovery) into the span ring buffer.
    pub spans: bool,
    /// Append structured JSONL events (admissions, preemptions, faults,
    /// recoveries, CoW breaks, completions) to the event log.
    pub events: bool,
    /// Track per-request lifecycles (TTFT/TBT/queue-wait/goodput
    /// histograms) and maintain the metrics registry counters.
    pub lifecycle: bool,
    /// Span ring-buffer capacity; the oldest spans drop past it.
    pub span_capacity: usize,
    /// Event-log line capacity; the oldest lines drop past it.
    pub event_capacity: usize,
}

impl Default for ObsConfig {
    fn default() -> Self {
        ObsConfig {
            spans: false,
            events: false,
            lifecycle: false,
            span_capacity: 65_536,
            event_capacity: 65_536,
        }
    }
}

impl ObsConfig {
    /// Everything off (the default): observability costs one branch per
    /// call site.
    pub fn off() -> Self {
        ObsConfig::default()
    }

    /// Everything on, with default capacities.
    pub fn all() -> Self {
        ObsConfig {
            spans: true,
            events: true,
            lifecycle: true,
            ..ObsConfig::default()
        }
    }

    /// Enables or disables span tracing.
    pub fn with_spans(mut self, on: bool) -> Self {
        self.spans = on;
        self
    }

    /// Enables or disables the structured event log.
    pub fn with_events(mut self, on: bool) -> Self {
        self.events = on;
        self
    }

    /// Enables or disables lifecycle/SLO tracking.
    pub fn with_lifecycle(mut self, on: bool) -> Self {
        self.lifecycle = on;
        self
    }

    /// Overrides the span ring-buffer capacity.
    pub fn with_span_capacity(mut self, cap: usize) -> Self {
        self.span_capacity = cap;
        self
    }

    /// Overrides the event-log capacity.
    pub fn with_event_capacity(mut self, cap: usize) -> Self {
        self.event_capacity = cap;
        self
    }
}
