//! Log-bucketed histogram with exact nearest-rank percentile readout.
//!
//! An HdrHistogram-style layout: values below [`SUB_BUCKET_COUNT`] (32)
//! are stored exactly; above that, each power-of-two octave is split into
//! 32 sub-buckets, so the bucket lower bound under-reports a raw value by
//! at most 1/32 (≤ 3.2 % relative error). The crucial property for
//! testing is that [`LogHistogram::quantize`] is a **monotone** map:
//! sorting commutes with it over a multiset, so the nearest-rank
//! percentile computed from bucket counts equals `quantize(p)` applied to
//! the true percentile of the raw sorted samples — *exactly*, not
//! approximately. The proptest suite below holds the implementation to
//! that oracle.

/// Number of mantissa bits retained past the leading bit.
pub const SUB_BUCKET_BITS: u32 = 5;
/// Sub-buckets per octave; values below this are exact.
pub const SUB_BUCKET_COUNT: u64 = 1 << SUB_BUCKET_BITS;

/// Log-bucketed `u64` histogram. ~8 bytes per touched bucket; the bucket
/// array grows lazily toward the largest recorded value (max 1 920
/// buckets over the full `u64` range).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct LogHistogram {
    counts: Vec<u64>,
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LogHistogram {
            counts: Vec::new(),
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// The bucket index a value lands in.
    fn index_of(value: u64) -> usize {
        if value < SUB_BUCKET_COUNT {
            value as usize
        } else {
            let e = 63 - value.leading_zeros() as u64; // ≥ SUB_BUCKET_BITS
            let shift = e - u64::from(SUB_BUCKET_BITS);
            let sub = value >> shift; // in [32, 64)
            ((e - u64::from(SUB_BUCKET_BITS) + 1) * SUB_BUCKET_COUNT + (sub - SUB_BUCKET_COUNT))
                as usize
        }
    }

    /// Lower bound of the bucket at `index` (inverse of [`Self::index_of`]
    /// up to quantization).
    fn lower_bound(index: usize) -> u64 {
        let index = index as u64;
        if index < SUB_BUCKET_COUNT {
            index
        } else {
            let e = index / SUB_BUCKET_COUNT + u64::from(SUB_BUCKET_BITS) - 1;
            let sub = index % SUB_BUCKET_COUNT + SUB_BUCKET_COUNT;
            sub << (e - u64::from(SUB_BUCKET_BITS))
        }
    }

    /// The value a recorded sample is rounded down to: exact below 32,
    /// otherwise the lower bound of its 1/32-wide log bucket. Monotone
    /// non-decreasing, `quantize(v) ≤ v`, and `v − quantize(v) < v/32`.
    pub fn quantize(value: u64) -> u64 {
        Self::lower_bound(Self::index_of(value))
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.record_n(value, 1);
    }

    /// Records `n` identical samples.
    pub fn record_n(&mut self, value: u64, n: u64) {
        if n == 0 {
            return;
        }
        let idx = Self::index_of(value);
        if idx >= self.counts.len() {
            self.counts.resize(idx + 1, 0);
        }
        self.counts[idx] += n;
        self.count += n;
        self.sum += value as u128 * n as u128;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of raw (un-quantized) sample values.
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Mean of raw sample values, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Smallest raw sample, or `None` when empty.
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest raw sample, or `None` when empty.
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Nearest-rank percentile of the quantized sample multiset:
    /// the smallest quantized value whose cumulative count reaches
    /// `ceil(p/100 · count)`. Returns `None` when empty; `p` is clamped
    /// to `[0, 100]` and a rank of at least 1 is used so `p = 0` returns
    /// the quantized minimum.
    pub fn percentile(&self, p: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let p = p.clamp(0.0, 100.0);
        let rank = ((p / 100.0 * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(Self::lower_bound(idx));
            }
        }
        // Unreachable: cumulative counts always reach `rank ≤ count`.
        Some(Self::lower_bound(self.counts.len().saturating_sub(1)))
    }

    /// Merges another histogram's buckets into this one.
    pub fn absorb(&mut self, other: &LogHistogram) {
        if other.counts.len() > self.counts.len() {
            self.counts.resize(other.counts.len(), 0);
        }
        for (dst, src) in self.counts.iter_mut().zip(other.counts.iter()) {
            *dst += src;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// Nearest-rank percentile of a raw sorted slice (the oracle).
    fn oracle_percentile(sorted: &[u64], p: f64) -> u64 {
        let n = sorted.len() as f64;
        let rank = ((p / 100.0 * n).ceil() as usize).clamp(1, sorted.len());
        sorted[rank - 1]
    }

    #[test]
    fn values_below_32_are_exact() {
        for v in 0..SUB_BUCKET_COUNT {
            assert_eq!(LogHistogram::quantize(v), v);
        }
    }

    #[test]
    fn bucket_boundaries_at_octave_edges() {
        // First octave past the exact range: stride 1 (still exact).
        assert_eq!(LogHistogram::quantize(32), 32);
        assert_eq!(LogHistogram::quantize(63), 63);
        // Second: [64, 128) has stride 2.
        assert_eq!(LogHistogram::quantize(64), 64);
        assert_eq!(LogHistogram::quantize(65), 64);
        assert_eq!(LogHistogram::quantize(66), 66);
        assert_eq!(LogHistogram::quantize(127), 126);
        // [128, 256) has stride 4.
        assert_eq!(LogHistogram::quantize(128), 128);
        assert_eq!(LogHistogram::quantize(131), 128);
        assert_eq!(LogHistogram::quantize(132), 132);
        // Powers of two are always bucket lower bounds.
        for e in 5..63 {
            let v = 1u64 << e;
            assert_eq!(LogHistogram::quantize(v), v);
            // Largest value of the previous octave maps below v.
            assert!(LogHistogram::quantize(v - 1) < v);
        }
        assert_eq!(LogHistogram::quantize(u64::MAX), (63u64) << 58);
    }

    #[test]
    fn quantization_error_bound() {
        for &v in &[
            1u64,
            31,
            32,
            100,
            1_000,
            123_456,
            u32::MAX as u64,
            u64::MAX / 3,
        ] {
            let q = LogHistogram::quantize(v);
            assert!(q <= v);
            assert!(v - q <= v / SUB_BUCKET_COUNT, "v={v} q={q}");
        }
    }

    #[test]
    fn empty_histogram() {
        let h = LogHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.percentile(50.0), None);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn single_value_percentiles() {
        let mut h = LogHistogram::new();
        h.record(7);
        for p in [0.0, 50.0, 99.0, 100.0] {
            assert_eq!(h.percentile(p), Some(7));
        }
        assert_eq!(h.min(), Some(7));
        assert_eq!(h.max(), Some(7));
    }

    #[test]
    fn absorb_matches_recording_into_one() {
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        let mut all = LogHistogram::new();
        for v in [1u64, 50, 900, 44, 12_345] {
            a.record(v);
            all.record(v);
        }
        for v in [3u64, 77, 1_000_000] {
            b.record(v);
            all.record(v);
        }
        a.absorb(&b);
        assert_eq!(a, all);
    }

    proptest! {
        #[test]
        fn percentile_matches_sorted_vec_oracle(
            values in prop::collection::vec(0u64..2_000_000, 1..200),
            p_raw in 0u64..1001,
        ) {
            let p = p_raw as f64 / 10.0; // 0.0..=100.0 in 0.1 steps
            let mut h = LogHistogram::new();
            for &v in &values {
                h.record(v);
            }
            let mut sorted = values.clone();
            sorted.sort_unstable();
            // Monotone quantization ⇒ histogram percentile is EXACTLY the
            // quantized oracle percentile, never merely close.
            prop_assert_eq!(
                h.percentile(p),
                Some(LogHistogram::quantize(oracle_percentile(&sorted, p)))
            );
            prop_assert_eq!(h.count(), values.len() as u64);
            prop_assert_eq!(h.min(), sorted.first().copied());
            prop_assert_eq!(h.max(), sorted.last().copied());
        }

        #[test]
        fn quantize_is_monotone(a: u64, b: u64) {
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            prop_assert!(LogHistogram::quantize(lo) <= LogHistogram::quantize(hi));
        }
    }
}
