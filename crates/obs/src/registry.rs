//! Named metrics registry: counters, gauges, histograms.
//!
//! A deliberately small, deterministic registry: names are `&'static
//! str`, storage is `BTreeMap` so iteration (and JSON export) order is
//! alphabetical and stable across runs. The registry is owned by one
//! writer (the serve session) — no interior mutability, no atomics —
//! which keeps the mutation paths branch-plus-BTreeMap-lookup cheap and
//! the whole structure trivially clonable for snapshots.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::hist::LogHistogram;

/// Registry of named counters (monotone u64), gauges (last-set f64),
/// and log-bucketed histograms.
#[derive(Clone, Debug, Default)]
pub struct MetricsRegistry {
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, f64>,
    hists: BTreeMap<&'static str, LogHistogram>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Adds `n` to counter `name` (creating it at 0).
    pub fn inc(&mut self, name: &'static str, n: u64) {
        *self.counters.entry(name).or_insert(0) += n;
    }

    /// Sets gauge `name` to `value`.
    pub fn set_gauge(&mut self, name: &'static str, value: f64) {
        self.gauges.insert(name, value);
    }

    /// Records `value` into histogram `name` (creating it empty).
    pub fn observe(&mut self, name: &'static str, value: u64) {
        self.hists.entry(name).or_default().record(value);
    }

    /// Current counter value (0 if never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Current gauge value, if set.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// The named histogram, if anything was observed into it.
    pub fn histogram(&self, name: &str) -> Option<&LogHistogram> {
        self.hists.get(name)
    }

    /// All counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.counters.iter().map(|(k, v)| (*k, *v))
    }

    /// Renders the registry as a JSON object with stable (alphabetical)
    /// key order: `{"counters":{...},"gauges":{...},"histograms":{...}}`.
    /// Histograms export count/p50/p90/p99/max/mean.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"counters\":{");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{k}\":{v}");
        }
        out.push_str("},\"gauges\":{");
        for (i, (k, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            if v.is_finite() {
                let _ = write!(out, "\"{k}\":{v}");
            } else {
                let _ = write!(out, "\"{k}\":null");
            }
        }
        out.push_str("},\"histograms\":{");
        for (i, (k, h)) in self.hists.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\"{k}\":{{\"count\":{},\"p50\":{},\"p90\":{},\"p99\":{},\"max\":{},\"mean\":{:.3}}}",
                h.count(),
                h.percentile(50.0).unwrap_or(0),
                h.percentile(90.0).unwrap_or(0),
                h.percentile(99.0).unwrap_or(0),
                h.max().unwrap_or(0),
                h.mean()
            );
        }
        out.push_str("}}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::{self, JsonValue};

    #[test]
    fn counters_gauges_histograms_round_trip() {
        let mut r = MetricsRegistry::new();
        r.inc("serve.admitted", 3);
        r.inc("serve.admitted", 2);
        r.set_gauge("serve.pages_free", 17.0);
        for v in [10u64, 20, 30] {
            r.observe("serve.batch", v);
        }
        assert_eq!(r.counter("serve.admitted"), 5);
        assert_eq!(r.counter("never.touched"), 0);
        assert_eq!(r.gauge("serve.pages_free"), Some(17.0));
        assert_eq!(r.histogram("serve.batch").unwrap().count(), 3);
        assert_eq!(
            r.histogram("serve.batch").unwrap().percentile(50.0),
            Some(20)
        );
    }

    #[test]
    fn to_json_is_valid_and_alphabetical() {
        let mut r = MetricsRegistry::new();
        r.inc("z.last", 1);
        r.inc("a.first", 2);
        r.set_gauge("g.nan", f64::NAN);
        r.observe("h.x", 100);
        let doc = r.to_json();
        let parsed = json::parse(&doc).unwrap();
        let counters = parsed.get("counters").unwrap().as_object().unwrap();
        assert_eq!(counters[0].0, "a.first");
        assert_eq!(counters[1].0, "z.last");
        assert_eq!(
            parsed.get("gauges").unwrap().get("g.nan"),
            Some(&JsonValue::Null)
        );
        let hx = parsed.get("histograms").unwrap().get("h.x").unwrap();
        assert_eq!(hx.get("count").and_then(JsonValue::as_f64), Some(1.0));
        assert_eq!(hx.get("p99").and_then(JsonValue::as_f64), Some(100.0));
    }
}
