//! Bounded structured event log emitting JSONL.
//!
//! Each event is one pre-rendered JSON line: `{"step":N,"event":"...",
//! ...fields}` with fields in call-site order. Rendering at record time
//! keeps the log a plain `VecDeque<String>` — no schema, no lifetime
//! puzzles — and since the log is bounded and disabled by default, the
//! serve path's cost is a branch when off and one small allocation when
//! on. Lines parse individually with [`crate::json::parse`].

use std::collections::VecDeque;
use std::fmt::Write as _;

use crate::json;

/// A field value attachable to an event.
#[derive(Clone, Copy, Debug)]
pub enum EventField<'a> {
    /// Unsigned integer (ids, counts, pages).
    U64(u64),
    /// Float (seconds, ratios); non-finite renders as `null`.
    F64(f64),
    /// Short string (policy names, fault kinds).
    Str(&'a str),
}

/// Bounded JSONL event log. Oldest lines drop past capacity.
#[derive(Clone, Debug)]
pub struct EventLog {
    enabled: bool,
    cap: usize,
    lines: VecDeque<String>,
    recorded: u64,
    dropped: u64,
}

impl EventLog {
    /// A log that records nothing.
    pub fn disabled() -> Self {
        EventLog {
            enabled: false,
            cap: 0,
            lines: VecDeque::new(),
            recorded: 0,
            dropped: 0,
        }
    }

    /// An enabled log keeping the most recent `capacity` lines.
    pub fn with_capacity(capacity: usize) -> Self {
        EventLog {
            enabled: true,
            cap: capacity.max(1),
            lines: VecDeque::new(),
            recorded: 0,
            dropped: 0,
        }
    }

    /// Whether events are being recorded.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Records one event at serve step `step` with ordered `fields`.
    pub fn log(&mut self, step: usize, event: &str, fields: &[(&str, EventField<'_>)]) {
        if !self.enabled {
            return;
        }
        let mut line = String::with_capacity(48 + fields.len() * 16);
        let _ = write!(
            line,
            "{{\"step\":{step},\"event\":\"{}\"",
            json::escape(event)
        );
        for (key, value) in fields {
            let _ = write!(line, ",\"{}\":", json::escape(key));
            match value {
                EventField::U64(v) => {
                    let _ = write!(line, "{v}");
                }
                EventField::F64(v) if v.is_finite() => {
                    let _ = write!(line, "{v}");
                }
                EventField::F64(_) => line.push_str("null"),
                EventField::Str(s) => {
                    let _ = write!(line, "\"{}\"", json::escape(s));
                }
            }
        }
        line.push('}');
        if self.lines.len() == self.cap {
            self.lines.pop_front();
            self.dropped += 1;
        }
        self.lines.push_back(line);
        self.recorded += 1;
    }

    /// Total events recorded (including any since dropped).
    pub fn recorded(&self) -> u64 {
        self.recorded
    }

    /// Events evicted because the log was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Retained lines, oldest first.
    pub fn lines(&self) -> impl Iterator<Item = &str> {
        self.lines.iter().map(String::as_str)
    }

    /// Count of lines with the given `event` name among retained lines.
    pub fn count_event(&self, event: &str) -> u64 {
        let needle = format!("\"event\":\"{}\"", json::escape(event));
        self.lines.iter().filter(|l| l.contains(&needle)).count() as u64
    }

    /// The whole log as one JSONL document (newline after every line).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for line in &self.lines {
            out.push_str(line);
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::{self, JsonValue};

    #[test]
    fn disabled_log_records_nothing() {
        let mut log = EventLog::disabled();
        log.log(0, "admit", &[("req", EventField::U64(1))]);
        assert_eq!(log.recorded(), 0);
        assert_eq!(log.to_jsonl(), "");
    }

    #[test]
    fn lines_are_valid_json_with_stable_field_order() {
        let mut log = EventLog::with_capacity(16);
        log.log(
            3,
            "preempt",
            &[
                ("req", EventField::U64(7)),
                ("pages", EventField::U64(12)),
                ("policy", EventField::Str("fcfs_preempt")),
                ("swap_s", EventField::F64(0.25)),
            ],
        );
        let line = log.lines().next().unwrap();
        assert_eq!(
            line,
            "{\"step\":3,\"event\":\"preempt\",\"req\":7,\"pages\":12,\
             \"policy\":\"fcfs_preempt\",\"swap_s\":0.25}"
        );
        let parsed = json::parse(line).unwrap();
        assert_eq!(
            parsed.get("event").and_then(JsonValue::as_str),
            Some("preempt")
        );
        assert_eq!(parsed.get("req").and_then(JsonValue::as_f64), Some(7.0));
    }

    #[test]
    fn nonfinite_floats_render_as_null() {
        let mut log = EventLog::with_capacity(4);
        log.log(0, "x", &[("v", EventField::F64(f64::NAN))]);
        let parsed = json::parse(log.lines().next().unwrap()).unwrap();
        assert_eq!(parsed.get("v"), Some(&JsonValue::Null));
    }

    #[test]
    fn capacity_drops_oldest() {
        let mut log = EventLog::with_capacity(2);
        for i in 0..5 {
            log.log(i, "tick", &[]);
        }
        assert_eq!(log.recorded(), 5);
        assert_eq!(log.dropped(), 3);
        let steps: Vec<String> = log.lines().map(String::from).collect();
        assert!(steps[0].starts_with("{\"step\":3,"));
        assert!(steps[1].starts_with("{\"step\":4,"));
    }

    #[test]
    fn count_event_filters_by_name() {
        let mut log = EventLog::with_capacity(16);
        log.log(0, "admit", &[]);
        log.log(1, "admit", &[]);
        log.log(2, "complete", &[]);
        assert_eq!(log.count_event("admit"), 2);
        assert_eq!(log.count_event("complete"), 1);
        assert_eq!(log.count_event("missing"), 0);
    }
}
