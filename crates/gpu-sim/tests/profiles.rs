//! Shipped-profile lock: every `.devspec` / `.topo` file embedded in the
//! crate must parse, and the five device profiles must match the legacy
//! hard-coded constructor values field for field. A profile edit that
//! drifts from the published datasheet numbers fails here, not in a
//! downstream figure.

use bd_gpu_sim::{
    builtin_device, builtin_topology, ArchGen, DeviceSpec, GpuArch, TopologySpec, BUILTIN_PROFILES,
    BUILTIN_TOPOLOGIES,
};

/// The five evaluation GPUs' datasheet values (paper §VI), as the legacy
/// constructors hard-coded them before the declarative profiles existed.
fn legacy_expected() -> Vec<(&'static str, GpuArch)> {
    vec![
        (
            "a100",
            GpuArch {
                name: "A100".to_string(),
                gen: ArchGen::Ampere,
                sms: 108,
                clock_ghz: 1.41,
                dram_bw_gbs: 2039.0,
                dram_gb: 80.0,
                tc_fp16_tflops: 312.0,
                tc_fp8_tflops: 0.0,
                tc_fp4_tflops: 0.0,
                cuda_fp32_tflops: 19.5,
                smem_kb_per_sm: 164,
                l2_mb: 40.0,
                mem_efficiency: 0.82,
                launch_overhead_us: 4.0,
                warps_to_saturate: 8.0,
                cuda_issue_efficiency: 0.9,
            },
        ),
        (
            "rtx4090",
            GpuArch {
                name: "RTX4090".to_string(),
                gen: ArchGen::Ada,
                sms: 128,
                clock_ghz: 2.52,
                dram_bw_gbs: 1008.0,
                dram_gb: 24.0,
                tc_fp16_tflops: 165.0,
                tc_fp8_tflops: 330.0,
                tc_fp4_tflops: 0.0,
                cuda_fp32_tflops: 82.6,
                smem_kb_per_sm: 100,
                l2_mb: 72.0,
                mem_efficiency: 0.85,
                launch_overhead_us: 3.5,
                warps_to_saturate: 8.0,
                cuda_issue_efficiency: 0.45,
            },
        ),
        (
            "h100",
            GpuArch {
                name: "H100".to_string(),
                gen: ArchGen::Hopper,
                sms: 132,
                clock_ghz: 1.83,
                dram_bw_gbs: 3350.0,
                dram_gb: 80.0,
                tc_fp16_tflops: 989.0,
                tc_fp8_tflops: 1979.0,
                tc_fp4_tflops: 0.0,
                cuda_fp32_tflops: 67.0,
                smem_kb_per_sm: 228,
                l2_mb: 50.0,
                mem_efficiency: 0.8,
                launch_overhead_us: 3.0,
                warps_to_saturate: 10.0,
                cuda_issue_efficiency: 0.9,
            },
        ),
        (
            "rtx5090",
            GpuArch {
                name: "RTX5090".to_string(),
                gen: ArchGen::Blackwell,
                sms: 170,
                clock_ghz: 2.41,
                dram_bw_gbs: 1792.0,
                dram_gb: 32.0,
                tc_fp16_tflops: 210.0,
                tc_fp8_tflops: 419.0,
                tc_fp4_tflops: 838.0,
                cuda_fp32_tflops: 104.8,
                smem_kb_per_sm: 100,
                l2_mb: 96.0,
                mem_efficiency: 0.86,
                launch_overhead_us: 3.0,
                warps_to_saturate: 8.0,
                cuda_issue_efficiency: 0.5,
            },
        ),
        (
            "rtx_pro6000",
            GpuArch {
                name: "RTX PRO 6000".to_string(),
                gen: ArchGen::Blackwell,
                sms: 188,
                clock_ghz: 2.45,
                dram_bw_gbs: 1792.0,
                dram_gb: 96.0,
                tc_fp16_tflops: 252.0,
                tc_fp8_tflops: 503.0,
                tc_fp4_tflops: 1007.0,
                cuda_fp32_tflops: 118.0,
                smem_kb_per_sm: 100,
                l2_mb: 128.0,
                mem_efficiency: 0.84,
                launch_overhead_us: 3.0,
                warps_to_saturate: 8.0,
                cuda_issue_efficiency: 0.5,
            },
        ),
    ]
}

#[test]
fn every_shipped_devspec_parses_and_matches_the_legacy_values() {
    let expected = legacy_expected();
    assert_eq!(BUILTIN_PROFILES.len(), expected.len());
    for ((key, text), (want_key, want)) in BUILTIN_PROFILES.iter().zip(&expected) {
        assert_eq!(key, want_key, "profile order drifted");
        let spec = DeviceSpec::parse(text)
            .unwrap_or_else(|e| panic!("shipped profile {key} failed to parse: {e}"));
        let arch = spec.arch();
        // Field for field, not just PartialEq: a mismatch names the field.
        assert_eq!(arch.name, want.name, "{key}: name");
        assert_eq!(arch.gen, want.gen, "{key}: gen");
        assert_eq!(arch.sms, want.sms, "{key}: sms");
        assert_eq!(arch.clock_ghz, want.clock_ghz, "{key}: clock_ghz");
        assert_eq!(arch.dram_bw_gbs, want.dram_bw_gbs, "{key}: dram_bw_gbs");
        assert_eq!(arch.dram_gb, want.dram_gb, "{key}: dram_gb");
        assert_eq!(arch.tc_fp16_tflops, want.tc_fp16_tflops, "{key}: tc_fp16");
        assert_eq!(arch.tc_fp8_tflops, want.tc_fp8_tflops, "{key}: tc_fp8");
        assert_eq!(arch.tc_fp4_tflops, want.tc_fp4_tflops, "{key}: tc_fp4");
        assert_eq!(
            arch.cuda_fp32_tflops, want.cuda_fp32_tflops,
            "{key}: cuda_fp32"
        );
        assert_eq!(
            arch.smem_kb_per_sm, want.smem_kb_per_sm,
            "{key}: smem_kb_per_sm"
        );
        assert_eq!(arch.l2_mb, want.l2_mb, "{key}: l2_mb");
        assert_eq!(
            arch.mem_efficiency, want.mem_efficiency,
            "{key}: mem_efficiency"
        );
        assert_eq!(
            arch.launch_overhead_us, want.launch_overhead_us,
            "{key}: launch_overhead_us"
        );
        assert_eq!(
            arch.warps_to_saturate, want.warps_to_saturate,
            "{key}: warps_to_saturate"
        );
        assert_eq!(
            arch.cuda_issue_efficiency, want.cuda_issue_efficiency,
            "{key}: cuda_issue_efficiency"
        );
        // The lookup path and the render→parse round trip agree too.
        assert_eq!(
            builtin_device(key).as_ref(),
            Some(want),
            "{key}: builtin_device"
        );
        let round = DeviceSpec::parse(&spec.to_text()).expect("round trip parses");
        assert_eq!(round.arch(), want, "{key}: to_text round trip");
    }
}

#[test]
fn legacy_constructors_delegate_to_the_shipped_profiles() {
    let constructed = [
        GpuArch::a100(),
        GpuArch::rtx4090(),
        GpuArch::h100(),
        GpuArch::rtx5090(),
        GpuArch::rtx_pro6000(),
    ];
    for (arch, (key, want)) in constructed.iter().zip(legacy_expected()) {
        assert_eq!(arch, &want, "{key}: constructor disagrees with profile");
    }
    assert_eq!(GpuArch::all().len(), 5);
}

#[test]
fn every_shipped_topology_parses_resolves_and_names_real_devices() {
    assert_eq!(BUILTIN_TOPOLOGIES.len(), 2);
    for (key, text) in BUILTIN_TOPOLOGIES {
        let spec = TopologySpec::parse(text)
            .unwrap_or_else(|e| panic!("shipped topology {key} failed to parse: {e}"));
        let topo = spec
            .resolve()
            .unwrap_or_else(|e| panic!("shipped topology {key} failed to resolve: {e}"));
        assert_eq!(topo.name(), key, "{key}: topology name");
        let n = topo
            .device_count()
            .expect("shipped topologies are hierarchical");
        assert!(n > 0);
        assert_eq!(topo.device_archs().len(), n);
        assert_eq!(topo.device_weights().len(), n);
        assert!(topo
            .device_weights()
            .iter()
            .all(|w| w.is_finite() && *w > 0.0));
        assert!(builtin_topology(key).is_some(), "{key}: lookup path");
    }
    // The mixed fleet is the heterogeneity bench substrate: 2×H100 ahead
    // of 2×A100, with the H100s weighted strictly heavier.
    let mixed = builtin_topology("mixed_h100_a100").expect("shipped");
    let names: Vec<&str> = mixed
        .device_archs()
        .iter()
        .map(|a| a.name.as_str())
        .collect();
    assert_eq!(names, ["H100", "H100", "A100", "A100"]);
    let w = mixed.device_weights();
    assert!(w[0] > w[2], "H100 must out-weigh A100");
}
