//! Property-based tests for the GPU execution model.

use bd_gpu_sim::*;
use proptest::prelude::*;

fn arb_shape() -> impl Strategy<Value = MmaShape> {
    prop_oneof![
        Just(MmaShape::M16N8K16),
        Just(MmaShape::M16N8K8),
        Just(MmaShape::M16N8K32Fp4),
    ]
}

fn arb_operand() -> impl Strategy<Value = Operand> {
    prop_oneof![Just(Operand::A), Just(Operand::B), Just(Operand::Acc)]
}

proptest! {
    /// coords/position are mutual inverses for every layout and slot.
    #[test]
    fn fragment_mapping_inverts(shape in arb_shape(), operand in arb_operand(),
                                lane in 0usize..32, reg_seed in 0usize..16) {
        let layout = FragmentLayout::new(shape, operand);
        let reg = reg_seed % layout.regs_per_lane();
        let (r, c) = layout.coords(lane, reg);
        prop_assert_eq!(layout.position(r, c), (lane, reg));
    }

    /// A tile survives ldmatrix → stsm for every layout.
    #[test]
    fn ldmatrix_stsm_round_trip(shape in arb_shape(), operand in arb_operand(), seed: u64) {
        let layout = FragmentLayout::new(shape, operand);
        let (rows, cols) = layout.dims();
        let mut state = seed;
        let tile = Tile::from_fn(rows, cols, |_, _| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) as i32 % 17) as f32 * 0.25
        });
        let frag = ldmatrix(&tile, layout);
        prop_assert_eq!(stsm(&frag, layout), tile);
    }

    /// mma through fragments equals the dense reference product.
    #[test]
    fn mma_equals_reference(seed: u64) {
        let shape = MmaShape::M16N8K16;
        let mut s = seed;
        let mut next = move || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((s >> 33) as i32 % 9) as f32 * 0.5 - 2.0
        };
        let a = Tile::from_fn(16, 16, |_, _| next());
        let b = Tile::from_fn(16, 8, |_, _| next());
        let fa = ldmatrix(&a, FragmentLayout::new(shape, Operand::A));
        let fb = ldmatrix(&b, FragmentLayout::new(shape, Operand::B));
        let mut acc = AccFragment::zeroed(shape);
        mma(shape, &fa, &fb, &mut acc);
        prop_assert!(acc.to_tile().max_abs_diff(&a.matmul(&b)) < 0.05);
    }

    /// lop3 computes its LUT for arbitrary immediates and inputs.
    #[test]
    fn lop3_is_a_lut(a: u32, b: u32, c: u32, imm: u8) {
        let out = lop3(a, b, c, imm);
        for bit in 0..32 {
            let idx = (((a >> bit) & 1) << 2) | (((b >> bit) & 1) << 1) | ((c >> bit) & 1);
            let expect = (imm >> idx) & 1;
            prop_assert_eq!((out >> bit) & 1, u32::from(expect));
        }
    }

    /// shfl_xor butterfly computes the same reduction on every lane as a
    /// sequential fold, for any associative-commutative op (max here).
    #[test]
    fn shfl_reduces_like_fold(values in prop::collection::vec(-100.0f32..100.0, 32)) {
        let arr: [f32; 32] = values.clone().try_into().unwrap();
        let (out, steps) = shfl_xor_reduce(&arr, f32::max);
        let expect = values.iter().fold(f32::NEG_INFINITY, |a, &b| a.max(b));
        prop_assert_eq!(steps, 5);
        for &o in &out {
            prop_assert_eq!(o, expect);
        }
    }

    /// Bank-conflict count is invariant under address permutation and
    /// bounded by [optimal, 32 × optimal].
    #[test]
    fn conflicts_bounded_and_permutation_invariant(
        mut addrs in prop::collection::vec(0usize..4096, 32),
        swap in prop::collection::vec((0usize..32, 0usize..32), 0..8),
    ) {
        // Align to 4-byte words.
        for a in &mut addrs {
            *a &= !3;
        }
        let t1 = warp_transactions(&addrs, 4);
        let opt = smem::optimal_transactions(&addrs, 4).max(1);
        prop_assert!(t1 >= opt, "{t1} < optimal {opt}");
        prop_assert!(t1 <= opt * 32);
        let mut shuffled = addrs.clone();
        for (i, j) in swap {
            shuffled.swap(i, j);
        }
        prop_assert_eq!(warp_transactions(&shuffled, 4), t1);
    }

    /// Cost model monotonicity: more bytes, more MACs, or more CUDA slots
    /// never make a kernel faster.
    #[test]
    fn cost_is_monotone(bytes in 1e3f64..1e9, macs in 0f64..1e10, slots in 0f64..1e10) {
        let arch = GpuArch::a100();
        let mut p = KernelProfile::new("m");
        p.ctas = 512.0;
        p.dram_read_bytes = bytes;
        p.tc_macs_fp16 = macs;
        p.cuda.misc = slots;
        let base = arch.evaluate(&p).total;
        let mut bigger = p.clone();
        bigger.dram_read_bytes *= 1.5;
        prop_assert!(arch.evaluate(&bigger).total >= base);
        let mut bigger = p.clone();
        bigger.tc_macs_fp16 += 1e9;
        prop_assert!(arch.evaluate(&bigger).total >= base);
        let mut bigger = p.clone();
        bigger.cuda.dequant += 1e9;
        prop_assert!(arch.evaluate(&bigger).total >= base);
    }

    /// Occupancy factor is monotone in grid size and bounded in (0, 1].
    #[test]
    fn occupancy_monotone(ctas in 1f64..100000.0, warps in 1f64..16.0) {
        let arch = GpuArch::h100();
        let f = arch.occupancy_factor(ctas, warps);
        prop_assert!(f > 0.0 && f <= 1.0);
        prop_assert!(arch.occupancy_factor(ctas * 2.0, warps) >= f);
        prop_assert!(arch.occupancy_factor(ctas, (warps * 2.0).min(32.0)) >= f);
    }

    /// Overlap combinator bounds: total is at least the max component and
    /// at most the serial sum (plus launch overhead).
    #[test]
    fn latency_within_roofline_bounds(bytes in 1e4f64..1e9, macs in 1e3f64..1e10) {
        let arch = GpuArch::rtx4090();
        let mut p = KernelProfile::new("m");
        p.ctas = 4096.0;
        p.warps_per_cta = 8.0;
        p.dram_read_bytes = bytes;
        p.tc_macs_fp16 = macs;
        let b = arch.evaluate(&p);
        let serial = b.t_mem + b.t_tc + b.t_cuda + b.t_smem;
        prop_assert!(b.total + 1e-12 >= b.t_mem.max(b.t_tc), "below roofline");
        prop_assert!(b.total <= serial / b.occupancy + b.t_launch + 1e-9, "above serial");
    }
}
