//! Property-based tests for the GPU execution model.

use bd_gpu_sim::*;
use proptest::prelude::*;

fn arb_shape() -> impl Strategy<Value = MmaShape> {
    prop_oneof![
        Just(MmaShape::M16N8K16),
        Just(MmaShape::M16N8K8),
        Just(MmaShape::M16N8K32Fp4),
    ]
}

fn arb_operand() -> impl Strategy<Value = Operand> {
    prop_oneof![Just(Operand::A), Just(Operand::B), Just(Operand::Acc)]
}

proptest! {
    /// coords/position are mutual inverses for every layout and slot.
    #[test]
    fn fragment_mapping_inverts(shape in arb_shape(), operand in arb_operand(),
                                lane in 0usize..32, reg_seed in 0usize..16) {
        let layout = FragmentLayout::new(shape, operand);
        let reg = reg_seed % layout.regs_per_lane();
        let (r, c) = layout.coords(lane, reg);
        prop_assert_eq!(layout.position(r, c), (lane, reg));
    }

    /// A tile survives ldmatrix → stsm for every layout.
    #[test]
    fn ldmatrix_stsm_round_trip(shape in arb_shape(), operand in arb_operand(), seed: u64) {
        let layout = FragmentLayout::new(shape, operand);
        let (rows, cols) = layout.dims();
        let mut state = seed;
        let tile = Tile::from_fn(rows, cols, |_, _| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) as i32 % 17) as f32 * 0.25
        });
        let frag = ldmatrix(&tile, layout);
        prop_assert_eq!(stsm(&frag, layout), tile);
    }

    /// mma through fragments equals the dense reference product.
    #[test]
    fn mma_equals_reference(seed: u64) {
        let shape = MmaShape::M16N8K16;
        let mut s = seed;
        let mut next = move || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((s >> 33) as i32 % 9) as f32 * 0.5 - 2.0
        };
        let a = Tile::from_fn(16, 16, |_, _| next());
        let b = Tile::from_fn(16, 8, |_, _| next());
        let fa = ldmatrix(&a, FragmentLayout::new(shape, Operand::A));
        let fb = ldmatrix(&b, FragmentLayout::new(shape, Operand::B));
        let mut acc = AccFragment::zeroed(shape);
        mma(shape, &fa, &fb, &mut acc);
        prop_assert!(acc.to_tile().max_abs_diff(&a.matmul(&b)) < 0.05);
    }

    /// lop3 computes its LUT for arbitrary immediates and inputs.
    #[test]
    fn lop3_is_a_lut(a: u32, b: u32, c: u32, imm: u8) {
        let out = lop3(a, b, c, imm);
        for bit in 0..32 {
            let idx = (((a >> bit) & 1) << 2) | (((b >> bit) & 1) << 1) | ((c >> bit) & 1);
            let expect = (imm >> idx) & 1;
            prop_assert_eq!((out >> bit) & 1, u32::from(expect));
        }
    }

    /// shfl_xor butterfly computes the same reduction on every lane as a
    /// sequential fold, for any associative-commutative op (max here).
    #[test]
    fn shfl_reduces_like_fold(values in prop::collection::vec(-100.0f32..100.0, 32)) {
        let arr: [f32; 32] = values.clone().try_into().unwrap();
        let (out, steps) = shfl_xor_reduce(&arr, f32::max);
        let expect = values.iter().fold(f32::NEG_INFINITY, |a, &b| a.max(b));
        prop_assert_eq!(steps, 5);
        for &o in &out {
            prop_assert_eq!(o, expect);
        }
    }

    /// Bank-conflict count is invariant under address permutation and
    /// bounded by [optimal, 32 × optimal].
    #[test]
    fn conflicts_bounded_and_permutation_invariant(
        mut addrs in prop::collection::vec(0usize..4096, 32),
        swap in prop::collection::vec((0usize..32, 0usize..32), 0..8),
    ) {
        // Align to 4-byte words.
        for a in &mut addrs {
            *a &= !3;
        }
        let t1 = warp_transactions(&addrs, 4);
        let opt = smem::optimal_transactions(&addrs, 4).max(1);
        prop_assert!(t1 >= opt, "{t1} < optimal {opt}");
        prop_assert!(t1 <= opt * 32);
        let mut shuffled = addrs.clone();
        for (i, j) in swap {
            shuffled.swap(i, j);
        }
        prop_assert_eq!(warp_transactions(&shuffled, 4), t1);
    }

    /// Cost model monotonicity: more bytes, more MACs, or more CUDA slots
    /// never make a kernel faster.
    #[test]
    fn cost_is_monotone(bytes in 1e3f64..1e9, macs in 0f64..1e10, slots in 0f64..1e10) {
        let arch = GpuArch::a100();
        let mut p = KernelProfile::new("m");
        p.ctas = 512.0;
        p.dram_read_bytes = bytes;
        p.tc_macs_fp16 = macs;
        p.cuda.misc = slots;
        let base = arch.evaluate(&p).total;
        let mut bigger = p.clone();
        bigger.dram_read_bytes *= 1.5;
        prop_assert!(arch.evaluate(&bigger).total >= base);
        let mut bigger = p.clone();
        bigger.tc_macs_fp16 += 1e9;
        prop_assert!(arch.evaluate(&bigger).total >= base);
        let mut bigger = p.clone();
        bigger.cuda.dequant += 1e9;
        prop_assert!(arch.evaluate(&bigger).total >= base);
    }

    /// Occupancy factor is monotone in grid size and bounded in (0, 1].
    #[test]
    fn occupancy_monotone(ctas in 1f64..100000.0, warps in 1f64..16.0) {
        let arch = GpuArch::h100();
        let f = arch.occupancy_factor(ctas, warps);
        prop_assert!(f > 0.0 && f <= 1.0);
        prop_assert!(arch.occupancy_factor(ctas * 2.0, warps) >= f);
        prop_assert!(arch.occupancy_factor(ctas, (warps * 2.0).min(32.0)) >= f);
    }

    /// Overlap combinator bounds: total is at least the max component and
    /// at most the serial sum (plus launch overhead).
    #[test]
    fn latency_within_roofline_bounds(bytes in 1e4f64..1e9, macs in 1e3f64..1e10) {
        let arch = GpuArch::rtx4090();
        let mut p = KernelProfile::new("m");
        p.ctas = 4096.0;
        p.warps_per_cta = 8.0;
        p.dram_read_bytes = bytes;
        p.tc_macs_fp16 = macs;
        let b = arch.evaluate(&p);
        let serial = b.t_mem + b.t_tc + b.t_cuda + b.t_smem;
        prop_assert!(b.total + 1e-12 >= b.t_mem.max(b.t_tc), "below roofline");
        prop_assert!(b.total <= serial / b.occupancy + b.t_launch + 1e-9, "above serial");
    }

    /// `.devspec` render → parse is the identity on ANY valid device
    /// profile: every field round-trips bitwise (f64 `Display` is
    /// shortest-round-trip).
    #[test]
    fn devspec_round_trips_arbitrary_valid_profiles(
        name in prop_oneof![
            Just("TestGPU"), Just("X-2000"), Just("dev_under_test"), Just("RTX PRO 6000"),
        ],
        gen in prop_oneof![
            Just(ArchGen::Ampere), Just(ArchGen::Ada),
            Just(ArchGen::Hopper), Just(ArchGen::Blackwell),
        ],
        sms in 1u32..1024,
        clock_ghz in 0.1f64..5.0,
        dram_bw_gbs in 1.0f64..10000.0,
        dram_gb in 1.0f64..256.0,
        tc_fp16_tflops in 1.0f64..5000.0,
        tc_fp8_tflops in 0.0f64..5000.0,
        tc_fp4_tflops in 0.0f64..5000.0,
        cuda_fp32_tflops in 1.0f64..500.0,
        smem_kb_per_sm in 1u32..512,
        l2_mb in 0.5f64..256.0,
        mem_efficiency in 0.01f64..1.0,
        launch_overhead_us in 0.1f64..20.0,
        warps_to_saturate in 1.0f64..32.0,
        cuda_issue_efficiency in 0.01f64..1.0,
    ) {
        let arch = GpuArch {
            name: name.to_string(),
            gen,
            sms,
            clock_ghz,
            dram_bw_gbs,
            dram_gb,
            tc_fp16_tflops,
            tc_fp8_tflops,
            tc_fp4_tflops,
            cuda_fp32_tflops,
            smem_kb_per_sm,
            l2_mb,
            mem_efficiency,
            launch_overhead_us,
            warps_to_saturate,
            cuda_issue_efficiency,
        };
        let text = DeviceSpec::from_arch(arch.clone()).to_text();
        let parsed = DeviceSpec::parse(&text).expect("rendered spec parses");
        prop_assert_eq!(parsed.arch(), &arch, "round trip is not the identity");
    }

    /// Every class of malformed `.devspec` input is rejected with the
    /// matching *typed* error, never a panic or a silent default.
    #[test]
    fn devspec_rejects_malformed_input_with_typed_errors(mutation in 0usize..6) {
        let good = DeviceSpec::from_arch(GpuArch::a100()).to_text();
        let (bad, check): (String, fn(&SpecError) -> bool) = match mutation {
            0 => (
                good.lines().filter(|l| !l.starts_with("clock_ghz"))
                    .collect::<Vec<_>>().join("\n"),
                |e| matches!(e, SpecError::MissingKey { .. }),
            ),
            1 => (
                format!("{good}sms = 99\n"),
                |e| matches!(e, SpecError::DuplicateKey { .. }),
            ),
            2 => (
                format!("{good}bogus_key = 1\n"),
                |e| matches!(e, SpecError::UnknownKey { .. }),
            ),
            3 => (
                good.replace("gen = ampere", "gen = pascal"),
                |e| matches!(e, SpecError::BadValue { .. }),
            ),
            4 => (
                good.replace("[device]", "just some garbage"),
                |e| matches!(e, SpecError::Syntax { .. }),
            ),
            _ => (
                good.replace("mem_efficiency = 0.82", "mem_efficiency = 1.5"),
                |e| matches!(e, SpecError::BadValue { .. }),
            ),
        };
        let err = DeviceSpec::parse(&bad).expect_err("malformed input must not parse");
        prop_assert!(check(&err), "mutation {} produced wrong error: {}", mutation, err);
    }

    /// Hierarchical all-reduce pricing for ANY generated fleet is finite,
    /// non-negative, and never beats a same-size flat (single-switch)
    /// fleet over the topology's best link; parallel per-island swap never
    /// costs more than serializing the same bytes over the host link.
    #[test]
    fn hierarchical_pricing_bounded_below_by_ideal_flat(
        island_sizes in prop::collection::vec(1usize..4, 1..4),
        device_pick in prop::collection::vec(0usize..5, 9),
        link_params in prop::collection::vec((1.0f64..1000.0, 0.1f64..50.0), 5),
        payload in 1e3f64..1e8,
    ) {
        let device_names = ["a100", "rtx4090", "h100", "rtx5090", "rtx_pro6000"];
        let mut text = String::from(
            "[topology]\nname = generated\ncross_link = cross\nhost_link = host\n",
        );
        let (cross_bw, cross_lat) = link_params[3];
        let (host_bw, host_lat) = link_params[4];
        text.push_str(&format!("[link cross]\ngbs = {cross_bw}\nlatency_us = {cross_lat}\n"));
        text.push_str(&format!("[link host]\ngbs = {host_bw}\nlatency_us = {host_lat}\n"));
        let mut pick = device_pick.iter().copied().cycle();
        let mut best_bw = cross_bw;
        let mut best_lat = cross_lat;
        for (i, &size) in island_sizes.iter().enumerate() {
            let (bw, lat) = link_params[i];
            best_bw = best_bw.max(bw);
            best_lat = best_lat.min(lat);
            let members: Vec<&str> = (0..size)
                .map(|_| device_names[pick.next().unwrap()])
                .collect();
            text.push_str(&format!("[link l{i}]\ngbs = {bw}\nlatency_us = {lat}\n"));
            text.push_str(&format!(
                "[island i{i}]\ndevices = {}\nlink = l{i}\n",
                members.join(", ")
            ));
        }
        let topo = TopologySpec::parse(&text)
            .expect("generated topology parses")
            .resolve()
            .expect("builtin devices resolve");
        let total: usize = island_sizes.iter().sum();
        let ideal = Topology::flat(InterconnectModel::new(best_bw, best_lat));
        for devices in 1..=total {
            let s = topo.allreduce_s(payload, devices);
            prop_assert!(s.is_finite() && s >= 0.0, "devices={}: {}", devices, s);
            let floor = ideal.allreduce_s(payload, devices);
            prop_assert!(
                s + 1e-15 >= floor,
                "devices={}: hierarchical {} beat ideal flat {}", devices, s, floor
            );
        }
        // Per-device parallel swap vs serializing the total: no island
        // host override is present, so every share moves on the global
        // host link and max-of-shares can't exceed the serial transfer.
        let shares: Vec<f64> = (0..total).map(|d| payload * (d + 1) as f64 / total as f64).collect();
        let total_bytes: f64 = shares.iter().sum();
        let parallel = topo.swap_transfer_s(total_bytes, &shares);
        prop_assert!(parallel.is_finite() && parallel >= 0.0);
        let serial = InterconnectModel::new(host_bw, host_lat).transfer_s(total_bytes);
        prop_assert!(
            parallel <= serial + 1e-15,
            "parallel swap {} above serial host transfer {}", parallel, serial
        );
    }
}
