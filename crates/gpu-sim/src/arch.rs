//! GPU architecture descriptors for the five evaluation platforms
//! (paper §VI: RTX 5090 / RTX PRO 6000 Blackwell, H100 Hopper, RTX 4090 Ada,
//! A100 Ampere).
//!
//! Peak numbers are public-datasheet values (dense, no sparsity). The three
//! *calibration* constants — achieved-bandwidth fraction, kernel launch
//! overhead, and warps-to-saturate — are fixed per architecture and shared
//! by **every** kernel and experiment, so relative comparisons between
//! systems are never tuned per-figure.

use std::fmt;

/// GPU hardware generation, which gates instruction availability.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ArchGen {
    /// SM80 (A100): `mma` + `cp.async`.
    Ampere,
    /// SM89 (RTX 4090): Ampere ISA with FP8 tensor cores.
    Ada,
    /// SM90 (H100): `wgmma`, TMA, warp specialization.
    Hopper,
    /// SM100/SM120 (RTX 5090, RTX PRO 6000): native MXFP4/NVFP4 MMA.
    Blackwell,
}

impl ArchGen {
    /// Warpgroup MMA (`wgmma`) availability.
    pub fn supports_wgmma(self) -> bool {
        self >= ArchGen::Hopper
    }

    /// Tensor Memory Accelerator availability.
    pub fn supports_tma(self) -> bool {
        self >= ArchGen::Hopper
    }

    /// Native block-scaled FP4 MMA availability.
    pub fn supports_fp4_mma(self) -> bool {
        self == ArchGen::Blackwell
    }
}

impl fmt::Display for ArchGen {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArchGen::Ampere => write!(f, "Ampere"),
            ArchGen::Ada => write!(f, "Ada"),
            ArchGen::Hopper => write!(f, "Hopper"),
            ArchGen::Blackwell => write!(f, "Blackwell"),
        }
    }
}

/// A concrete GPU with peak rates and calibration constants.
///
/// The five evaluation GPUs are defined declaratively as
/// `profiles/*.devspec` files (embedded at compile time); the named
/// constructors parse those files, so a profile edit is the single source
/// of truth. Arbitrary hardware comes in the same way via
/// [`crate::spec::DeviceSpec::parse`].
#[derive(Clone, Debug, PartialEq)]
pub struct GpuArch {
    /// Marketing name, e.g. `"A100"`.
    pub name: String,
    /// Hardware generation.
    pub gen: ArchGen,
    /// Streaming multiprocessor count.
    pub sms: u32,
    /// Boost clock in GHz.
    pub clock_ghz: f64,
    /// Peak DRAM bandwidth, GB/s.
    pub dram_bw_gbs: f64,
    /// DRAM capacity, GB.
    pub dram_gb: f64,
    /// Dense FP16 Tensor Core throughput, TFLOPS.
    pub tc_fp16_tflops: f64,
    /// Dense FP8 Tensor Core throughput, TFLOPS (0 when absent).
    pub tc_fp8_tflops: f64,
    /// Dense FP4 (MX/NV) Tensor Core throughput, TFLOPS (0 when absent).
    pub tc_fp4_tflops: f64,
    /// CUDA-core FP32 throughput, TFLOPS.
    pub cuda_fp32_tflops: f64,
    /// Shared memory per SM, KiB.
    pub smem_kb_per_sm: u32,
    /// L2 capacity, MiB.
    pub l2_mb: f64,
    /// Calibration: fraction of peak DRAM bandwidth attention-style kernels
    /// achieve (strided KV gathers never hit 100%).
    pub mem_efficiency: f64,
    /// Calibration: per-kernel-launch overhead in microseconds (driver +
    /// grid setup + DRAM latency ramp).
    pub launch_overhead_us: f64,
    /// Calibration: resident warps per SM needed to hide memory latency.
    pub warps_to_saturate: f64,
    /// Calibration: fraction of nominal CUDA-core issue slots usable by
    /// mixed integer/FP scalar work. Datacenter parts (A100/H100) have
    /// dedicated INT32 pipes (≈0.9); consumer parts count dual-issue FP32
    /// in their nominal rate, so int-heavy dequantization gets ≈0.45-0.5.
    pub cuda_issue_efficiency: f64,
}

impl GpuArch {
    /// NVIDIA A100 SXM4 80 GB (Ampere, SM80), parsed from
    /// `profiles/a100.devspec`.
    pub fn a100() -> Self {
        crate::spec::parse_embedded("a100", include_str!("../profiles/a100.devspec"))
    }

    /// NVIDIA GeForce RTX 4090 (Ada, SM89), parsed from
    /// `profiles/rtx4090.devspec`.
    pub fn rtx4090() -> Self {
        crate::spec::parse_embedded("rtx4090", include_str!("../profiles/rtx4090.devspec"))
    }

    /// NVIDIA H100 SXM5 (Hopper, SM90), parsed from
    /// `profiles/h100.devspec`.
    pub fn h100() -> Self {
        crate::spec::parse_embedded("h100", include_str!("../profiles/h100.devspec"))
    }

    /// NVIDIA GeForce RTX 5090 (Blackwell, SM120), parsed from
    /// `profiles/rtx5090.devspec`.
    pub fn rtx5090() -> Self {
        crate::spec::parse_embedded("rtx5090", include_str!("../profiles/rtx5090.devspec"))
    }

    /// NVIDIA RTX PRO 6000 Blackwell workstation GPU, parsed from
    /// `profiles/rtx_pro6000.devspec`.
    pub fn rtx_pro6000() -> Self {
        crate::spec::parse_embedded(
            "rtx_pro6000",
            include_str!("../profiles/rtx_pro6000.devspec"),
        )
    }

    /// All five evaluation GPUs.
    pub fn all() -> Vec<GpuArch> {
        vec![
            GpuArch::a100(),
            GpuArch::rtx4090(),
            GpuArch::h100(),
            GpuArch::rtx5090(),
            GpuArch::rtx_pro6000(),
        ]
    }

    /// CUDA-core instruction issue rate, instructions/s (an FMA is one
    /// instruction at two FLOPs).
    pub fn cuda_ips(&self) -> f64 {
        self.cuda_fp32_tflops * 1e12 / 2.0
    }

    /// Issue rate achievable by kernel code mixing integer unpacking with
    /// FP math (the realistic rate for dequantization inner loops).
    pub fn cuda_ips_effective(&self) -> f64 {
        self.cuda_ips() * self.cuda_issue_efficiency
    }

    /// Aggregate shared-memory bandwidth, bytes/s (128 B per SM per clock).
    pub fn smem_bw_bytes(&self) -> f64 {
        self.sms as f64 * 128.0 * self.clock_ghz * 1e9
    }

    /// Dense Tensor Core throughput for a precision, FLOPS.
    ///
    /// Returns 0 when the precision is unsupported (callers must fall back
    /// to CUDA cores or a wider format).
    pub fn tc_flops(&self, precision: Precision) -> f64 {
        let tflops = match precision {
            Precision::Fp16 => self.tc_fp16_tflops,
            Precision::Fp8 => self.tc_fp8_tflops,
            Precision::Fp4 => self.tc_fp4_tflops,
        };
        tflops * 1e12
    }

    /// Effective DRAM bandwidth for attention-style access, bytes/s.
    pub fn effective_bw_bytes(&self) -> f64 {
        self.dram_bw_gbs * 1e9 * self.mem_efficiency
    }

    /// Modeled steady-state decode throughput, used as the placement
    /// weight on heterogeneous fleets (KV heads assigned proportionally).
    ///
    /// Low-bit decode attention streams packed KV bytes from DRAM and
    /// issues roughly one FP16 Tensor-Core MAC per packed byte, so the
    /// roofline rate is the slower of the effective DRAM byte rate and
    /// the Tensor-Core MAC rate. On every shipped profile DRAM binds —
    /// exactly the regime the paper targets — but the `min` keeps the
    /// weight honest for compute-starved spec files too.
    pub fn decode_weight(&self) -> f64 {
        let macs_per_s = self.tc_flops(Precision::Fp16) / 2.0;
        self.effective_bw_bytes().min(macs_per_s)
    }
}

impl fmt::Display for GpuArch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({})", self.name, self.gen)
    }
}

/// Tensor Core operand precision.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Precision {
    /// FP16/BF16 operands.
    Fp16,
    /// FP8 (E4M3/E5M2) operands.
    Fp8,
    /// Block-scaled FP4 (MXFP4/NVFP4) operands.
    Fp4,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_feature_gates() {
        assert!(!ArchGen::Ampere.supports_wgmma());
        assert!(!ArchGen::Ada.supports_wgmma());
        assert!(ArchGen::Hopper.supports_wgmma());
        assert!(ArchGen::Hopper.supports_tma());
        assert!(!ArchGen::Hopper.supports_fp4_mma());
        assert!(ArchGen::Blackwell.supports_fp4_mma());
    }

    #[test]
    fn spec_sanity() {
        for arch in GpuArch::all() {
            assert!(arch.dram_bw_gbs > 500.0, "{arch}");
            assert!(arch.tc_fp16_tflops > arch.cuda_fp32_tflops, "{arch}");
            assert!(arch.mem_efficiency > 0.5 && arch.mem_efficiency < 1.0);
            assert!(arch.cuda_ips() > 0.0);
            assert!(
                arch.smem_bw_bytes() > arch.dram_bw_gbs * 1e9,
                "{arch}: smem faster than DRAM"
            );
        }
    }

    #[test]
    fn fp4_only_on_blackwell() {
        assert_eq!(GpuArch::a100().tc_flops(Precision::Fp4), 0.0);
        assert_eq!(GpuArch::h100().tc_flops(Precision::Fp4), 0.0);
        assert!(GpuArch::rtx5090().tc_flops(Precision::Fp4) > 0.0);
        assert!(
            GpuArch::rtx_pro6000().tc_flops(Precision::Fp4)
                > GpuArch::rtx5090().tc_flops(Precision::Fp4)
        );
    }

    #[test]
    fn hopper_has_highest_bandwidth() {
        let h100 = GpuArch::h100();
        for other in [GpuArch::a100(), GpuArch::rtx4090(), GpuArch::rtx5090()] {
            assert!(h100.dram_bw_gbs > other.dram_bw_gbs);
        }
    }
}
