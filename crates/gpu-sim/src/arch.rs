//! GPU architecture descriptors for the five evaluation platforms
//! (paper §VI: RTX 5090 / RTX PRO 6000 Blackwell, H100 Hopper, RTX 4090 Ada,
//! A100 Ampere).
//!
//! Peak numbers are public-datasheet values (dense, no sparsity). The three
//! *calibration* constants — achieved-bandwidth fraction, kernel launch
//! overhead, and warps-to-saturate — are fixed per architecture and shared
//! by **every** kernel and experiment, so relative comparisons between
//! systems are never tuned per-figure.

use std::fmt;

/// GPU hardware generation, which gates instruction availability.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ArchGen {
    /// SM80 (A100): `mma` + `cp.async`.
    Ampere,
    /// SM89 (RTX 4090): Ampere ISA with FP8 tensor cores.
    Ada,
    /// SM90 (H100): `wgmma`, TMA, warp specialization.
    Hopper,
    /// SM100/SM120 (RTX 5090, RTX PRO 6000): native MXFP4/NVFP4 MMA.
    Blackwell,
}

impl ArchGen {
    /// Warpgroup MMA (`wgmma`) availability.
    pub fn supports_wgmma(self) -> bool {
        self >= ArchGen::Hopper
    }

    /// Tensor Memory Accelerator availability.
    pub fn supports_tma(self) -> bool {
        self >= ArchGen::Hopper
    }

    /// Native block-scaled FP4 MMA availability.
    pub fn supports_fp4_mma(self) -> bool {
        self == ArchGen::Blackwell
    }
}

impl fmt::Display for ArchGen {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArchGen::Ampere => write!(f, "Ampere"),
            ArchGen::Ada => write!(f, "Ada"),
            ArchGen::Hopper => write!(f, "Hopper"),
            ArchGen::Blackwell => write!(f, "Blackwell"),
        }
    }
}

/// A concrete GPU with peak rates and calibration constants.
#[derive(Clone, Debug, PartialEq)]
pub struct GpuArch {
    /// Marketing name, e.g. `"A100"`.
    pub name: &'static str,
    /// Hardware generation.
    pub gen: ArchGen,
    /// Streaming multiprocessor count.
    pub sms: u32,
    /// Boost clock in GHz.
    pub clock_ghz: f64,
    /// Peak DRAM bandwidth, GB/s.
    pub dram_bw_gbs: f64,
    /// DRAM capacity, GB.
    pub dram_gb: f64,
    /// Dense FP16 Tensor Core throughput, TFLOPS.
    pub tc_fp16_tflops: f64,
    /// Dense FP8 Tensor Core throughput, TFLOPS (0 when absent).
    pub tc_fp8_tflops: f64,
    /// Dense FP4 (MX/NV) Tensor Core throughput, TFLOPS (0 when absent).
    pub tc_fp4_tflops: f64,
    /// CUDA-core FP32 throughput, TFLOPS.
    pub cuda_fp32_tflops: f64,
    /// Shared memory per SM, KiB.
    pub smem_kb_per_sm: u32,
    /// L2 capacity, MiB.
    pub l2_mb: f64,
    /// Calibration: fraction of peak DRAM bandwidth attention-style kernels
    /// achieve (strided KV gathers never hit 100%).
    pub mem_efficiency: f64,
    /// Calibration: per-kernel-launch overhead in microseconds (driver +
    /// grid setup + DRAM latency ramp).
    pub launch_overhead_us: f64,
    /// Calibration: resident warps per SM needed to hide memory latency.
    pub warps_to_saturate: f64,
    /// Calibration: fraction of nominal CUDA-core issue slots usable by
    /// mixed integer/FP scalar work. Datacenter parts (A100/H100) have
    /// dedicated INT32 pipes (≈0.9); consumer parts count dual-issue FP32
    /// in their nominal rate, so int-heavy dequantization gets ≈0.45-0.5.
    pub cuda_issue_efficiency: f64,
}

impl GpuArch {
    /// NVIDIA A100 SXM4 80 GB (Ampere, SM80).
    pub fn a100() -> Self {
        GpuArch {
            name: "A100",
            gen: ArchGen::Ampere,
            sms: 108,
            clock_ghz: 1.41,
            dram_bw_gbs: 2039.0,
            dram_gb: 80.0,
            tc_fp16_tflops: 312.0,
            tc_fp8_tflops: 0.0,
            tc_fp4_tflops: 0.0,
            cuda_fp32_tflops: 19.5,
            smem_kb_per_sm: 164,
            l2_mb: 40.0,
            mem_efficiency: 0.82,
            launch_overhead_us: 4.0,
            warps_to_saturate: 8.0,
            cuda_issue_efficiency: 0.9,
        }
    }

    /// NVIDIA GeForce RTX 4090 (Ada, SM89).
    pub fn rtx4090() -> Self {
        GpuArch {
            name: "RTX4090",
            gen: ArchGen::Ada,
            sms: 128,
            clock_ghz: 2.52,
            dram_bw_gbs: 1008.0,
            dram_gb: 24.0,
            tc_fp16_tflops: 165.0,
            tc_fp8_tflops: 330.0,
            tc_fp4_tflops: 0.0,
            cuda_fp32_tflops: 82.6,
            smem_kb_per_sm: 100,
            l2_mb: 72.0,
            mem_efficiency: 0.85,
            launch_overhead_us: 3.5,
            warps_to_saturate: 8.0,
            cuda_issue_efficiency: 0.45,
        }
    }

    /// NVIDIA H100 SXM5 (Hopper, SM90).
    pub fn h100() -> Self {
        GpuArch {
            name: "H100",
            gen: ArchGen::Hopper,
            sms: 132,
            clock_ghz: 1.83,
            dram_bw_gbs: 3350.0,
            dram_gb: 80.0,
            tc_fp16_tflops: 989.0,
            tc_fp8_tflops: 1979.0,
            tc_fp4_tflops: 0.0,
            cuda_fp32_tflops: 67.0,
            smem_kb_per_sm: 228,
            l2_mb: 50.0,
            mem_efficiency: 0.80,
            launch_overhead_us: 3.0,
            warps_to_saturate: 10.0,
            cuda_issue_efficiency: 0.9,
        }
    }

    /// NVIDIA GeForce RTX 5090 (Blackwell, SM120).
    pub fn rtx5090() -> Self {
        GpuArch {
            name: "RTX5090",
            gen: ArchGen::Blackwell,
            sms: 170,
            clock_ghz: 2.41,
            dram_bw_gbs: 1792.0,
            dram_gb: 32.0,
            tc_fp16_tflops: 210.0,
            tc_fp8_tflops: 419.0,
            tc_fp4_tflops: 838.0,
            cuda_fp32_tflops: 104.8,
            smem_kb_per_sm: 100,
            l2_mb: 96.0,
            mem_efficiency: 0.86,
            launch_overhead_us: 3.0,
            warps_to_saturate: 8.0,
            cuda_issue_efficiency: 0.5,
        }
    }

    /// NVIDIA RTX PRO 6000 Blackwell workstation GPU.
    pub fn rtx_pro6000() -> Self {
        GpuArch {
            name: "RTX PRO 6000",
            gen: ArchGen::Blackwell,
            sms: 188,
            clock_ghz: 2.45,
            dram_bw_gbs: 1792.0,
            dram_gb: 96.0,
            tc_fp16_tflops: 252.0,
            tc_fp8_tflops: 503.0,
            tc_fp4_tflops: 1007.0,
            cuda_fp32_tflops: 118.0,
            smem_kb_per_sm: 100,
            l2_mb: 128.0,
            mem_efficiency: 0.84,
            launch_overhead_us: 3.0,
            warps_to_saturate: 8.0,
            cuda_issue_efficiency: 0.5,
        }
    }

    /// All five evaluation GPUs.
    pub fn all() -> Vec<GpuArch> {
        vec![
            GpuArch::a100(),
            GpuArch::rtx4090(),
            GpuArch::h100(),
            GpuArch::rtx5090(),
            GpuArch::rtx_pro6000(),
        ]
    }

    /// CUDA-core instruction issue rate, instructions/s (an FMA is one
    /// instruction at two FLOPs).
    pub fn cuda_ips(&self) -> f64 {
        self.cuda_fp32_tflops * 1e12 / 2.0
    }

    /// Issue rate achievable by kernel code mixing integer unpacking with
    /// FP math (the realistic rate for dequantization inner loops).
    pub fn cuda_ips_effective(&self) -> f64 {
        self.cuda_ips() * self.cuda_issue_efficiency
    }

    /// Aggregate shared-memory bandwidth, bytes/s (128 B per SM per clock).
    pub fn smem_bw_bytes(&self) -> f64 {
        self.sms as f64 * 128.0 * self.clock_ghz * 1e9
    }

    /// Dense Tensor Core throughput for a precision, FLOPS.
    ///
    /// Returns 0 when the precision is unsupported (callers must fall back
    /// to CUDA cores or a wider format).
    pub fn tc_flops(&self, precision: Precision) -> f64 {
        let tflops = match precision {
            Precision::Fp16 => self.tc_fp16_tflops,
            Precision::Fp8 => self.tc_fp8_tflops,
            Precision::Fp4 => self.tc_fp4_tflops,
        };
        tflops * 1e12
    }

    /// Effective DRAM bandwidth for attention-style access, bytes/s.
    pub fn effective_bw_bytes(&self) -> f64 {
        self.dram_bw_gbs * 1e9 * self.mem_efficiency
    }
}

impl fmt::Display for GpuArch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({})", self.name, self.gen)
    }
}

/// Tensor Core operand precision.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Precision {
    /// FP16/BF16 operands.
    Fp16,
    /// FP8 (E4M3/E5M2) operands.
    Fp8,
    /// Block-scaled FP4 (MXFP4/NVFP4) operands.
    Fp4,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_feature_gates() {
        assert!(!ArchGen::Ampere.supports_wgmma());
        assert!(!ArchGen::Ada.supports_wgmma());
        assert!(ArchGen::Hopper.supports_wgmma());
        assert!(ArchGen::Hopper.supports_tma());
        assert!(!ArchGen::Hopper.supports_fp4_mma());
        assert!(ArchGen::Blackwell.supports_fp4_mma());
    }

    #[test]
    fn spec_sanity() {
        for arch in GpuArch::all() {
            assert!(arch.dram_bw_gbs > 500.0, "{arch}");
            assert!(arch.tc_fp16_tflops > arch.cuda_fp32_tflops, "{arch}");
            assert!(arch.mem_efficiency > 0.5 && arch.mem_efficiency < 1.0);
            assert!(arch.cuda_ips() > 0.0);
            assert!(
                arch.smem_bw_bytes() > arch.dram_bw_gbs * 1e9,
                "{arch}: smem faster than DRAM"
            );
        }
    }

    #[test]
    fn fp4_only_on_blackwell() {
        assert_eq!(GpuArch::a100().tc_flops(Precision::Fp4), 0.0);
        assert_eq!(GpuArch::h100().tc_flops(Precision::Fp4), 0.0);
        assert!(GpuArch::rtx5090().tc_flops(Precision::Fp4) > 0.0);
        assert!(
            GpuArch::rtx_pro6000().tc_flops(Precision::Fp4)
                > GpuArch::rtx5090().tc_flops(Precision::Fp4)
        );
    }

    #[test]
    fn hopper_has_highest_bandwidth() {
        let h100 = GpuArch::h100();
        for other in [GpuArch::a100(), GpuArch::rtx4090(), GpuArch::rtx5090()] {
            assert!(h100.dram_bw_gbs > other.dram_bw_gbs);
        }
    }
}
