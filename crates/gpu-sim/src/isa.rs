//! Warp-level instruction models: `mma`, `ldmatrix`, `wgmma`, `lop3`,
//! `__shfl_xor_sync`, and the copy instructions the cost model charges for.
//!
//! The functional semantics here are deliberately *layout-blind*: `mma`
//! interprets whatever registers it is given through the instruction's own
//! fragment mapping, exactly like hardware. Feeding it registers filled
//! under a different mapping produces numerically wrong results — which is
//! the failure mode BitDecoding's layout induction exists to prevent.

use crate::fragment::{Fragment, FragmentLayout, MmaShape, Operand, WARP_LANES};
use crate::tile::Tile;
use bd_lowbit::E2M1;

/// A warp-wide accumulator fragment in FP32 registers.
#[derive(Clone, Debug, PartialEq)]
pub struct AccFragment {
    regs: Vec<[f32; 4]>,
    shape: MmaShape,
}

impl AccFragment {
    /// Zero accumulator for the given shape.
    pub fn zeroed(shape: MmaShape) -> Self {
        AccFragment {
            regs: vec![[0.0; 4]; WARP_LANES],
            shape,
        }
    }

    /// The instruction shape this accumulator belongs to.
    pub fn shape(&self) -> MmaShape {
        self.shape
    }

    /// Reads one accumulator register.
    pub fn get(&self, lane: usize, reg: usize) -> f32 {
        self.regs[lane][reg]
    }

    /// Writes one accumulator register.
    pub fn set(&mut self, lane: usize, reg: usize, v: f32) {
        self.regs[lane][reg] = v;
    }

    /// Gathers the `M × N` accumulator tile through the Acc layout.
    pub fn to_tile(&self) -> Tile {
        let layout = FragmentLayout::new(self.shape, Operand::Acc);
        let mut t = Tile::zeros(self.shape.m(), self.shape.n());
        for lane in 0..WARP_LANES {
            for reg in 0..layout.regs_per_lane() {
                let (r, c) = layout.coords(lane, reg);
                t[(r, c)] = self.get(lane, reg);
            }
        }
        t
    }

    /// Scatters an `M × N` tile into accumulator registers.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn from_tile(tile: &Tile, shape: MmaShape) -> Self {
        let layout = FragmentLayout::new(shape, Operand::Acc);
        assert_eq!((tile.rows(), tile.cols()), (shape.m(), shape.n()));
        let mut acc = AccFragment::zeroed(shape);
        for r in 0..shape.m() {
            for c in 0..shape.n() {
                let (lane, reg) = layout.position(r, c);
                acc.set(lane, reg, tile[(r, c)]);
            }
        }
        acc
    }
}

/// `ldmatrix`: loads a shared-memory tile into registers in the fragment
/// layout of the given operand. This is the *only* instruction that knows
/// how to produce a valid fragment from memory.
///
/// # Panics
///
/// Panics if the tile does not match the layout dimensions.
pub fn ldmatrix(tile: &Tile, layout: FragmentLayout) -> Fragment {
    Fragment::from_tile(tile, layout)
}

/// `mma.sync`: `D = A·B + C`, interpreting the operand registers through
/// the shape's fragment mappings and accumulating in FP32.
///
/// No validation of how `a`/`b` were produced is possible — mismatched
/// layouts silently compute the wrong product, as on hardware.
///
/// # Panics
///
/// Panics if register counts do not match the shape.
pub fn mma(shape: MmaShape, a: &Fragment, b: &Fragment, acc: &mut AccFragment) {
    let la = FragmentLayout::new(shape, Operand::A);
    let lb = FragmentLayout::new(shape, Operand::B);
    assert_eq!(a.regs_per_lane(), la.regs_per_lane(), "A register count");
    assert_eq!(b.regs_per_lane(), lb.regs_per_lane(), "B register count");
    assert_eq!(acc.shape(), shape, "accumulator shape");

    let at = a.to_tile(la);
    let bt = b.to_tile(lb);
    let prod = at.matmul(&bt);

    let lacc = FragmentLayout::new(shape, Operand::Acc);
    for r in 0..shape.m() {
        for c in 0..shape.n() {
            let (lane, reg) = lacc.position(r, c);
            let cur = acc.get(lane, reg);
            acc.set(lane, reg, cur + prod[(r, c)]);
        }
    }
}

/// Hopper `wgmma.mma_async.m64n64k16` with the `_SS` operand form: both
/// `A` (64×16) and `B` (16×64) are sourced from shared-memory tiles, the
/// property BitDecoding exploits to feed dequantized values via `STSM`
/// without register-layout gymnastics (paper §V-D(1)).
///
/// # Panics
///
/// Panics on operand shape mismatch.
pub fn wgmma_ss(a: &Tile, b: &Tile, acc: &mut Tile) {
    assert_eq!((a.rows(), a.cols()), (64, 16), "wgmma A must be 64x16");
    assert_eq!((b.rows(), b.cols()), (16, 64), "wgmma B must be 16x64");
    assert_eq!(
        (acc.rows(), acc.cols()),
        (64, 64),
        "wgmma acc must be 64x64"
    );
    let prod = a.matmul(b);
    for r in 0..64 {
        for c in 0..64 {
            acc[(r, c)] += prod[(r, c)];
        }
    }
}

/// Blackwell block-scaled FP4 MMA: operands are E2M1 codes with one scale
/// per K-block (32 for MXFP4); the hardware multiplies
/// `(a_code · a_scale) × (b_code · b_scale)` directly, with FP32
/// accumulation — no software dequantization.
///
/// `a_codes` is `M × K`, `b_codes` is `K × N`; scales are per
/// `(row, k_block)` for A and `(k_block, col)` for B.
///
/// # Panics
///
/// Panics on shape mismatches or when `K` is not a multiple of the block.
pub fn mma_block_scaled_fp4(
    a_codes: &[Vec<E2M1>],
    a_scales: &[Vec<f32>],
    b_codes: &[Vec<E2M1>],
    b_scales: &[Vec<f32>],
    block: usize,
    acc: &mut Tile,
) {
    let m = a_codes.len();
    let k = a_codes[0].len();
    let n = b_codes[0].len();
    assert_eq!(b_codes.len(), k, "B rows must equal K");
    assert_eq!(k % block, 0, "K must be a multiple of the scale block");
    assert_eq!((acc.rows(), acc.cols()), (m, n));
    for i in 0..m {
        for j in 0..n {
            let mut sum = 0.0f32;
            for kk in 0..k {
                let blk = kk / block;
                let av = a_codes[i][kk].to_f32() * a_scales[i][blk];
                let bv = b_codes[kk][j].to_f32() * b_scales[blk][j];
                sum += av * bv;
            }
            acc[(i, j)] += sum;
        }
    }
}

/// `__shfl_xor_sync` butterfly reduction over a warp: folds each lane's
/// value with its XOR partner for masks 16, 8, 4, 2, 1, leaving every lane
/// holding the reduction of all 32 (paper §V-B(2): warp-level min/max
/// without shared memory).
///
/// Returns the per-lane results after the full butterfly (all equal) and the
/// number of shuffle steps executed (for the cost model).
pub fn shfl_xor_reduce<T: Copy>(
    values: &[T; WARP_LANES],
    combine: impl Fn(T, T) -> T,
) -> ([T; WARP_LANES], u32) {
    let mut vals = *values;
    let mut steps = 0;
    let mut mask = WARP_LANES / 2;
    while mask > 0 {
        let mut next = vals;
        for lane in 0..WARP_LANES {
            let partner = lane ^ mask;
            next[lane] = combine(vals[lane], vals[partner]);
        }
        vals = next;
        steps += 1;
        mask /= 2;
    }
    (vals, steps)
}

/// `lop3.b32`: the arbitrary three-input boolean LUT instruction. The
/// fast-dequant path uses immediate `0xEA` = `(a & b) | c`.
pub fn lop3(a: u32, b: u32, c: u32, imm: u8) -> u32 {
    let mut out = 0u32;
    for bit in 0..32 {
        let idx = (((a >> bit) & 1) << 2) | (((b >> bit) & 1) << 1) | ((c >> bit) & 1);
        out |= (((imm >> idx) & 1) as u32) << bit;
    }
    out
}

/// The LUT immediate for `(a & b) | c`, used by fast dequantization.
pub const LOP3_AND_OR: u8 = 0xEA;

/// `STSM` (store-matrix to shared memory): the inverse of `ldmatrix`,
/// scattering a register fragment into a shared-memory tile. Hopper path
/// uses it to hand dequantized FP16 values to `wgmma_SS`.
pub fn stsm(frag: &Fragment, layout: FragmentLayout) -> Tile {
    frag.to_tile(layout)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fragment::{FragmentLayout, Operand};
    use bd_lowbit::Fp4Kind;

    fn tile_a(shape: MmaShape) -> Tile {
        Tile::from_fn(shape.m(), shape.k(), |r, c| {
            ((r * 7 + c * 3) % 9) as f32 * 0.25 - 1.0
        })
    }

    fn tile_b(shape: MmaShape) -> Tile {
        Tile::from_fn(shape.k(), shape.n(), |r, c| {
            ((r * 5 + c * 11) % 7) as f32 * 0.5 - 1.5
        })
    }

    #[test]
    fn mma_matches_reference_matmul() {
        for shape in [MmaShape::M16N8K16, MmaShape::M16N8K8] {
            let at = tile_a(shape);
            let bt = tile_b(shape);
            let a = ldmatrix(&at, FragmentLayout::new(shape, Operand::A));
            let b = ldmatrix(&bt, FragmentLayout::new(shape, Operand::B));
            let mut acc = AccFragment::zeroed(shape);
            mma(shape, &a, &b, &mut acc);
            let expect = at.matmul(&bt);
            assert!(acc.to_tile().max_abs_diff(&expect) < 1e-2, "{shape}");
        }
    }

    #[test]
    fn mma_accumulates() {
        let shape = MmaShape::M16N8K16;
        let at = tile_a(shape);
        let bt = tile_b(shape);
        let a = ldmatrix(&at, FragmentLayout::new(shape, Operand::A));
        let b = ldmatrix(&bt, FragmentLayout::new(shape, Operand::B));
        let mut acc = AccFragment::zeroed(shape);
        mma(shape, &a, &b, &mut acc);
        mma(shape, &a, &b, &mut acc);
        let mut expect = at.matmul(&bt);
        for v in expect.as_mut_slice() {
            *v *= 2.0;
        }
        assert!(acc.to_tile().max_abs_diff(&expect) < 2e-2);
    }

    #[test]
    fn mma_with_scrambled_b_layout_is_wrong() {
        // Fill B's registers under the Acc mapping (same dims, different
        // interleave): the product must be wrong. This is the hardware
        // behaviour that makes layout induction necessary.
        let shape = MmaShape::M16N8K16;
        let at = tile_a(shape);
        let bt = tile_b(shape);
        let a = ldmatrix(&at, FragmentLayout::new(shape, Operand::A));
        let b_wrong = Fragment::from_tile(&bt, FragmentLayout::new(shape, Operand::Acc));
        let mut acc = AccFragment::zeroed(shape);
        mma(shape, &a, &b_wrong, &mut acc);
        let expect = at.matmul(&bt);
        assert!(acc.to_tile().max_abs_diff(&expect) > 0.5);
    }

    #[test]
    fn wgmma_ss_matches_reference() {
        let a = Tile::from_fn(64, 16, |r, c| ((r + c) % 5) as f32 - 2.0);
        let b = Tile::from_fn(16, 64, |r, c| ((r * 3 + c) % 4) as f32 * 0.5);
        let mut acc = Tile::zeros(64, 64);
        wgmma_ss(&a, &b, &mut acc);
        assert!(acc.max_abs_diff(&a.matmul(&b)) < 1e-4);
    }

    #[test]
    fn block_scaled_fp4_mma_close_to_fp32() {
        // Quantize a small GEMM to MXFP4 on both sides and check the result
        // tracks the FP32 product within block-scale error bounds.
        let m = 4;
        let k = 32;
        let n = 4;
        let a = Tile::from_fn(m, k, |r, c| ((r * 13 + c * 7) % 11) as f32 * 0.3 - 1.5);
        let b = Tile::from_fn(k, n, |r, c| ((r * 3 + c * 17) % 13) as f32 * 0.2 - 1.2);
        let block = Fp4Kind::Mx.block_size();

        let mut a_codes = vec![vec![E2M1::from_bits(0); k]; m];
        let mut a_scales = vec![vec![0.0f32; k / block]; m];
        for i in 0..m {
            for bk in 0..k / block {
                let vals: Vec<f32> = (0..block).map(|j| a[(i, bk * block + j)]).collect();
                let q = bd_lowbit::fp4::quantize_fp4_block(&vals, Fp4Kind::Mx);
                a_scales[i][bk] = q.scale.to_f32();
                for (j, c) in q.codes.iter().enumerate() {
                    a_codes[i][bk * block + j] = *c;
                }
            }
        }
        let mut b_codes = vec![vec![E2M1::from_bits(0); n]; k];
        let mut b_scales = vec![vec![0.0f32; n]; k / block];
        for j in 0..n {
            for bk in 0..k / block {
                let vals: Vec<f32> = (0..block).map(|i| b[(bk * block + i, j)]).collect();
                let q = bd_lowbit::fp4::quantize_fp4_block(&vals, Fp4Kind::Mx);
                b_scales[bk][j] = q.scale.to_f32();
                for (i, c) in q.codes.iter().enumerate() {
                    b_codes[bk * block + i][j] = *c;
                }
            }
        }

        let mut acc = Tile::zeros(m, n);
        mma_block_scaled_fp4(&a_codes, &a_scales, &b_codes, &b_scales, block, &mut acc);
        let expect = a.matmul(&b);
        // FP4 is coarse; per-element error stays well under the operand
        // magnitudes times the relative step (~1/6 per element, averaged).
        let scale = k as f32;
        assert!(
            acc.max_abs_diff(&expect) < scale * 0.25,
            "diff {} too large",
            acc.max_abs_diff(&expect)
        );
    }

    #[test]
    fn shfl_butterfly_reduces_all_lanes() {
        let mut vals = [0f32; WARP_LANES];
        for (i, v) in vals.iter_mut().enumerate() {
            *v = (i as f32 * 0.7).sin();
        }
        let (maxes, steps) = shfl_xor_reduce(&vals, f32::max);
        let expect = vals.iter().fold(f32::NEG_INFINITY, |a, &b| a.max(b));
        assert_eq!(steps, 5);
        for &m in &maxes {
            assert_eq!(m, expect);
        }
    }

    #[test]
    fn lop3_and_or_semantics() {
        let a = 0x1234_5678;
        let b = 0x000F_000F;
        let c = 0x6400_6400;
        assert_eq!(lop3(a, b, c, LOP3_AND_OR), (a & b) | c);
    }

    #[test]
    fn stsm_inverts_ldmatrix() {
        let layout = FragmentLayout::new(MmaShape::M16N8K16, Operand::B);
        let t = Tile::from_fn(16, 8, |r, c| (r * 8 + c) as f32);
        let frag = ldmatrix(&t, layout);
        assert_eq!(stsm(&frag, layout), t);
    }
}

#[cfg(test)]
mod guard_tests {
    use super::*;

    #[test]
    #[should_panic(expected = "wgmma A must be 64x16")]
    fn wgmma_rejects_bad_a() {
        let a = Tile::zeros(32, 16);
        let b = Tile::zeros(16, 64);
        let mut acc = Tile::zeros(64, 64);
        wgmma_ss(&a, &b, &mut acc);
    }

    #[test]
    #[should_panic(expected = "multiple of the scale block")]
    fn block_scaled_rejects_ragged_k() {
        let a = vec![vec![E2M1::from_bits(0); 33]; 2];
        let asc = vec![vec![1.0f32; 2]; 2];
        let b = vec![vec![E2M1::from_bits(0); 2]; 33];
        let bsc = vec![vec![1.0f32; 2]; 2];
        let mut acc = Tile::zeros(2, 2);
        mma_block_scaled_fp4(&a, &asc, &b, &bsc, 32, &mut acc);
    }

    #[test]
    fn shfl_sum_reduction_works_too() {
        let mut vals = [0f32; WARP_LANES];
        for (i, v) in vals.iter_mut().enumerate() {
            *v = i as f32;
        }
        let (sums, _) = shfl_xor_reduce(&vals, |a, b| a + b);
        for &s in &sums {
            assert_eq!(s, 496.0); // 0+1+..+31
        }
    }
}
