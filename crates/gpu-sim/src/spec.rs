//! Declarative device profiles: the zero-dependency text format behind
//! [`GpuArch`].
//!
//! New hardware should be a data file, not a code fork. A `.devspec` file
//! is a flat list of `key = value` lines inside a `[device]` section —
//! simple enough to parse in-crate (the offline `vendor/` tree has no
//! serde) and expressive enough to carry every [`GpuArch`] field:
//!
//! ```text
//! # NVIDIA A100 SXM4 80 GB
//! [device]
//! name = A100
//! gen = ampere
//! sms = 108
//! clock_ghz = 1.41
//! ...
//! ```
//!
//! The five evaluation GPUs ship as `profiles/*.devspec` files embedded
//! via `include_str!`; the legacy constructors (`GpuArch::a100()`, …)
//! delegate to the parser, so a profile edit is the single source of
//! truth. Parsing is strict — every field required, unknown keys and
//! duplicate keys rejected — and every failure is a typed [`SpecError`]
//! carrying the offending line.
//!
//! The same low-level scanner ([`scan_sections`]) backs the `.topo`
//! fleet format in [`crate::topology`].

use crate::arch::{ArchGen, GpuArch};
use std::fmt;

/// A typed spec-parse failure. Every variant that points at file content
/// carries the 1-based line number, so error messages stay actionable
/// without a parser backtrace.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SpecError {
    /// A non-comment line is neither a `[section]` header nor a
    /// `key = value` entry.
    Syntax {
        /// 1-based line number.
        line: usize,
        /// The offending line text.
        text: String,
    },
    /// A section header names a section this format does not define.
    UnknownSection {
        /// 1-based line number.
        line: usize,
        /// The unrecognized section name.
        section: String,
    },
    /// A `key = value` entry uses a key the enclosing section does not
    /// define.
    UnknownKey {
        /// 1-based line number.
        line: usize,
        /// The unrecognized key.
        key: String,
    },
    /// The same key appears twice in one section.
    DuplicateKey {
        /// 1-based line number of the second occurrence.
        line: usize,
        /// The repeated key.
        key: String,
    },
    /// A value failed to parse or violates the key's validity constraint.
    BadValue {
        /// 1-based line number.
        line: usize,
        /// The key whose value is bad.
        key: String,
        /// The rejected value text.
        value: String,
        /// What the key expects (a type or a constraint).
        expected: &'static str,
    },
    /// A required key is absent from its section.
    MissingKey {
        /// The section the key belongs to.
        section: String,
        /// The missing key.
        key: String,
    },
    /// A required section is absent from the document.
    MissingSection {
        /// The missing section name.
        section: String,
    },
    /// A value names another entity (a link, a device profile) that the
    /// document or registry does not define.
    UnknownReference {
        /// 1-based line number (0 when the reference is resolved after
        /// parsing, e.g. a device profile looked up at fleet build time).
        line: usize,
        /// The dangling name.
        name: String,
        /// What kind of entity was expected.
        kind: &'static str,
    },
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::Syntax { line, text } => {
                write!(
                    f,
                    "line {line}: expected `[section]` or `key = value`, got {text:?}"
                )
            }
            SpecError::UnknownSection { line, section } => {
                write!(f, "line {line}: unknown section [{section}]")
            }
            SpecError::UnknownKey { line, key } => {
                write!(f, "line {line}: unknown key {key:?}")
            }
            SpecError::DuplicateKey { line, key } => {
                write!(f, "line {line}: duplicate key {key:?}")
            }
            SpecError::BadValue {
                line,
                key,
                value,
                expected,
            } => write!(f, "line {line}: {key} = {value:?} is not {expected}"),
            SpecError::MissingKey { section, key } => {
                write!(f, "section [{section}] is missing required key {key:?}")
            }
            SpecError::MissingSection { section } => {
                write!(f, "missing required section [{section}]")
            }
            SpecError::UnknownReference { line, name, kind } => {
                if *line == 0 {
                    write!(f, "unknown {kind} {name:?}")
                } else {
                    write!(f, "line {line}: unknown {kind} {name:?}")
                }
            }
        }
    }
}

impl std::error::Error for SpecError {}

/// One `[header]`-delimited section of a spec document: its name, an
/// optional argument (`[link nvlink]` → name `link`, arg `nvlink`), and
/// the `key = value` entries it encloses, each with its line number.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpecSection {
    /// The section name (the first word inside the brackets).
    pub name: String,
    /// The section argument (the rest of the header), empty when absent.
    pub arg: String,
    /// 1-based line number of the header.
    pub line: usize,
    /// `(line, key, value)` entries in file order.
    pub entries: Vec<(usize, String, String)>,
}

impl SpecSection {
    /// Looks up a key's `(line, value)`, rejecting duplicates.
    pub(crate) fn get(&self, key: &str) -> Result<Option<(usize, &str)>, SpecError> {
        let mut found: Option<(usize, &str)> = None;
        for (line, k, v) in &self.entries {
            if k == key {
                if found.is_some() {
                    return Err(SpecError::DuplicateKey {
                        line: *line,
                        key: key.to_string(),
                    });
                }
                found = Some((*line, v));
            }
        }
        Ok(found)
    }

    /// Looks up a required key's `(line, value)`.
    pub(crate) fn require(&self, key: &str) -> Result<(usize, &str), SpecError> {
        self.get(key)?.ok_or_else(|| SpecError::MissingKey {
            section: self.name.clone(),
            key: key.to_string(),
        })
    }

    /// Rejects any entry whose key is not in `allowed`.
    pub(crate) fn check_keys(&self, allowed: &[&str]) -> Result<(), SpecError> {
        for (line, k, _) in &self.entries {
            if !allowed.contains(&k.as_str()) {
                return Err(SpecError::UnknownKey {
                    line: *line,
                    key: k.clone(),
                });
            }
        }
        Ok(())
    }
}

/// Splits a spec document into sections. Blank lines and `#` comments are
/// skipped; a `key = value` line before any section header is a syntax
/// error. This scanner is shared by the `.devspec` and `.topo` formats.
pub fn scan_sections(text: &str) -> Result<Vec<SpecSection>, SpecError> {
    let mut sections: Vec<SpecSection> = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let line = i + 1;
        let trimmed = raw.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        if let Some(inner) = trimmed.strip_prefix('[').and_then(|s| s.strip_suffix(']')) {
            let inner = inner.trim();
            if inner.is_empty() {
                return Err(SpecError::Syntax {
                    line,
                    text: trimmed.to_string(),
                });
            }
            let (name, arg) = match inner.split_once(char::is_whitespace) {
                Some((n, a)) => (n.to_string(), a.trim().to_string()),
                None => (inner.to_string(), String::new()),
            };
            sections.push(SpecSection {
                name,
                arg,
                line,
                entries: Vec::new(),
            });
            continue;
        }
        let Some((key, value)) = trimmed.split_once('=') else {
            return Err(SpecError::Syntax {
                line,
                text: trimmed.to_string(),
            });
        };
        let key = key.trim();
        let value = value.trim();
        if key.is_empty() || value.is_empty() {
            return Err(SpecError::Syntax {
                line,
                text: trimmed.to_string(),
            });
        }
        match sections.last_mut() {
            Some(section) => section
                .entries
                .push((line, key.to_string(), value.to_string())),
            None => {
                return Err(SpecError::Syntax {
                    line,
                    text: trimmed.to_string(),
                });
            }
        }
    }
    Ok(sections)
}

/// Parses a strictly positive finite `f64` value.
pub(crate) fn parse_pos_f64(line: usize, key: &str, value: &str) -> Result<f64, SpecError> {
    match value.parse::<f64>() {
        Ok(v) if v.is_finite() && v > 0.0 => Ok(v),
        _ => Err(SpecError::BadValue {
            line,
            key: key.to_string(),
            value: value.to_string(),
            expected: "a positive number",
        }),
    }
}

/// Parses a non-negative finite `f64` value.
fn parse_nonneg_f64(line: usize, key: &str, value: &str) -> Result<f64, SpecError> {
    match value.parse::<f64>() {
        Ok(v) if v.is_finite() && v >= 0.0 => Ok(v),
        _ => Err(SpecError::BadValue {
            line,
            key: key.to_string(),
            value: value.to_string(),
            expected: "a non-negative number",
        }),
    }
}

/// Parses a positive integer value.
fn parse_pos_u32(line: usize, key: &str, value: &str) -> Result<u32, SpecError> {
    match value.parse::<u32>() {
        Ok(v) if v > 0 => Ok(v),
        _ => Err(SpecError::BadValue {
            line,
            key: key.to_string(),
            value: value.to_string(),
            expected: "a positive integer",
        }),
    }
}

/// The keys a `[device]` section must carry, in canonical render order.
const DEVICE_KEYS: [&str; 16] = [
    "name",
    "gen",
    "sms",
    "clock_ghz",
    "dram_bw_gbs",
    "dram_gb",
    "tc_fp16_tflops",
    "tc_fp8_tflops",
    "tc_fp4_tflops",
    "cuda_fp32_tflops",
    "smem_kb_per_sm",
    "l2_mb",
    "mem_efficiency",
    "launch_overhead_us",
    "warps_to_saturate",
    "cuda_issue_efficiency",
];

/// A parsed, validated device profile — the declarative form of
/// [`GpuArch`]. [`DeviceSpec::parse`] and [`DeviceSpec::to_text`] are
/// mutual inverses (f64 `Display` is shortest-round-trip), which the
/// property tests pin down.
#[derive(Clone, Debug, PartialEq)]
pub struct DeviceSpec {
    arch: GpuArch,
}

impl DeviceSpec {
    /// Parses a `.devspec` document: exactly one `[device]` section with
    /// all sixteen keys present.
    ///
    /// # Errors
    ///
    /// Returns a [`SpecError`] naming the offending line for syntax
    /// errors, unknown/duplicate/missing keys, and out-of-range values
    /// (e.g. `mem_efficiency` outside `(0, 1]`).
    pub fn parse(text: &str) -> Result<Self, SpecError> {
        let sections = scan_sections(text)?;
        let mut device: Option<&SpecSection> = None;
        for s in &sections {
            match s.name.as_str() {
                "device" if device.is_some() => {
                    return Err(SpecError::UnknownSection {
                        line: s.line,
                        section: "device (duplicate)".to_string(),
                    });
                }
                "device" => device = Some(s),
                other => {
                    return Err(SpecError::UnknownSection {
                        line: s.line,
                        section: other.to_string(),
                    });
                }
            }
        }
        let s = device.ok_or(SpecError::MissingSection {
            section: "device".to_string(),
        })?;
        s.check_keys(&DEVICE_KEYS)?;

        let (_, name) = s.require("name")?;
        let (gline, gen) = s.require("gen")?;
        let gen = match gen.to_ascii_lowercase().as_str() {
            "ampere" => ArchGen::Ampere,
            "ada" => ArchGen::Ada,
            "hopper" => ArchGen::Hopper,
            "blackwell" => ArchGen::Blackwell,
            _ => {
                return Err(SpecError::BadValue {
                    line: gline,
                    key: "gen".to_string(),
                    value: gen.to_string(),
                    expected: "one of ampere, ada, hopper, blackwell",
                });
            }
        };
        let pos = |key: &str| -> Result<f64, SpecError> {
            let (line, v) = s.require(key)?;
            parse_pos_f64(line, key, v)
        };
        let nonneg = |key: &str| -> Result<f64, SpecError> {
            let (line, v) = s.require(key)?;
            parse_nonneg_f64(line, key, v)
        };
        let (sline, sms) = s.require("sms")?;
        let (mline, smem) = s.require("smem_kb_per_sm")?;
        let (eline, eff) = s.require("mem_efficiency")?;
        let mem_efficiency = parse_pos_f64(eline, "mem_efficiency", eff)?;
        if mem_efficiency > 1.0 {
            return Err(SpecError::BadValue {
                line: eline,
                key: "mem_efficiency".to_string(),
                value: eff.to_string(),
                expected: "a fraction in (0, 1]",
            });
        }
        let (iline, issue) = s.require("cuda_issue_efficiency")?;
        let cuda_issue_efficiency = parse_pos_f64(iline, "cuda_issue_efficiency", issue)?;
        if cuda_issue_efficiency > 1.0 {
            return Err(SpecError::BadValue {
                line: iline,
                key: "cuda_issue_efficiency".to_string(),
                value: issue.to_string(),
                expected: "a fraction in (0, 1]",
            });
        }
        let arch = GpuArch {
            name: name.to_string(),
            gen,
            sms: parse_pos_u32(sline, "sms", sms)?,
            clock_ghz: pos("clock_ghz")?,
            dram_bw_gbs: pos("dram_bw_gbs")?,
            dram_gb: pos("dram_gb")?,
            tc_fp16_tflops: pos("tc_fp16_tflops")?,
            tc_fp8_tflops: nonneg("tc_fp8_tflops")?,
            tc_fp4_tflops: nonneg("tc_fp4_tflops")?,
            cuda_fp32_tflops: pos("cuda_fp32_tflops")?,
            smem_kb_per_sm: parse_pos_u32(mline, "smem_kb_per_sm", smem)?,
            l2_mb: pos("l2_mb")?,
            mem_efficiency,
            launch_overhead_us: pos("launch_overhead_us")?,
            warps_to_saturate: pos("warps_to_saturate")?,
            cuda_issue_efficiency,
        };
        Ok(DeviceSpec { arch })
    }

    /// Wraps an existing [`GpuArch`] (the render direction of the
    /// round trip).
    pub fn from_arch(arch: GpuArch) -> Self {
        DeviceSpec { arch }
    }

    /// The parsed architecture.
    pub fn arch(&self) -> &GpuArch {
        &self.arch
    }

    /// Unwraps into the [`GpuArch`] the cost model consumes.
    pub fn into_arch(self) -> GpuArch {
        self.arch
    }

    /// Renders the spec back to `.devspec` text. `parse(to_text(s)) == s`
    /// for every valid spec: Rust's `f64` `Display` prints the shortest
    /// string that parses back to the same bits.
    pub fn to_text(&self) -> String {
        let a = &self.arch;
        let gen = match a.gen {
            ArchGen::Ampere => "ampere",
            ArchGen::Ada => "ada",
            ArchGen::Hopper => "hopper",
            ArchGen::Blackwell => "blackwell",
        };
        format!(
            "[device]\n\
             name = {}\n\
             gen = {}\n\
             sms = {}\n\
             clock_ghz = {}\n\
             dram_bw_gbs = {}\n\
             dram_gb = {}\n\
             tc_fp16_tflops = {}\n\
             tc_fp8_tflops = {}\n\
             tc_fp4_tflops = {}\n\
             cuda_fp32_tflops = {}\n\
             smem_kb_per_sm = {}\n\
             l2_mb = {}\n\
             mem_efficiency = {}\n\
             launch_overhead_us = {}\n\
             warps_to_saturate = {}\n\
             cuda_issue_efficiency = {}\n",
            a.name,
            gen,
            a.sms,
            a.clock_ghz,
            a.dram_bw_gbs,
            a.dram_gb,
            a.tc_fp16_tflops,
            a.tc_fp8_tflops,
            a.tc_fp4_tflops,
            a.cuda_fp32_tflops,
            a.smem_kb_per_sm,
            a.l2_mb,
            a.mem_efficiency,
            a.launch_overhead_us,
            a.warps_to_saturate,
            a.cuda_issue_efficiency,
        )
    }
}

/// Every `.devspec` profile shipped with the crate, as
/// `(profile key, file contents)` pairs. The key is the file stem and is
/// what `.topo` island device lists reference.
pub const BUILTIN_PROFILES: [(&str, &str); 5] = [
    ("a100", include_str!("../profiles/a100.devspec")),
    ("rtx4090", include_str!("../profiles/rtx4090.devspec")),
    ("h100", include_str!("../profiles/h100.devspec")),
    ("rtx5090", include_str!("../profiles/rtx5090.devspec")),
    (
        "rtx_pro6000",
        include_str!("../profiles/rtx_pro6000.devspec"),
    ),
];

/// Looks up a shipped profile by its key (file stem) or device name,
/// case-insensitively, and parses it.
pub fn builtin_device(name: &str) -> Option<GpuArch> {
    let want = name.to_ascii_lowercase();
    for (key, text) in BUILTIN_PROFILES {
        if key.eq_ignore_ascii_case(&want) {
            return Some(parse_embedded(key, text));
        }
    }
    // Fall back to the device's marketing name ("A100", "RTX PRO 6000").
    for (key, text) in BUILTIN_PROFILES {
        let arch = parse_embedded(key, text);
        if arch.name.eq_ignore_ascii_case(&want) {
            return Some(arch);
        }
    }
    None
}

/// Parses an embedded profile, panicking with the profile key on failure —
/// a shipped file that fails to parse is a build defect, not a runtime
/// condition, and the profile-validation test catches it first.
pub(crate) fn parse_embedded(key: &str, text: &str) -> GpuArch {
    match DeviceSpec::parse(text) {
        Ok(spec) => spec.into_arch(),
        Err(e) => panic!("embedded device profile {key:?} is invalid: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_render_round_trips_the_builtins() {
        for (key, text) in BUILTIN_PROFILES {
            let spec = DeviceSpec::parse(text).unwrap_or_else(|e| panic!("{key}: {e}"));
            let again = DeviceSpec::parse(&spec.to_text()).unwrap();
            assert_eq!(spec, again, "{key} round trip");
        }
    }

    #[test]
    fn missing_key_is_typed() {
        let text = "[device]\nname = X\ngen = ada\n";
        match DeviceSpec::parse(text) {
            Err(SpecError::MissingKey { section, key }) => {
                assert_eq!(section, "device");
                assert_eq!(key, "sms");
            }
            other => panic!("expected MissingKey, got {other:?}"),
        }
    }

    #[test]
    fn unknown_key_carries_its_line() {
        let mut text = DeviceSpec::from_arch(GpuArch::a100()).to_text();
        text.push_str("bogus = 1\n");
        match DeviceSpec::parse(&text) {
            Err(SpecError::UnknownKey { line, key }) => {
                assert_eq!(key, "bogus");
                assert_eq!(line, 18);
            }
            other => panic!("expected UnknownKey, got {other:?}"),
        }
    }

    #[test]
    fn bad_gen_and_bad_numbers_are_rejected() {
        let base = DeviceSpec::from_arch(GpuArch::h100()).to_text();
        let swapped = base.replace("gen = hopper", "gen = volta");
        assert!(matches!(
            DeviceSpec::parse(&swapped),
            Err(SpecError::BadValue { key, .. }) if key == "gen"
        ));
        let negative = base.replace("clock_ghz = 1.83", "clock_ghz = -1.83");
        assert!(matches!(
            DeviceSpec::parse(&negative),
            Err(SpecError::BadValue { key, .. }) if key == "clock_ghz"
        ));
        let fraction = base.replace("mem_efficiency = 0.8", "mem_efficiency = 1.8");
        assert!(matches!(
            DeviceSpec::parse(&fraction),
            Err(SpecError::BadValue { key, .. }) if key == "mem_efficiency"
        ));
    }

    #[test]
    fn duplicate_key_is_rejected() {
        let mut text = DeviceSpec::from_arch(GpuArch::a100()).to_text();
        text.push_str("sms = 108\n");
        assert!(matches!(
            DeviceSpec::parse(&text),
            Err(SpecError::DuplicateKey { key, .. }) if key == "sms"
        ));
    }

    #[test]
    fn entry_outside_a_section_is_a_syntax_error() {
        assert!(matches!(
            DeviceSpec::parse("name = X\n"),
            Err(SpecError::Syntax { line: 1, .. })
        ));
    }

    #[test]
    fn builtin_lookup_resolves_key_and_marketing_name() {
        assert_eq!(builtin_device("h100").unwrap().name, "H100");
        assert_eq!(builtin_device("A100").unwrap().name, "A100");
        assert_eq!(builtin_device("rtx pro 6000").unwrap().name, "RTX PRO 6000");
        assert!(builtin_device("tpu").is_none());
    }
}
