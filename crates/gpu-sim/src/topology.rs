//! Declarative fleet topologies: islands, tiered links, and the
//! hierarchical collective pricing the serve cost model consumes.
//!
//! A `.topo` file describes a fleet with the same `key = value` section
//! format as `.devspec` profiles ([`crate::spec`]):
//!
//! ```text
//! [topology]
//! name = mixed_h100_a100
//! cross_link = ib
//! host_link = pcie
//!
//! [link nvlink]
//! gbs = 450
//! latency_us = 3
//!
//! [link ib]
//! gbs = 50
//! latency_us = 5
//!
//! [link pcie]
//! gbs = 64
//! latency_us = 10
//!
//! [island pod0]
//! devices = h100, h100
//! link = nvlink
//! ```
//!
//! [`TopologySpec::parse`] produces the named form; [`Topology`] is the
//! resolved form (device names looked up against the shipped profiles or
//! a caller registry) that prices collectives:
//!
//! * **All-reduce** — reduce-scatter + all-gather ring inside each island
//!   over its intra link, and a ring exchange of the scattered shards
//!   across islands over the (typically slower) cross link, each phase
//!   paying its per-link hop-latency floor. The price is clamped from
//!   below by the ideal flat ring over the fleet's fastest link: a tiered
//!   fleet never beats a same-size single-switch island, so hierarchical
//!   ≥ flat by construction.
//! * **Swap** — path-resolved device→host: each device's share moves over
//!   its island's host link (or the topology default) in parallel, so the
//!   price is the slowest share.
//!
//! [`Topology::flat`] wraps a single [`InterconnectModel`] and delegates
//! to it verbatim — flat prices are **bit-for-bit** the legacy
//! `InterconnectModel` prices, which keeps historical `BENCH_serve.json`
//! grids valid.

use crate::arch::GpuArch;
use crate::cost::InterconnectModel;
use crate::spec::{builtin_device, parse_pos_f64, scan_sections, SpecError, SpecSection};
use std::fmt;

/// One island of a parsed [`TopologySpec`]: a named group of devices
/// joined by a fast intra-island link.
#[derive(Clone, Debug, PartialEq)]
pub struct IslandSpec {
    /// Island name (the `[island <name>]` header argument).
    pub name: String,
    /// Device profile names, in device-index order.
    pub devices: Vec<String>,
    /// Name of the intra-island link (must match a `[link]` section).
    pub link: String,
    /// Optional island-specific host link name; the topology default
    /// applies when absent.
    pub host: Option<String>,
}

/// A parsed (but unresolved) `.topo` document: links, islands, and the
/// topology-wide cross/host tier names. Device names are still strings —
/// [`TopologySpec::resolve`] turns them into [`GpuArch`]s.
#[derive(Clone, Debug, PartialEq)]
pub struct TopologySpec {
    /// Fleet name.
    pub name: String,
    /// Named links, in file order.
    pub links: Vec<(String, InterconnectModel)>,
    /// Islands, in file order (device indices number islands first).
    pub islands: Vec<IslandSpec>,
    /// Link name priced for the cross-island exchange.
    pub cross_link: String,
    /// Default link name priced for device→host swap traffic.
    pub host_link: String,
}

impl TopologySpec {
    /// Parses a `.topo` document. Link references are checked here;
    /// device names are resolved later so a spec can be parsed without a
    /// device registry.
    ///
    /// # Errors
    ///
    /// Returns a typed [`SpecError`] for syntax errors, unknown sections
    /// or keys, missing required keys/sections, non-positive bandwidths,
    /// and dangling link names.
    pub fn parse(text: &str) -> Result<Self, SpecError> {
        let sections = scan_sections(text)?;
        let mut topo: Option<&SpecSection> = None;
        let mut links: Vec<(usize, String, InterconnectModel)> = Vec::new();
        let mut islands: Vec<(usize, IslandSpec)> = Vec::new();
        for s in &sections {
            match s.name.as_str() {
                "topology" => {
                    if topo.is_some() {
                        return Err(SpecError::UnknownSection {
                            line: s.line,
                            section: "topology (duplicate)".to_string(),
                        });
                    }
                    topo = Some(s);
                }
                "link" => {
                    if s.arg.is_empty() {
                        return Err(SpecError::Syntax {
                            line: s.line,
                            text: "[link] needs a name: [link <name>]".to_string(),
                        });
                    }
                    links.push((s.line, s.arg.clone(), parse_link(s)?));
                }
                "island" => {
                    if s.arg.is_empty() {
                        return Err(SpecError::Syntax {
                            line: s.line,
                            text: "[island] needs a name: [island <name>]".to_string(),
                        });
                    }
                    islands.push((s.line, parse_island(s)?));
                }
                other => {
                    return Err(SpecError::UnknownSection {
                        line: s.line,
                        section: other.to_string(),
                    });
                }
            }
        }
        let topo = topo.ok_or(SpecError::MissingSection {
            section: "topology".to_string(),
        })?;
        topo.check_keys(&["name", "cross_link", "host_link"])?;
        let (_, name) = topo.require("name")?;
        let (cline, cross_link) = topo.require("cross_link")?;
        let (hline, host_link) = topo.require("host_link")?;
        if islands.is_empty() {
            return Err(SpecError::MissingSection {
                section: "island".to_string(),
            });
        }
        // Duplicate link names shadow silently otherwise; reject them.
        for (i, (line, lname, _)) in links.iter().enumerate() {
            if links[..i].iter().any(|(_, n, _)| n == lname) {
                return Err(SpecError::DuplicateKey {
                    line: *line,
                    key: format!("link {lname}"),
                });
            }
        }
        let have_link = |n: &str| links.iter().any(|(_, ln, _)| ln == n);
        for (name, line) in [(cross_link, cline), (host_link, hline)] {
            if !have_link(name) {
                return Err(SpecError::UnknownReference {
                    line,
                    name: name.to_string(),
                    kind: "link",
                });
            }
        }
        for (line, island) in &islands {
            if !have_link(&island.link) {
                return Err(SpecError::UnknownReference {
                    line: *line,
                    name: island.link.clone(),
                    kind: "link",
                });
            }
            if let Some(h) = &island.host {
                if !have_link(h) {
                    return Err(SpecError::UnknownReference {
                        line: *line,
                        name: h.clone(),
                        kind: "link",
                    });
                }
            }
        }
        Ok(TopologySpec {
            name: name.to_string(),
            links: links.into_iter().map(|(_, n, l)| (n, l)).collect(),
            islands: islands.into_iter().map(|(_, i)| i).collect(),
            cross_link: cross_link.to_string(),
            host_link: host_link.to_string(),
        })
    }

    fn link(&self, name: &str) -> InterconnectModel {
        // Parse validated every reference, so the lookup cannot miss.
        self.links
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, l)| *l)
            .unwrap_or_else(|| unreachable!("link {name:?} validated at parse time"))
    }

    /// Resolves device names against the shipped `profiles/*.devspec`
    /// set ([`builtin_device`]).
    ///
    /// # Errors
    ///
    /// Returns [`SpecError::UnknownReference`] for a device name no
    /// shipped profile answers to.
    pub fn resolve(&self) -> Result<Topology, SpecError> {
        self.resolve_with(builtin_device)
    }

    /// Resolves device names through a caller-supplied registry (tried
    /// first, with the shipped profiles as fallback).
    ///
    /// # Errors
    ///
    /// Returns [`SpecError::UnknownReference`] when neither the registry
    /// nor the shipped profiles know a device name.
    pub fn resolve_with(
        &self,
        lookup: impl Fn(&str) -> Option<GpuArch>,
    ) -> Result<Topology, SpecError> {
        let mut devices = Vec::new();
        let mut islands = Vec::new();
        for spec in &self.islands {
            let mut members = Vec::new();
            for dev_name in &spec.devices {
                let arch = lookup(dev_name)
                    .or_else(|| builtin_device(dev_name))
                    .ok_or(SpecError::UnknownReference {
                        line: 0,
                        name: dev_name.clone(),
                        kind: "device profile",
                    })?;
                members.push(devices.len());
                devices.push(arch);
            }
            islands.push(Island {
                name: spec.name.clone(),
                members,
                link: self.link(&spec.link),
                host: spec.host.as_deref().map(|h| self.link(h)),
            });
        }
        Ok(Topology {
            name: self.name.clone(),
            fabric: Fabric::Hierarchical {
                devices,
                islands,
                cross: self.link(&self.cross_link),
                host: self.link(&self.host_link),
            },
        })
    }
}

fn parse_link(s: &SpecSection) -> Result<InterconnectModel, SpecError> {
    s.check_keys(&["gbs", "latency_us"])?;
    let (gline, gbs) = s.require("gbs")?;
    let (lline, lat) = s.require("latency_us")?;
    let gbs = parse_pos_f64(gline, "gbs", gbs)?;
    let lat = match lat.parse::<f64>() {
        Ok(v) if v.is_finite() && v >= 0.0 => v,
        _ => {
            return Err(SpecError::BadValue {
                line: lline,
                key: "latency_us".to_string(),
                value: lat.to_string(),
                expected: "a non-negative number",
            });
        }
    };
    Ok(InterconnectModel::new(gbs, lat))
}

fn parse_island(s: &SpecSection) -> Result<IslandSpec, SpecError> {
    s.check_keys(&["devices", "link", "host"])?;
    let (dline, devices) = s.require("devices")?;
    let (_, link) = s.require("link")?;
    let host = s.get("host")?.map(|(_, v)| v.to_string());
    let devices: Vec<String> = devices
        .split(',')
        .map(|d| d.trim().to_string())
        .filter(|d| !d.is_empty())
        .collect();
    if devices.is_empty() {
        return Err(SpecError::BadValue {
            line: dline,
            key: "devices".to_string(),
            value: String::new(),
            expected: "a comma-separated list of device profile names",
        });
    }
    Ok(IslandSpec {
        name: s.arg.clone(),
        devices,
        link: link.to_string(),
        host,
    })
}

/// A resolved island: concrete device indices plus link models.
#[derive(Clone, Debug, PartialEq)]
pub struct Island {
    /// Island name from the spec.
    pub name: String,
    /// Indices into [`Topology::device_archs`], in device order.
    pub members: Vec<usize>,
    /// Intra-island link.
    pub link: InterconnectModel,
    /// Island-specific host link, when the spec overrides the default.
    pub host: Option<InterconnectModel>,
}

#[derive(Clone, Debug, PartialEq)]
enum Fabric {
    /// The legacy single-tier fabric: every pair one hop over `link`,
    /// swaps over `host`. Prices delegate to [`InterconnectModel`]
    /// verbatim, so they are bitwise the pre-topology numbers.
    Flat {
        link: InterconnectModel,
        host: InterconnectModel,
    },
    /// A tiered fleet of islands.
    Hierarchical {
        devices: Vec<GpuArch>,
        islands: Vec<Island>,
        cross: InterconnectModel,
        host: InterconnectModel,
    },
}

/// A fleet the cost model can price collectives over. Built either as
/// [`Topology::flat`] (the legacy one-tier fabric, any device count) or
/// by resolving a [`TopologySpec`] (a concrete device list grouped into
/// islands).
#[derive(Clone, Debug, PartialEq)]
pub struct Topology {
    name: String,
    fabric: Fabric,
}

impl Topology {
    /// A single-tier fabric over `link`, with a PCIe Gen5 host link for
    /// swap pricing. Prices are **bitwise identical** to calling the
    /// [`InterconnectModel`] directly — this is the compatibility anchor
    /// for pre-topology configurations.
    pub fn flat(link: InterconnectModel) -> Self {
        Topology {
            name: "flat".to_string(),
            fabric: Fabric::Flat {
                link,
                host: InterconnectModel::pcie_gen5(),
            },
        }
    }

    /// Replaces the host (swap) link. On a hierarchical fleet this sets
    /// the topology-wide default; island-specific overrides keep
    /// precedence.
    pub fn with_host_link(mut self, host_link: InterconnectModel) -> Self {
        match &mut self.fabric {
            Fabric::Flat { host, .. } | Fabric::Hierarchical { host, .. } => *host = host_link,
        }
        self
    }

    /// The fleet name (`"flat"` for [`Topology::flat`]).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The single link of a flat topology, `None` for a tiered fleet.
    pub fn flat_link(&self) -> Option<InterconnectModel> {
        match &self.fabric {
            Fabric::Flat { link, .. } => Some(*link),
            Fabric::Hierarchical { .. } => None,
        }
    }

    /// The topology-wide default host link.
    pub fn host_link(&self) -> InterconnectModel {
        match &self.fabric {
            Fabric::Flat { host, .. } | Fabric::Hierarchical { host, .. } => *host,
        }
    }

    /// The concrete device list, island order. Empty for a flat topology
    /// (which models links only and works at any device count).
    pub fn device_archs(&self) -> &[GpuArch] {
        match &self.fabric {
            Fabric::Flat { .. } => &[],
            Fabric::Hierarchical { devices, .. } => devices,
        }
    }

    /// Devices in the fleet, `None` for flat (any count).
    pub fn device_count(&self) -> Option<usize> {
        match &self.fabric {
            Fabric::Flat { .. } => None,
            Fabric::Hierarchical { devices, .. } => Some(devices.len()),
        }
    }

    /// Resolved islands, empty for flat.
    pub fn islands(&self) -> &[Island] {
        match &self.fabric {
            Fabric::Flat { .. } => &[],
            Fabric::Hierarchical { islands, .. } => islands,
        }
    }

    /// Per-device placement weights: each device's modeled decode
    /// throughput ([`GpuArch::decode_weight`]). Empty for flat (devices
    /// are interchangeable there).
    pub fn device_weights(&self) -> Vec<f64> {
        self.device_archs()
            .iter()
            .map(GpuArch::decode_weight)
            .collect()
    }

    /// The fastest hypothetical single link in the fleet: max bandwidth,
    /// min latency over every tier. The lower bound the hierarchical
    /// price is clamped to.
    fn ideal_link(&self) -> InterconnectModel {
        match &self.fabric {
            Fabric::Flat { link, .. } => *link,
            Fabric::Hierarchical { islands, cross, .. } => {
                let mut gbs = cross.link_gbs;
                let mut lat = cross.latency_us;
                for island in islands {
                    gbs = gbs.max(island.link.link_gbs);
                    lat = lat.min(island.link.latency_us);
                }
                InterconnectModel::new(gbs, lat)
            }
        }
    }

    /// Island sizes when the first `devices` fleet slots participate
    /// (island order), non-empty islands only.
    fn participating(&self, devices: usize) -> Vec<(usize, InterconnectModel)> {
        let mut out = Vec::new();
        let mut remaining = devices;
        for island in self.islands() {
            if remaining == 0 {
                break;
            }
            let k = island.members.len().min(remaining);
            remaining -= k;
            out.push((k, island.link));
        }
        out
    }

    /// Bytes the critical-path device sends to all-reduce `payload_bytes`
    /// across `devices` devices. Flat: the legacy ring number, bitwise.
    /// Hierarchical: the intra-island ring bytes of the largest island
    /// plus the cross-island shard exchange of the smallest (whose shard
    /// is largest).
    pub fn allreduce_bytes_per_device(&self, payload_bytes: f64, devices: usize) -> f64 {
        match &self.fabric {
            Fabric::Flat { link, .. } => link.allreduce_bytes_per_device(payload_bytes, devices),
            Fabric::Hierarchical { .. } => {
                if devices <= 1 {
                    return 0.0;
                }
                let parts = self.participating(devices);
                let m = parts.len();
                let k_max = parts.iter().map(|(k, _)| *k).max().unwrap_or(1);
                let k_min = parts.iter().map(|(k, _)| *k).min().unwrap_or(1);
                let intra = if k_max > 1 {
                    2.0 * (k_max - 1) as f64 / k_max as f64 * payload_bytes
                } else {
                    0.0
                };
                let cross = if m > 1 {
                    2.0 * (m - 1) as f64 / m as f64 * (payload_bytes / k_min as f64)
                } else {
                    0.0
                };
                intra + cross
            }
        }
    }

    /// Wall-clock seconds to all-reduce `payload_bytes` across the first
    /// `devices` devices of the fleet.
    ///
    /// Flat topologies delegate to [`InterconnectModel::allreduce_s`]
    /// verbatim (bitwise-identical prices). Hierarchical fleets pay the
    /// slowest island's reduce-scatter + all-gather ring over its intra
    /// link, plus a ring exchange of the scattered shards across islands
    /// over the cross link, each phase with its own hop-latency floor —
    /// then clamp to at least the ideal flat ring over the fleet's
    /// fastest link, so a tiered fleet never prices below a same-size
    /// single-switch island (`hierarchical ≥ flat`, by construction).
    pub fn allreduce_s(&self, payload_bytes: f64, devices: usize) -> f64 {
        match &self.fabric {
            Fabric::Flat { link, .. } => link.allreduce_s(payload_bytes, devices),
            Fabric::Hierarchical { cross, .. } => {
                if devices <= 1 {
                    return 0.0;
                }
                let parts = self.participating(devices);
                let m = parts.len();
                // Intra phase: each island reduce-scatters and (after the
                // cross exchange) all-gathers over its own link; the step
                // completes when the slowest island does.
                let mut t_intra = 0.0f64;
                let mut k_min = usize::MAX;
                for &(k, link) in &parts {
                    k_min = k_min.min(k);
                    if k > 1 {
                        let bytes = 2.0 * (k - 1) as f64 / k as f64 * payload_bytes;
                        let t = bytes / (link.link_gbs * 1e9)
                            + 2.0 * (k - 1) as f64 * link.latency_us * 1e-6;
                        t_intra = t_intra.max(t);
                    }
                }
                // Cross phase: island leaders ring-all-reduce their
                // scattered shards. An island of k devices holds
                // payload/k per leader; the smallest island's shard is
                // the largest and bounds the phase.
                let t_cross = if m > 1 {
                    let shard = payload_bytes / k_min.max(1) as f64;
                    let bytes = 2.0 * (m - 1) as f64 / m as f64 * shard;
                    bytes / (cross.link_gbs * 1e9) + 2.0 * (m - 1) as f64 * cross.latency_us * 1e-6
                } else {
                    0.0
                };
                let ideal = self.ideal_link().allreduce_s(payload_bytes, devices);
                (t_intra + t_cross).max(ideal)
            }
        }
    }

    /// Wall-clock seconds to move a swapped KV blob device→host.
    ///
    /// Flat topologies price one transfer of `total_bytes` over the host
    /// link — bitwise the legacy number. Hierarchical fleets resolve the
    /// path per device: each device's share (`per_device_bytes[d]`) moves
    /// over its island's host link (or the topology default) in parallel,
    /// and the slowest share is the price.
    pub fn swap_transfer_s(&self, total_bytes: f64, per_device_bytes: &[f64]) -> f64 {
        match &self.fabric {
            Fabric::Flat { host, .. } => host.transfer_s(total_bytes),
            Fabric::Hierarchical { islands, host, .. } => {
                if per_device_bytes.is_empty() {
                    return host.transfer_s(total_bytes);
                }
                let host_of = |device: usize| -> InterconnectModel {
                    islands
                        .iter()
                        .find(|i| i.members.contains(&device))
                        .and_then(|i| i.host)
                        .unwrap_or(*host)
                };
                per_device_bytes
                    .iter()
                    .enumerate()
                    .map(|(d, &bytes)| host_of(d).transfer_s(bytes))
                    .fold(0.0f64, f64::max)
            }
        }
    }
}

impl fmt::Display for Topology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.fabric {
            Fabric::Flat { link, .. } => {
                write!(f, "{} ({} GB/s)", self.name, link.link_gbs)
            }
            Fabric::Hierarchical {
                devices, islands, ..
            } => write!(
                f,
                "{} ({} devices over {} islands)",
                self.name,
                devices.len(),
                islands.len()
            ),
        }
    }
}

/// Every `.topo` fleet shipped with the crate, as
/// `(topology key, file contents)` pairs.
pub const BUILTIN_TOPOLOGIES: [(&str, &str); 2] = [
    (
        "nvswitch_pod",
        include_str!("../profiles/nvswitch_pod.topo"),
    ),
    (
        "mixed_h100_a100",
        include_str!("../profiles/mixed_h100_a100.topo"),
    ),
];

/// Parses and resolves a shipped `.topo` fleet by key.
pub fn builtin_topology(name: &str) -> Option<Topology> {
    for (key, text) in BUILTIN_TOPOLOGIES {
        if key.eq_ignore_ascii_case(name) {
            let spec = match TopologySpec::parse(text) {
                Ok(spec) => spec,
                Err(e) => panic!("embedded topology {key:?} is invalid: {e}"),
            };
            match spec.resolve() {
                Ok(topo) => return Some(topo),
                Err(e) => panic!("embedded topology {key:?} does not resolve: {e}"),
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mixed() -> Topology {
        builtin_topology("mixed_h100_a100").expect("shipped fleet")
    }

    #[test]
    fn flat_prices_are_bitwise_the_interconnect_model() {
        let link = InterconnectModel::nvlink4();
        let topo = Topology::flat(link);
        for devices in 1..=8 {
            for payload in [0.0, 1.0, 4096.0, 3.5e7] {
                assert_eq!(
                    topo.allreduce_s(payload, devices).to_bits(),
                    link.allreduce_s(payload, devices).to_bits()
                );
                assert_eq!(
                    topo.allreduce_bytes_per_device(payload, devices).to_bits(),
                    link.allreduce_bytes_per_device(payload, devices).to_bits()
                );
            }
        }
        let host = InterconnectModel::pcie_gen5();
        for bytes in [0.0, 100.0, 2.0e9] {
            assert_eq!(
                topo.swap_transfer_s(bytes, &[]).to_bits(),
                host.transfer_s(bytes).to_bits()
            );
        }
    }

    #[test]
    fn shipped_mixed_fleet_resolves() {
        let topo = mixed();
        assert_eq!(topo.device_count(), Some(4));
        let names: Vec<&str> = topo
            .device_archs()
            .iter()
            .map(|a| a.name.as_str())
            .collect();
        assert_eq!(names, vec!["H100", "H100", "A100", "A100"]);
        assert_eq!(topo.islands().len(), 2);
        let weights = topo.device_weights();
        assert!(weights[0] > weights[2], "H100 must outweigh A100");
    }

    #[test]
    fn hierarchical_allreduce_at_least_flat_over_fastest_link() {
        let topo = mixed();
        let ideal = topo.ideal_link();
        for devices in 1..=4 {
            for payload in [256.0, 65536.0, 1.0e8] {
                let h = topo.allreduce_s(payload, devices);
                let f = Topology::flat(ideal).allreduce_s(payload, devices);
                assert!(h >= f, "devices={devices} payload={payload}: {h} < {f}");
                assert!(h.is_finite() && h >= 0.0);
            }
        }
    }

    #[test]
    fn cross_island_tier_dominates_single_island() {
        // The same payload over 2 devices: both in one NVLink island vs
        // split across the IB tier. The tiered path must cost more.
        let topo = mixed();
        let payload = 1.0e6;
        let within = topo.islands()[0].link.allreduce_s(payload, 2);
        let across = topo.allreduce_s(payload, 3); // spans both islands
        assert!(across > within);
    }

    #[test]
    fn swap_path_resolves_per_device() {
        let topo = mixed();
        let shares = [1.0e9, 1.0e9, 1.0e9, 1.0e9];
        let t = topo.swap_transfer_s(4.0e9, &shares);
        // Parallel per-device DMA: the price is one share over the host
        // link, not four.
        let host = topo.host_link();
        assert_eq!(t.to_bits(), host.transfer_s(1.0e9).to_bits());
    }

    #[test]
    fn dangling_link_reference_is_typed() {
        let text = "\
[topology]
name = broken
cross_link = missing
host_link = pcie

[link pcie]
gbs = 64
latency_us = 10

[island a]
devices = h100
link = pcie
";
        match TopologySpec::parse(text) {
            Err(SpecError::UnknownReference { name, kind, .. }) => {
                assert_eq!(name, "missing");
                assert_eq!(kind, "link");
            }
            other => panic!("expected UnknownReference, got {other:?}"),
        }
    }

    #[test]
    fn unknown_device_profile_fails_resolution() {
        let text = "\
[topology]
name = broken
cross_link = pcie
host_link = pcie

[link pcie]
gbs = 64
latency_us = 10

[island a]
devices = tpu_v5
link = pcie
";
        let spec = TopologySpec::parse(text).unwrap();
        assert!(matches!(
            spec.resolve(),
            Err(SpecError::UnknownReference {
                kind: "device profile",
                ..
            })
        ));
    }
}
