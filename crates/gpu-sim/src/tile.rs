//! A minimal row-major matrix tile used by the functional simulator.

use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense row-major `rows × cols` tile of `f32` values.
///
/// The functional layer computes in `f32` (GPU accumulators) and rounds
/// through [`bd_lowbit::F16`] at the points where real kernels hold half
/// registers.
#[derive(Clone, PartialEq)]
pub struct Tile {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Tile {
    /// Creates a zero-filled tile.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Tile {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a tile from a row-major closure.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut t = Tile::zeros(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                t[(r, c)] = f(r, c);
            }
        }
        t
    }

    /// Creates a tile from row-major data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_rows(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "tile data length mismatch");
        Tile { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Underlying row-major slice.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable row-major slice.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// One row as a slice.
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// The transpose.
    pub fn transposed(&self) -> Tile {
        Tile::from_fn(self.cols, self.rows, |r, c| self[(c, r)])
    }

    /// Plain `self × rhs` matrix multiply with `f32` accumulation.
    ///
    /// # Panics
    ///
    /// Panics on inner-dimension mismatch.
    pub fn matmul(&self, rhs: &Tile) -> Tile {
        assert_eq!(self.cols, rhs.rows, "matmul inner dimension mismatch");
        let mut out = Tile::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                for j in 0..rhs.cols {
                    out[(i, j)] += a * rhs[(k, j)];
                }
            }
        }
        out
    }

    /// Largest absolute element difference against another tile.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn max_abs_diff(&self, other: &Tile) -> f32 {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f32::max)
    }
}

impl Index<(usize, usize)> for Tile {
    type Output = f32;
    fn index(&self, (r, c): (usize, usize)) -> &f32 {
        debug_assert!(r < self.rows && c < self.cols);
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Tile {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f32 {
        debug_assert!(r < self.rows && c < self.cols);
        &mut self.data[r * self.cols + c]
    }
}

impl fmt::Debug for Tile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Tile {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows.min(8) {
            write!(f, "  ")?;
            for c in 0..self.cols.min(8) {
                write!(f, "{:8.3} ", self[(r, c)])?;
            }
            writeln!(f, "{}", if self.cols > 8 { "…" } else { "" })?;
        }
        if self.rows > 8 {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_identity() {
        let a = Tile::from_fn(3, 3, |r, c| (r * 3 + c) as f32);
        let eye = Tile::from_fn(3, 3, |r, c| if r == c { 1.0 } else { 0.0 });
        assert_eq!(a.matmul(&eye), a);
    }

    #[test]
    fn matmul_known() {
        let a = Tile::from_rows(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let b = Tile::from_rows(2, 2, vec![5.0, 6.0, 7.0, 8.0]);
        let c = a.matmul(&b);
        assert_eq!(c.as_slice(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn transpose_involution() {
        let a = Tile::from_fn(4, 7, |r, c| (r * 13 + c * 3) as f32);
        assert_eq!(a.transposed().transposed(), a);
    }

    #[test]
    fn max_abs_diff_detects_change() {
        let a = Tile::zeros(2, 2);
        let mut b = Tile::zeros(2, 2);
        b[(1, 0)] = 0.5;
        assert_eq!(a.max_abs_diff(&b), 0.5);
    }
}
