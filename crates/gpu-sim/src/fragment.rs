//! Tensor Core fragment layouts: the value-to-thread mappings at the heart
//! of BitDecoding's layout-induction technique (paper §IV-A, Fig. 3).
//!
//! Every MMA instruction prescribes a rigid, *interleaved* assignment of
//! matrix elements to `(lane, register)` slots. `ldmatrix` fills registers in
//! exactly this assignment. BitDecoding's insight is that quantizing and
//! packing **per lane, in register order** implicitly preserves the
//! fragment layout, so unpacking with the *same* instruction configuration
//! lands values back in valid MMA positions with zero reshuffling — while
//! unpacking with a *different* configuration silently misplaces values.
//!
//! The mappings below follow the PTX ISA fragment diagrams for
//! `mma.sync.aligned` f16 shapes. They are pure bijections and are tested as
//! such; the MMA executor reads them when gathering operands, so a mapping
//! mismatch really corrupts the product, just like on silicon.

use crate::tile::Tile;
use bd_lowbit::F16;
use std::fmt;

/// Number of lanes in a warp.
pub const WARP_LANES: usize = 32;

/// The MMA instruction shapes modelled by the simulator.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum MmaShape {
    /// `mma.m16n8k16` on FP16 operands — the SM80/SM89 workhorse.
    M16N8K16,
    /// `mma.m16n8k8` on FP16 operands — the smaller legacy shape.
    M16N8K8,
    /// Blackwell block-scaled FP4 `mma.m16n8k32` (E2M1 operands).
    M16N8K32Fp4,
}

impl MmaShape {
    /// Rows of the accumulator (M).
    pub const fn m(self) -> usize {
        16
    }

    /// Columns of the accumulator (N).
    pub const fn n(self) -> usize {
        8
    }

    /// The reduction dimension (K).
    pub const fn k(self) -> usize {
        match self {
            MmaShape::M16N8K16 => 16,
            MmaShape::M16N8K8 => 8,
            MmaShape::M16N8K32Fp4 => 32,
        }
    }

    /// Elements of operand `B` each warp lane holds (`Pn · k / ...`); this
    /// is also the packing granularity of the Residual Kernel.
    pub const fn b_regs_per_lane(self) -> usize {
        self.k() * self.n() / WARP_LANES
    }

    /// Elements of operand `A` each warp lane holds.
    pub const fn a_regs_per_lane(self) -> usize {
        self.m() * self.k() / WARP_LANES
    }

    /// Elements of the accumulator each lane holds.
    pub const fn acc_regs_per_lane(self) -> usize {
        self.m() * self.n() / WARP_LANES
    }

    /// Elements along N processed per warp tile (`Pn` in paper Eq. 1).
    pub const fn pn(self) -> usize {
        self.n()
    }
}

impl fmt::Display for MmaShape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MmaShape::M16N8K16 => write!(f, "mma.m16n8k16"),
            MmaShape::M16N8K8 => write!(f, "mma.m16n8k8"),
            MmaShape::M16N8K32Fp4 => write!(f, "mma.m16n8k32.fp4"),
        }
    }
}

/// Which MMA operand a fragment feeds.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Operand {
    /// Left operand, `M × K`, row coordinate is `m`, column is `k`.
    A,
    /// Right operand, `K × N`, row coordinate is `k`, column is `n`.
    B,
    /// Accumulator, `M × N`.
    Acc,
}

/// A concrete fragment layout: `(shape, operand)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct FragmentLayout {
    /// The instruction shape.
    pub shape: MmaShape,
    /// The operand within the instruction.
    pub operand: Operand,
}

impl FragmentLayout {
    /// Convenience constructor.
    pub const fn new(shape: MmaShape, operand: Operand) -> Self {
        FragmentLayout { shape, operand }
    }

    /// `(rows, cols)` of the logical matrix this fragment covers.
    pub const fn dims(self) -> (usize, usize) {
        match self.operand {
            Operand::A => (self.shape.m(), self.shape.k()),
            Operand::B => (self.shape.k(), self.shape.n()),
            Operand::Acc => (self.shape.m(), self.shape.n()),
        }
    }

    /// Registers (elements) held per lane.
    pub const fn regs_per_lane(self) -> usize {
        match self.operand {
            Operand::A => self.shape.a_regs_per_lane(),
            Operand::B => self.shape.b_regs_per_lane(),
            Operand::Acc => self.shape.acc_regs_per_lane(),
        }
    }

    /// The instruction-defined `(lane, reg) → (row, col)` mapping.
    ///
    /// # Panics
    ///
    /// Panics if `lane ≥ 32` or `reg ≥ regs_per_lane()`.
    pub fn coords(self, lane: usize, reg: usize) -> (usize, usize) {
        assert!(lane < WARP_LANES, "lane {lane} out of range");
        assert!(
            reg < self.regs_per_lane(),
            "reg {reg} out of range for {self:?}"
        );
        let group = lane / 4; // "quad" row/col group in PTX diagrams
        let tig = lane % 4; // thread-in-group
        match self.operand {
            // A (M×K): pairs along k, replicated blocks along m (rows 0-7 /
            // 8-15) and along k in steps of 8.
            Operand::A => {
                let m = group + 8 * ((reg >> 1) & 1);
                let k = tig * 2 + (reg & 1) + 8 * (reg >> 2);
                (m, k)
            }
            // B (K×N): each lane owns one column (its quad group), pairs
            // along k with 8-row strides for higher registers.
            Operand::B => {
                let n = group;
                let k = tig * 2 + (reg & 1) + 8 * (reg >> 1);
                (k, n)
            }
            // Accumulator (M×N): pairs along n, rows split 0-7 / 8-15.
            Operand::Acc => {
                let m = group + 8 * (reg >> 1);
                let n = tig * 2 + (reg & 1);
                (m, n)
            }
        }
    }

    /// The inverse mapping `(row, col) → (lane, reg)`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinates exceed [`FragmentLayout::dims`].
    pub fn position(self, row: usize, col: usize) -> (usize, usize) {
        let (rows, cols) = self.dims();
        assert!(row < rows && col < cols, "({row},{col}) outside {self:?}");
        match self.operand {
            Operand::A => {
                let (m, k) = (row, col);
                let lane = (m % 8) * 4 + (k % 8) / 2;
                let reg = (k & 1) + 2 * (m / 8) + 4 * (k / 8);
                (lane, reg)
            }
            Operand::B => {
                let (k, n) = (row, col);
                let lane = n * 4 + (k % 8) / 2;
                let reg = (k & 1) + 2 * (k / 8);
                (lane, reg)
            }
            Operand::Acc => {
                let (m, n) = (row, col);
                let lane = (m % 8) * 4 + n / 2;
                let reg = (n & 1) + 2 * (m / 8);
                (lane, reg)
            }
        }
    }
}

/// A warp-wide register fragment of FP16 values.
///
/// `regs[lane][reg]` is the value in lane `lane`'s `reg`-th fragment
/// register. How those slots map to matrix coordinates is *not* a property
/// of the data — it is imposed by whichever instruction consumes the
/// fragment, which is exactly why layout mismatches corrupt results.
#[derive(Clone, Debug, PartialEq)]
pub struct Fragment {
    regs: Vec<[F16; 16]>,
    regs_per_lane: usize,
}

impl Fragment {
    /// An all-zero fragment with `regs_per_lane` registers.
    ///
    /// # Panics
    ///
    /// Panics if `regs_per_lane > 16` (no modelled shape needs more).
    pub fn zeroed(regs_per_lane: usize) -> Self {
        assert!(
            regs_per_lane <= 16,
            "at most 16 fragment registers per lane"
        );
        Fragment {
            regs: vec![[F16::ZERO; 16]; WARP_LANES],
            regs_per_lane,
        }
    }

    /// Registers per lane.
    pub fn regs_per_lane(&self) -> usize {
        self.regs_per_lane
    }

    /// Reads one register.
    pub fn get(&self, lane: usize, reg: usize) -> F16 {
        debug_assert!(reg < self.regs_per_lane);
        self.regs[lane][reg]
    }

    /// Writes one register.
    pub fn set(&mut self, lane: usize, reg: usize, v: F16) {
        debug_assert!(reg < self.regs_per_lane);
        self.regs[lane][reg] = v;
    }

    /// Gathers a tile from the fragment *interpreting* slots via `layout`
    /// (what an MMA instruction does internally).
    pub fn to_tile(&self, layout: FragmentLayout) -> Tile {
        let (rows, cols) = layout.dims();
        let mut t = Tile::zeros(rows, cols);
        for lane in 0..WARP_LANES {
            for reg in 0..layout.regs_per_lane() {
                let (r, c) = layout.coords(lane, reg);
                t[(r, c)] = self.get(lane, reg).to_f32();
            }
        }
        t
    }

    /// Scatters a tile into fragment slots via `layout` (what `ldmatrix`
    /// does when loading from shared memory).
    ///
    /// # Panics
    ///
    /// Panics if the tile shape does not match the layout.
    pub fn from_tile(tile: &Tile, layout: FragmentLayout) -> Self {
        let (rows, cols) = layout.dims();
        assert_eq!(
            (tile.rows(), tile.cols()),
            (rows, cols),
            "tile shape mismatch for {layout:?}"
        );
        let mut f = Fragment::zeroed(layout.regs_per_lane());
        for r in 0..rows {
            for c in 0..cols {
                let (lane, reg) = layout.position(r, c);
                f.set(lane, reg, F16::from_f32(tile[(r, c)]));
            }
        }
        f
    }

    /// The values held by one lane, in register order — the quantization
    /// granularity of the Residual Kernel.
    pub fn lane_values(&self, lane: usize) -> Vec<F16> {
        self.regs[lane][..self.regs_per_lane].to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_layouts() -> Vec<FragmentLayout> {
        let mut v = Vec::new();
        for shape in [MmaShape::M16N8K16, MmaShape::M16N8K8, MmaShape::M16N8K32Fp4] {
            for operand in [Operand::A, Operand::B, Operand::Acc] {
                v.push(FragmentLayout::new(shape, operand));
            }
        }
        v
    }

    #[test]
    fn mappings_are_bijective() {
        for layout in all_layouts() {
            let (rows, cols) = layout.dims();
            let mut seen = vec![false; WARP_LANES * 16];
            for r in 0..rows {
                for c in 0..cols {
                    let (lane, reg) = layout.position(r, c);
                    assert!(
                        lane < WARP_LANES && reg < layout.regs_per_lane(),
                        "{layout:?}"
                    );
                    let slot = lane * 16 + reg;
                    assert!(!seen[slot], "{layout:?}: slot collision at ({r},{c})");
                    seen[slot] = true;
                    assert_eq!(layout.coords(lane, reg), (r, c), "{layout:?}");
                }
            }
            assert_eq!(
                seen.iter().filter(|&&s| s).count(),
                rows * cols,
                "{layout:?} covers the matrix"
            );
        }
    }

    #[test]
    fn regs_per_lane_match_element_counts() {
        assert_eq!(
            FragmentLayout::new(MmaShape::M16N8K16, Operand::A).regs_per_lane(),
            8
        );
        assert_eq!(
            FragmentLayout::new(MmaShape::M16N8K16, Operand::B).regs_per_lane(),
            4
        );
        assert_eq!(
            FragmentLayout::new(MmaShape::M16N8K16, Operand::Acc).regs_per_lane(),
            4
        );
        assert_eq!(
            FragmentLayout::new(MmaShape::M16N8K8, Operand::B).regs_per_lane(),
            2
        );
        assert_eq!(
            FragmentLayout::new(MmaShape::M16N8K32Fp4, Operand::B).regs_per_lane(),
            8
        );
    }

    #[test]
    fn b_fragment_matches_ptx_diagram_shape() {
        // Thread 0 of m16n8k16 holds B elements (k,n) = (0,0),(1,0),(8,0),(9,0)
        // per the PTX interleaved pattern (pairs along k, +8 stride).
        let layout = FragmentLayout::new(MmaShape::M16N8K16, Operand::B);
        assert_eq!(layout.coords(0, 0), (0, 0));
        assert_eq!(layout.coords(0, 1), (1, 0));
        assert_eq!(layout.coords(0, 2), (8, 0));
        assert_eq!(layout.coords(0, 3), (9, 0));
        // Thread 1 shifts two rows down: (2,0),(3,0),(10,0),(11,0).
        assert_eq!(layout.coords(1, 0), (2, 0));
        assert_eq!(layout.coords(1, 3), (11, 0));
        // Thread 4 moves to column 1.
        assert_eq!(layout.coords(4, 0), (0, 1));
    }

    #[test]
    fn tile_round_trips_through_fragment() {
        for layout in all_layouts() {
            let (rows, cols) = layout.dims();
            let tile = Tile::from_fn(rows, cols, |r, c| (r * cols + c) as f32);
            let frag = Fragment::from_tile(&tile, layout);
            assert_eq!(frag.to_tile(layout), tile, "{layout:?}");
        }
    }

    #[test]
    fn interpreting_with_wrong_layout_scrambles_values() {
        // The crux of paper Fig. 3: register slots filled under one mapping,
        // read under another, yield a *different* matrix. B and Acc layouts
        // of m16n8k16 share 16x8 dims but interleave differently.
        let lb = FragmentLayout::new(MmaShape::M16N8K16, Operand::B);
        let lacc = FragmentLayout::new(MmaShape::M16N8K16, Operand::Acc);
        let tile = Tile::from_fn(16, 8, |r, c| (r * 8 + c) as f32);
        let frag = Fragment::from_tile(&tile, lb);
        let reinterpreted = frag.to_tile(lacc);
        assert!(
            reinterpreted.max_abs_diff(&tile) > 0.0,
            "layouts must differ"
        );
    }

    #[test]
    fn contiguous_packing_breaks_fragment_alignment() {
        // Fig. 3b: if a thread's values are packed *contiguously* into the
        // flattened tile (the naive layout) instead of via ldmatrix's
        // interleaved mapping, reading them back as a fragment misplaces
        // almost everything.
        let layout = FragmentLayout::new(MmaShape::M16N8K16, Operand::B);
        let tile = Tile::from_fn(16, 8, |r, c| (r * 8 + c) as f32);
        let flat = tile.as_slice();
        let mut naive = Fragment::zeroed(layout.regs_per_lane());
        for lane in 0..WARP_LANES {
            for reg in 0..layout.regs_per_lane() {
                let v = flat[lane * layout.regs_per_lane() + reg];
                naive.set(lane, reg, F16::from_f32(v));
            }
        }
        let got = naive.to_tile(layout);
        assert!(
            got.max_abs_diff(&tile) > 50.0,
            "naive packing must scramble"
        );
    }

    #[test]
    fn lane_values_are_contiguous_register_order() {
        let layout = FragmentLayout::new(MmaShape::M16N8K16, Operand::B);
        let tile = Tile::from_fn(16, 8, |r, c| (r * 8 + c) as f32);
        let frag = Fragment::from_tile(&tile, layout);
        let vals = frag.lane_values(0);
        assert_eq!(vals.len(), 4);
        // (0,0),(1,0),(8,0),(9,0) → 0, 8, 64, 72
        let got: Vec<f32> = vals.iter().map(|v| v.to_f32()).collect();
        assert_eq!(got, vec![0.0, 8.0, 64.0, 72.0]);
    }
}

#[cfg(test)]
mod guard_tests {
    use super::*;

    #[test]
    #[should_panic(expected = "at most 16 fragment registers")]
    fn oversized_fragment_rejected() {
        Fragment::zeroed(17);
    }

    #[test]
    #[should_panic(expected = "lane")]
    fn out_of_range_lane_rejected() {
        FragmentLayout::new(MmaShape::M16N8K16, Operand::B).coords(32, 0);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn out_of_range_position_rejected() {
        FragmentLayout::new(MmaShape::M16N8K16, Operand::B).position(16, 0);
    }

    #[test]
    fn display_names() {
        assert_eq!(MmaShape::M16N8K16.to_string(), "mma.m16n8k16");
        assert_eq!(MmaShape::M16N8K32Fp4.to_string(), "mma.m16n8k32.fp4");
    }
}
