//! Shared-memory bank model: conflict counting and the XOR swizzle
//! (paper Eq. 2, `col_id = row_id ⊕ col_id`) that makes `ldmatrix` loads
//! conflict-free.
//!
//! Shared memory is organised as 32 banks of 4-byte words. A warp access is
//! serialized into as many transactions as the most-contended bank needs;
//! accesses to the *same* word broadcast and count once.

/// Number of shared-memory banks.
pub const NUM_BANKS: usize = 32;
/// Bytes per bank word.
pub const BANK_WORD_BYTES: usize = 4;

/// Swizzling applied to a tile's column index when staging in shared memory.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum Swizzle {
    /// Plain row-major staging (conflict-prone for column accesses).
    None,
    /// XOR swizzle `col' = col ⊕ (row % groups)` on 16-byte chunks — the
    /// CUTLASS scheme referenced by the paper.
    #[default]
    Xor,
}

/// Counts the transactions one warp-wide access phase needs.
///
/// `byte_addrs` holds each lane's starting byte address; `bytes_per_lane` is
/// the contiguous span each lane reads (e.g. 16 for an `ldmatrix` row
/// pointer). Conflicting words in the same bank serialize; identical words
/// broadcast.
pub fn warp_transactions(byte_addrs: &[usize], bytes_per_lane: usize) -> u32 {
    let mut words_per_bank: Vec<Vec<usize>> = vec![Vec::new(); NUM_BANKS];
    for &addr in byte_addrs {
        let first_word = addr / BANK_WORD_BYTES;
        let last_word = (addr + bytes_per_lane - 1) / BANK_WORD_BYTES;
        for w in first_word..=last_word {
            let bank = w % NUM_BANKS;
            if !words_per_bank[bank].contains(&w) {
                words_per_bank[bank].push(w);
            }
        }
    }
    words_per_bank
        .iter()
        .map(|v| v.len() as u32)
        .max()
        .unwrap_or(0)
}

/// Byte offset of `(row, col_16B_chunk)` within a staged tile, applying the
/// swizzle. `row_stride_bytes` is the padded row pitch, and columns are
/// addressed in 16-byte chunks (the `ldmatrix` access granularity).
pub fn staged_offset(row: usize, chunk: usize, row_stride_bytes: usize, swizzle: Swizzle) -> usize {
    let chunks_per_row = (row_stride_bytes / 16).max(1);
    let chunk = chunk % chunks_per_row;
    let c = match swizzle {
        Swizzle::None => chunk,
        Swizzle::Xor => {
            if chunks_per_row.is_power_of_two() && chunks_per_row > 1 {
                (chunk ^ (row % chunks_per_row)) % chunks_per_row
            } else {
                chunk
            }
        }
    };
    row * row_stride_bytes + c * 16
}

/// Minimum transactions the access set needs if banks were perfectly
/// balanced: `ceil(distinct words / 32)`.
pub fn optimal_transactions(byte_addrs: &[usize], bytes_per_lane: usize) -> u32 {
    let mut words: Vec<usize> = byte_addrs
        .iter()
        .flat_map(|&addr| {
            let first = addr / BANK_WORD_BYTES;
            let last = (addr + bytes_per_lane - 1) / BANK_WORD_BYTES;
            first..=last
        })
        .collect();
    words.sort_unstable();
    words.dedup();
    words.len().div_ceil(NUM_BANKS) as u32
}

/// Transactions for one `ldmatrix.x4` load of four 8×8 FP16 tiles from a
/// staged region: 32 lanes each present one 16-byte row pointer.
///
/// `row_stride_bytes` is the staged pitch; `col_chunk(lane)` selects which
/// 16-byte chunk of the row the lane's tile occupies.
pub fn ldmatrix_x4_transactions(
    row_stride_bytes: usize,
    swizzle: Swizzle,
    col_chunk: impl Fn(usize) -> usize,
) -> u32 {
    let addrs: Vec<usize> = (0..32)
        .map(|lane| {
            let row = lane % 8 + (lane / 16) * 8; // two tile-rows of 8
            let chunk = col_chunk(lane);
            staged_offset(row, chunk, row_stride_bytes, swizzle)
        })
        .collect();
    warp_transactions(&addrs, 16)
}

/// Conflict multiplier for an `ldmatrix.x4` load from a
/// `row_stride_bytes`-pitch staging buffer: 1.0 means conflict-free
/// (actual transactions equal the balanced-bank minimum).
pub fn conflict_factor(row_stride_bytes: usize, swizzle: Swizzle) -> f64 {
    let col_chunk = |lane: usize| (lane / 8) % 2;
    let addrs: Vec<usize> = (0..32)
        .map(|lane| {
            let row = lane % 8 + (lane / 16) * 8;
            staged_offset(row, col_chunk(lane), row_stride_bytes, swizzle)
        })
        .collect();
    let actual = warp_transactions(&addrs, 16);
    let optimal = optimal_transactions(&addrs, 16).max(1);
    f64::from(actual) / f64::from(optimal)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn broadcast_counts_once() {
        // All lanes read the same 4-byte word: one transaction.
        let addrs = vec![128usize; 32];
        assert_eq!(warp_transactions(&addrs, 4), 1);
    }

    #[test]
    fn fully_sequential_is_conflict_free() {
        // Lanes read consecutive 4-byte words: each bank sees one word.
        let addrs: Vec<usize> = (0..32).map(|l| l * 4).collect();
        assert_eq!(warp_transactions(&addrs, 4), 1);
    }

    #[test]
    fn same_bank_strided_serializes() {
        // Stride of 128 bytes puts every lane in bank 0: 32-way conflict.
        let addrs: Vec<usize> = (0..32).map(|l| l * 128).collect();
        assert_eq!(warp_transactions(&addrs, 4), 32);
    }

    #[test]
    fn xor_swizzle_removes_ldmatrix_conflicts() {
        // A 128-byte-pitch staging buffer (e.g. d=64 halves per row):
        // without swizzle the 16-byte row chunks collide heavily; the XOR
        // swizzle makes the load conflict-free.
        let no = conflict_factor(128, Swizzle::None);
        let yes = conflict_factor(128, Swizzle::Xor);
        assert!(no > 1.5, "unswizzled should conflict, got {no}");
        assert!(
            (yes - 1.0).abs() < 1e-9,
            "swizzled should be clean, got {yes}"
        );
    }

    #[test]
    fn swizzle_is_a_permutation_within_each_row() {
        for row in 0..8 {
            let mut seen = [false; 8];
            for chunk in 0..8 {
                let off = staged_offset(row, chunk, 128, Swizzle::Xor);
                assert_eq!(off / 128, row);
                let c = (off % 128) / 16;
                assert!(!seen[c], "collision in row {row}");
                seen[c] = true;
            }
        }
    }

    #[test]
    fn narrow_rows_degenerate_gracefully() {
        // A 16-byte pitch has a single chunk per row; swizzle is identity
        // and the column access serializes by construction.
        assert_eq!(staged_offset(3, 0, 16, Swizzle::Xor), 48);
        assert!(conflict_factor(16, Swizzle::Xor) >= 1.0);
    }
}
