//! Kernel event profiles: the resource-usage summary a kernel execution
//! produces, which the [cost model](crate::cost) turns into latency.
//!
//! Profiles count *issued* work, so tile underfill (e.g. a 4-row query
//! block issued as a full 16-row MMA tile) is charged automatically.

use std::ops::{Add, AddAssign};

/// CUDA-core instruction counts, split by class so breakdowns like the
/// paper's Fig. 15 (dequant share, FMA vs ALU pressure) can be reported.
///
/// Counts are *per-lane issued instructions* (a warp instruction over 32
/// lanes counts 32).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct CudaOps {
    /// Fast dequantization ops (`lop3`, shifts, `HFMA2`) — full rate.
    pub dequant: f64,
    /// Slow-path conversions (`cvt`) — quarter rate.
    pub cvt: f64,
    /// Quantization + packing ops (min/max FMAs, rounds, shifts) — full rate.
    pub quant: f64,
    /// Transcendental `exp2` for softmax — SFU quarter rate.
    pub exp: f64,
    /// Matrix-multiply FMAs executed on CUDA cores (GEMV-style systems).
    pub fma: f64,
    /// Reduction ops (`shfl`, warp max/sum folds).
    pub reduce: f64,
    /// Everything else (address math, predication, rescale).
    pub misc: f64,
}

impl CudaOps {
    /// Issue slots consumed, with per-class rate multipliers applied
    /// (SFU/`cvt` run at quarter rate).
    pub fn issue_slots(&self) -> f64 {
        self.dequant + self.quant + self.fma + self.reduce + self.misc + 4.0 * (self.cvt + self.exp)
    }

    /// Raw instruction count without rate weighting.
    pub fn total_ops(&self) -> f64 {
        self.dequant + self.cvt + self.quant + self.exp + self.fma + self.reduce + self.misc
    }
}

impl Add for CudaOps {
    type Output = CudaOps;
    fn add(self, o: CudaOps) -> CudaOps {
        CudaOps {
            dequant: self.dequant + o.dequant,
            cvt: self.cvt + o.cvt,
            quant: self.quant + o.quant,
            exp: self.exp + o.exp,
            fma: self.fma + o.fma,
            reduce: self.reduce + o.reduce,
            misc: self.misc + o.misc,
        }
    }
}

impl AddAssign for CudaOps {
    fn add_assign(&mut self, o: CudaOps) {
        *self = *self + o;
    }
}

/// Pipeline overlap coefficients for one kernel.
///
/// `1.0` means the smaller of the two overlapped quantities is fully hidden
/// behind the larger; `0.0` means strict serialization. These are *set by
/// kernel structure* (warp layout, async pipeline, fusion style), not tuned
/// per experiment — e.g. a CUDA-core-only kernel executes dequant and
/// matmul FMAs on the same unit and cannot overlap them at all.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct OverlapSpec {
    /// Overlap between Tensor Core time and CUDA-core time.
    pub tc_cuda: f64,
    /// Overlap between memory time (DRAM + smem) and compute time.
    pub mem_compute: f64,
}

impl OverlapSpec {
    /// A fully software-pipelined fused kernel (BitDecoding Packing Kernel
    /// with `Wn ≥ 4`): near-perfect producer–consumer overlap.
    pub const PIPELINED: OverlapSpec = OverlapSpec {
        tc_cuda: 0.95,
        mem_compute: 0.92,
    };

    /// A fused kernel without the warp-parallelism fix (`Wn = 1`):
    /// dequantization stalls the single warp chain (paper Fig. 4).
    pub const SERIALIZED_DEQUANT: OverlapSpec = OverlapSpec {
        tc_cuda: 0.10,
        mem_compute: 0.75,
    };

    /// A straightforward fused kernel with no TC/CUDA cooperation
    /// (CUDA-core-only designs; also FP16 FlashAttention where CUDA work is
    /// just softmax).
    pub const FUSED_BASIC: OverlapSpec = OverlapSpec {
        tc_cuda: 0.60,
        mem_compute: 0.85,
    };

    /// A standalone non-fused kernel: loads, computes, stores.
    pub const STANDALONE: OverlapSpec = OverlapSpec {
        tc_cuda: 0.50,
        mem_compute: 0.60,
    };
}

impl Default for OverlapSpec {
    fn default() -> Self {
        OverlapSpec::FUSED_BASIC
    }
}

/// Resource usage of one kernel launch (or a homogeneous grid of them).
#[derive(Clone, Debug, PartialEq)]
pub struct KernelProfile {
    /// Human-readable kernel name for reports.
    pub name: String,
    /// Number of kernel launches this profile covers.
    pub launches: f64,
    /// Bytes read from DRAM (L2 misses are not modelled separately).
    pub dram_read_bytes: f64,
    /// Bytes written to DRAM.
    pub dram_write_bytes: f64,
    /// FP16 Tensor Core multiply-accumulates issued.
    pub tc_macs_fp16: f64,
    /// FP8 Tensor Core MACs issued.
    pub tc_macs_fp8: f64,
    /// FP4 Tensor Core MACs issued.
    pub tc_macs_fp4: f64,
    /// CUDA-core instruction counts.
    pub cuda: CudaOps,
    /// Shared-memory transactions (128 B each), conflicts included.
    pub smem_transactions: f64,
    /// Grid size (CTAs) for occupancy.
    pub ctas: f64,
    /// Warps per CTA for latency-hiding.
    pub warps_per_cta: f64,
    /// Pipeline overlap structure.
    pub overlap: OverlapSpec,
    /// Achieved-bandwidth derate for issue-limited kernels (default 1.0).
    ///
    /// A kernel whose single compute warp stalls on dequantization between
    /// every tile cannot keep enough loads in flight to saturate DRAM
    /// (paper Fig. 4); such kernels run at a fraction of effective
    /// bandwidth regardless of grid occupancy.
    pub bw_derate: f64,
}

impl KernelProfile {
    /// An empty profile with one launch and default overlap.
    pub fn new(name: impl Into<String>) -> Self {
        KernelProfile {
            name: name.into(),
            launches: 1.0,
            dram_read_bytes: 0.0,
            dram_write_bytes: 0.0,
            tc_macs_fp16: 0.0,
            tc_macs_fp8: 0.0,
            tc_macs_fp4: 0.0,
            cuda: CudaOps::default(),
            smem_transactions: 0.0,
            ctas: 1.0,
            warps_per_cta: 4.0,
            overlap: OverlapSpec::default(),
            bw_derate: 1.0,
        }
    }

    /// Total DRAM traffic.
    pub fn dram_bytes(&self) -> f64 {
        self.dram_read_bytes + self.dram_write_bytes
    }

    /// Total Tensor Core MACs across precisions.
    pub fn tc_macs(&self) -> f64 {
        self.tc_macs_fp16 + self.tc_macs_fp8 + self.tc_macs_fp4
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn issue_slots_weight_sfu_and_cvt() {
        let ops = CudaOps {
            dequant: 10.0,
            cvt: 5.0,
            exp: 2.0,
            ..Default::default()
        };
        assert_eq!(ops.issue_slots(), 10.0 + 4.0 * 7.0);
        assert_eq!(ops.total_ops(), 17.0);
    }

    #[test]
    fn cuda_ops_add() {
        let a = CudaOps {
            dequant: 1.0,
            fma: 2.0,
            ..Default::default()
        };
        let b = CudaOps {
            dequant: 3.0,
            exp: 1.0,
            ..Default::default()
        };
        let c = a + b;
        assert_eq!(c.dequant, 4.0);
        assert_eq!(c.fma, 2.0);
        assert_eq!(c.exp, 1.0);
    }

    #[test]
    #[allow(clippy::assertions_on_constants)]
    fn overlap_presets_ordered() {
        assert!(OverlapSpec::PIPELINED.tc_cuda > OverlapSpec::FUSED_BASIC.tc_cuda);
        assert!(OverlapSpec::FUSED_BASIC.tc_cuda > OverlapSpec::SERIALIZED_DEQUANT.tc_cuda);
        assert!(OverlapSpec::PIPELINED.mem_compute > OverlapSpec::STANDALONE.mem_compute);
    }

    #[test]
    fn profile_totals() {
        let mut p = KernelProfile::new("k");
        p.dram_read_bytes = 100.0;
        p.dram_write_bytes = 20.0;
        p.tc_macs_fp16 = 5.0;
        p.tc_macs_fp4 = 7.0;
        assert_eq!(p.dram_bytes(), 120.0);
        assert_eq!(p.tc_macs(), 12.0);
    }
}
