#![warn(missing_docs)]

//! # bd-gpu-sim — a GPU execution-model simulator for BitDecoding-RS
//!
//! Rust has no tensor-core kernel tooling and this reproduction targets
//! machines without NVIDIA GPUs, so the paper's hardware substrate is
//! replaced by this simulator (see `DESIGN.md` §1). It has two layers that
//! share one vocabulary:
//!
//! * a **functional layer** ([`fragment`], [`isa`], [`tile`], [`smem`])
//!   that executes real data movement at value granularity — fragment
//!   layouts are genuine bijections and an `mma` fed registers packed under
//!   the wrong layout computes genuinely wrong numbers;
//! * a **timing layer** ([`arch`], [`profile`], [`cost`]) — an analytical
//!   roofline-with-overlap model that converts counted events (DRAM bytes,
//!   TC MACs, CUDA-core slots, smem transactions, launches) into latency on
//!   each of the paper's five evaluation GPUs.
//!
//! ## Example
//!
//! ```
//! use bd_gpu_sim::{GpuArch, KernelProfile};
//!
//! let arch = GpuArch::rtx4090();
//! let mut p = KernelProfile::new("attention");
//! p.dram_read_bytes = 256e6; // half-precision KV for a long context
//! p.ctas = 512.0;
//! let lat = arch.evaluate(&p);
//! assert!(lat.total > 0.0);
//! println!("{lat}");
//! ```

pub mod arch;
pub mod cost;
pub mod fragment;
pub mod isa;
pub mod profile;
pub mod smem;
pub mod spec;
pub mod tile;
pub mod topology;

pub use arch::{ArchGen, GpuArch, Precision};
pub use cost::{InterconnectModel, LatencyBreakdown};
pub use fragment::{Fragment, FragmentLayout, MmaShape, Operand, WARP_LANES};
pub use isa::{
    ldmatrix, lop3, mma, mma_block_scaled_fp4, shfl_xor_reduce, stsm, wgmma_ss, AccFragment,
    LOP3_AND_OR,
};
pub use profile::{CudaOps, KernelProfile, OverlapSpec};
pub use smem::{
    conflict_factor, ldmatrix_x4_transactions, staged_offset, warp_transactions, Swizzle,
};
pub use spec::{builtin_device, DeviceSpec, SpecError, BUILTIN_PROFILES};
pub use tile::Tile;
pub use topology::{builtin_topology, Island, Topology, TopologySpec, BUILTIN_TOPOLOGIES};
