//! The analytical timing model: turns a [`KernelProfile`] into latency on a
//! [`GpuArch`].
//!
//! The model is a roofline with explicit overlap and occupancy terms:
//!
//! ```text
//! t_mem    = dram_bytes / (BW · mem_efficiency)
//! t_tc     = Σ_p  macs_p · 2 / tc_flops(p)
//! t_cuda   = issue_slots / cuda_ips          (per-class rate weights)
//! t_smem   = transactions · 128B / smem_bw
//! compute  = overlap(t_tc, t_cuda; tc_cuda)
//! core     = overlap(max(t_mem, t_smem)..., compute; mem_compute)
//! total    = core / occupancy(ctas, warps) + launches · t_launch
//! ```
//!
//! where `overlap(a, b; ω) = max(a,b) + (1-ω)·min(a,b)`. Occupancy scales
//! the achievable throughput by the fraction of latency-hiding warps the
//! grid actually provides — the term that makes single-batch decoding
//! require split-KV parallelism.

use crate::arch::{GpuArch, Precision};
use crate::profile::KernelProfile;
use std::fmt;

/// Analytic model of the inter-device link that tensor-parallel decode
/// all-reduces over (NVLink/PCIe-class point-to-point ring).
///
/// The collective modelled is a **ring all-reduce**: `2·(N−1)` pipeline
/// steps, each moving `payload / N` bytes per device, so every device
/// sends (and receives) `2·(N−1)/N · payload` bytes per collective plus a
/// per-hop latency floor. A single device does no communication. The model
/// deliberately captures only bandwidth and hop latency — no congestion,
/// no topology (every pair is one hop), no compute/comm overlap; the
/// ROADMAP records these limits.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct InterconnectModel {
    /// Per-direction link bandwidth per device, GB/s.
    pub link_gbs: f64,
    /// Per-hop latency floor, microseconds.
    pub latency_us: f64,
}

impl InterconnectModel {
    /// A custom link.
    ///
    /// # Panics
    ///
    /// Panics if the bandwidth is not positive.
    pub fn new(link_gbs: f64, latency_us: f64) -> Self {
        assert!(link_gbs > 0.0, "link bandwidth must be positive");
        InterconnectModel {
            link_gbs,
            latency_us,
        }
    }

    /// NVLink-4 class link (H100 NVL: ~450 GB/s per direction).
    pub fn nvlink4() -> Self {
        InterconnectModel::new(450.0, 3.0)
    }

    /// PCIe Gen5 x16 class link (~64 GB/s).
    pub fn pcie_gen5() -> Self {
        InterconnectModel::new(64.0, 10.0)
    }

    /// Bytes each device sends over the ring to all-reduce a
    /// `payload_bytes` tensor across `devices` devices.
    pub fn allreduce_bytes_per_device(&self, payload_bytes: f64, devices: usize) -> f64 {
        if devices <= 1 {
            0.0
        } else {
            2.0 * (devices - 1) as f64 / devices as f64 * payload_bytes
        }
    }

    /// Wall-clock seconds of the ring all-reduce (bandwidth term plus the
    /// `2·(N−1)` hop-latency floor).
    pub fn allreduce_s(&self, payload_bytes: f64, devices: usize) -> f64 {
        if devices <= 1 {
            return 0.0;
        }
        let wire = self.allreduce_bytes_per_device(payload_bytes, devices) / (self.link_gbs * 1e9);
        wire + 2.0 * (devices - 1) as f64 * self.latency_us * 1e-6
    }

    /// Wall-clock seconds of a single point-to-point transfer of
    /// `payload_bytes` over the link (bandwidth term plus one hop-latency
    /// floor) — the primitive a KV swap-out/swap-in over a PCIe-class
    /// host link is priced with. Zero bytes still pay the hop latency.
    pub fn transfer_s(&self, payload_bytes: f64) -> f64 {
        payload_bytes / (self.link_gbs * 1e9) + self.latency_us * 1e-6
    }
}

/// Latency decomposition of one kernel (all times in seconds).
///
/// `t_*` fields are *ideal* unit-busy times at full occupancy; the
/// `*_wall` fields are occupancy-adjusted wall-clock contributions, which
/// stay meaningful when breakdowns of several kernels are
/// [chained](LatencyBreakdown::chain).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct LatencyBreakdown {
    /// DRAM time.
    pub t_mem: f64,
    /// Tensor Core time.
    pub t_tc: f64,
    /// CUDA-core time (all classes).
    pub t_cuda: f64,
    /// CUDA-core time attributable to dequantization (incl. slow casts).
    pub t_cuda_dequant: f64,
    /// CUDA-core time attributable to quantization/packing.
    pub t_cuda_quant: f64,
    /// CUDA-core time of matmul FMAs (GEMV-style kernels).
    pub t_cuda_fma: f64,
    /// Shared-memory time.
    pub t_smem: f64,
    /// Launch overhead.
    pub t_launch: f64,
    /// Occupancy factor applied (1.0 = fully occupied).
    pub occupancy: f64,
    /// Wall-clock Tensor Core busy time (occupancy-adjusted).
    pub tc_wall: f64,
    /// Wall-clock dequantization busy time.
    pub dequant_wall: f64,
    /// Wall-clock DRAM busy time.
    pub mem_wall: f64,
    /// End-to-end kernel latency.
    pub total: f64,
}

impl LatencyBreakdown {
    /// Tensor Core utilization: busy TC wall time over total latency.
    pub fn tc_utilization(&self) -> f64 {
        if self.total > 0.0 {
            (self.tc_wall / self.total).min(1.0)
        } else {
            0.0
        }
    }

    /// Fraction of kernel time attributable to dequantization work
    /// (the quantity Fig. 15a reports).
    pub fn dequant_fraction(&self) -> f64 {
        if self.total > 0.0 {
            (self.dequant_wall / self.total).min(1.0)
        } else {
            0.0
        }
    }

    /// Achieved-DRAM-throughput proxy: memory wall time over total.
    pub fn mem_throughput_fraction(&self) -> f64 {
        if self.total > 0.0 {
            (self.mem_wall / self.total).min(1.0)
        } else {
            0.0
        }
    }

    /// Sums two breakdowns (sequential kernels).
    pub fn chain(self, other: LatencyBreakdown) -> LatencyBreakdown {
        LatencyBreakdown {
            t_mem: self.t_mem + other.t_mem,
            t_tc: self.t_tc + other.t_tc,
            t_cuda: self.t_cuda + other.t_cuda,
            t_cuda_dequant: self.t_cuda_dequant + other.t_cuda_dequant,
            t_cuda_quant: self.t_cuda_quant + other.t_cuda_quant,
            t_cuda_fma: self.t_cuda_fma + other.t_cuda_fma,
            t_smem: self.t_smem + other.t_smem,
            t_launch: self.t_launch + other.t_launch,
            occupancy: self.occupancy.min(other.occupancy),
            tc_wall: self.tc_wall + other.tc_wall,
            dequant_wall: self.dequant_wall + other.dequant_wall,
            mem_wall: self.mem_wall + other.mem_wall,
            total: self.total + other.total,
        }
    }
}

impl fmt::Display for LatencyBreakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.3} ms (mem {:.3}, tc {:.3}, cuda {:.3}, smem {:.3}, launch {:.3}; occ {:.2})",
            self.total * 1e3,
            self.t_mem * 1e3,
            self.t_tc * 1e3,
            self.t_cuda * 1e3,
            self.t_smem * 1e3,
            self.t_launch * 1e3,
            self.occupancy,
        )
    }
}

/// `max(a,b) + (1-ω)·min(a,b)` — the pairwise overlap combinator.
fn overlap(a: f64, b: f64, omega: f64) -> f64 {
    a.max(b) + (1.0 - omega.clamp(0.0, 1.0)) * a.min(b)
}

impl GpuArch {
    /// Latency-hiding occupancy factor for a grid.
    ///
    /// With fewer resident warps than [`GpuArch::warps_to_saturate`] per SM
    /// (averaged over the device), achieved throughput degrades linearly —
    /// the regime single-batch decoding lives in without split-KV.
    pub fn occupancy_factor(&self, ctas: f64, warps_per_cta: f64) -> f64 {
        if ctas <= 0.0 {
            return 1.0;
        }
        let avg_warps_per_sm = warps_per_cta * ctas / self.sms as f64;
        // Floor at 0.1: even a single CTA pipelines its own loads, so tiny
        // grids degrade to a latency floor rather than collapsing linearly.
        (avg_warps_per_sm / self.warps_to_saturate).clamp(0.1, 1.0)
    }

    /// Evaluates a kernel profile into a latency breakdown.
    pub fn evaluate(&self, p: &KernelProfile) -> LatencyBreakdown {
        let t_mem = p.dram_bytes() / (self.effective_bw_bytes() * p.bw_derate.clamp(0.01, 1.0));

        let mut t_tc = 0.0;
        for (macs, prec) in [
            (p.tc_macs_fp16, Precision::Fp16),
            (p.tc_macs_fp8, Precision::Fp8),
            (p.tc_macs_fp4, Precision::Fp4),
        ] {
            if macs > 0.0 {
                let flops = self.tc_flops(prec);
                assert!(
                    flops > 0.0,
                    "{}: kernel '{}' issues {prec:?} MACs unsupported on this arch",
                    self.name,
                    p.name
                );
                t_tc += macs * 2.0 / flops;
            }
        }

        let ips = self.cuda_ips_effective();
        let t_cuda = p.cuda.issue_slots() / ips;
        let t_cuda_dequant = (p.cuda.dequant + 4.0 * p.cuda.cvt) / ips;
        let t_cuda_quant = p.cuda.quant / ips;
        let t_cuda_fma = p.cuda.fma / ips;

        let t_smem = p.smem_transactions * 128.0 / self.smem_bw_bytes();

        let compute = overlap(t_tc, t_cuda, p.overlap.tc_cuda);
        let mem = t_mem + t_smem; // both are "data movement" streams
        let core = overlap(mem, compute, p.overlap.mem_compute);

        let occupancy = self.occupancy_factor(p.ctas, p.warps_per_cta);
        let t_launch = p.launches * self.launch_overhead_us * 1e-6;
        let total = core / occupancy + t_launch;

        LatencyBreakdown {
            t_mem,
            t_tc,
            t_cuda,
            t_cuda_dequant,
            t_cuda_quant,
            t_cuda_fma,
            t_smem,
            t_launch,
            occupancy,
            tc_wall: t_tc / occupancy,
            dequant_wall: t_cuda_dequant / occupancy,
            mem_wall: t_mem / occupancy,
            total,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::OverlapSpec;

    fn mem_bound_profile(bytes: f64) -> KernelProfile {
        let mut p = KernelProfile::new("membound");
        p.dram_read_bytes = bytes;
        p.ctas = 1000.0;
        p.warps_per_cta = 8.0;
        p.overlap = OverlapSpec::PIPELINED;
        p
    }

    #[test]
    fn mem_bound_kernel_tracks_bandwidth() {
        let arch = GpuArch::a100();
        let bytes = 512e6;
        let b = arch.evaluate(&mem_bound_profile(bytes));
        let ideal = bytes / arch.effective_bw_bytes();
        assert!((b.total - ideal - b.t_launch).abs() / ideal < 0.05);
    }

    #[test]
    fn quarter_bytes_quarter_time() {
        let arch = GpuArch::rtx4090();
        let t_full = arch.evaluate(&mem_bound_profile(400e6)).total;
        let t_quarter = arch.evaluate(&mem_bound_profile(100e6)).total;
        let ratio = t_full / t_quarter;
        assert!(ratio > 3.5 && ratio < 4.1, "ratio {ratio}");
    }

    #[test]
    fn low_occupancy_inflates_latency() {
        let arch = GpuArch::a100();
        let mut p = mem_bound_profile(64e6);
        p.ctas = 8.0; // single-batch GQA without split-KV
        p.warps_per_cta = 4.0;
        let starved = arch.evaluate(&p).total;
        let mut p2 = p.clone();
        p2.ctas = 1024.0;
        let full = arch.evaluate(&p2).total;
        assert!(starved > full * 5.0, "starved {starved} vs full {full}");
    }

    #[test]
    fn serialized_dequant_slower_than_pipelined() {
        let arch = GpuArch::rtx4090();
        // Low-bit kernel: small memory traffic, comparable TC and dequant
        // work so the overlap structure is what differentiates.
        let mut p = mem_bound_profile(20e6);
        p.tc_macs_fp16 = 8e9;
        p.cuda.dequant = 3e9;
        let fast = arch.evaluate(&p).total;
        p.overlap = OverlapSpec::SERIALIZED_DEQUANT;
        let slow = arch.evaluate(&p).total;
        assert!(slow > fast * 1.2, "slow {slow} fast {fast}");
    }

    #[test]
    fn cuda_only_matmul_slower_than_tensor_core() {
        let arch = GpuArch::a100();
        let macs = 4e9;
        let mut tc = mem_bound_profile(50e6);
        tc.tc_macs_fp16 = macs;
        let mut cc = mem_bound_profile(50e6);
        cc.cuda.fma = macs; // same MACs on CUDA cores
        let t_tc = arch.evaluate(&tc).total;
        let t_cc = arch.evaluate(&cc).total;
        assert!(t_cc > t_tc * 3.0, "cuda {t_cc} vs tc {t_tc}");
    }

    #[test]
    fn launch_overhead_dominates_tiny_kernels() {
        let arch = GpuArch::h100();
        let mut p = KernelProfile::new("tiny");
        p.dram_read_bytes = 1e3;
        p.launches = 10.0;
        let b = arch.evaluate(&p);
        assert!(b.t_launch > 0.9 * b.total - 1e-9);
    }

    #[test]
    #[should_panic(expected = "unsupported on this arch")]
    fn fp4_on_ampere_panics() {
        let mut p = KernelProfile::new("fp4");
        p.tc_macs_fp4 = 1e9;
        GpuArch::a100().evaluate(&p);
    }

    #[test]
    fn interconnect_single_device_is_free() {
        let link = InterconnectModel::nvlink4();
        assert_eq!(link.allreduce_s(1e9, 1), 0.0);
        assert_eq!(link.allreduce_bytes_per_device(1e9, 1), 0.0);
    }

    #[test]
    fn interconnect_ring_scaling() {
        let link = InterconnectModel::new(100.0, 0.0);
        // 2-device ring moves exactly the payload per device.
        assert!((link.allreduce_bytes_per_device(1e6, 2) - 1e6).abs() < 1e-6);
        // Per-device bytes grow toward 2x payload as N grows.
        assert!(link.allreduce_bytes_per_device(1e6, 8) > link.allreduce_bytes_per_device(1e6, 2));
        assert!(link.allreduce_bytes_per_device(1e6, 1024) < 2e6);
        // Bandwidth term: 1 MB at 100 GB/s ≈ 10 µs for 2 devices.
        assert!((link.allreduce_s(1e6, 2) - 1e-5).abs() < 1e-9);
        // Latency floor dominates tiny payloads.
        let lat = InterconnectModel::new(100.0, 5.0);
        assert!(lat.allreduce_s(8.0, 4) > 29e-6);
    }

    #[test]
    fn interconnect_point_to_point_transfer() {
        // 64 MB over a 64 GB/s PCIe-class link ≈ 1 ms + 10 µs hop floor.
        let link = InterconnectModel::pcie_gen5();
        let t = link.transfer_s(64e6);
        assert!((t - (1e-3 + 10e-6)).abs() < 1e-9);
        // Zero bytes still pay the hop latency.
        assert!((link.transfer_s(0.0) - 10e-6).abs() < 1e-12);
        // A transfer is cheaper than an all-reduce of the same payload on
        // the same link (one hop vs 2·(N−1)).
        assert!(link.transfer_s(1e6) < link.allreduce_s(1e6, 2));
    }

    #[test]
    fn breakdown_chain_adds_totals() {
        let arch = GpuArch::a100();
        let b1 = arch.evaluate(&mem_bound_profile(10e6));
        let b2 = arch.evaluate(&mem_bound_profile(20e6));
        let c = b1.chain(b2);
        assert!((c.total - (b1.total + b2.total)).abs() < 1e-12);
        assert!((c.t_mem - (b1.t_mem + b2.t_mem)).abs() < 1e-12);
    }

    #[test]
    fn tc_utilization_reported() {
        let arch = GpuArch::a100();
        let mut p = mem_bound_profile(1e6);
        p.tc_macs_fp16 = 1e10;
        let b = arch.evaluate(&p);
        assert!(b.tc_utilization() > 0.5);
        assert!(b.tc_utilization() <= 1.01);
    }
}
