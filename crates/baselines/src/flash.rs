//! FP16 FlashDecoding baselines — the speedup denominators of every figure.
//!
//! `FlashDecoding-v2` is FlashAttention-2 with split-KV partitioning for
//! decode; `v3` is the Hopper rewrite using `wgmma` + TMA (paper §VI-A uses
//! v2 as the normalization baseline and shows v3 separately on H100).

use crate::system::DecodeSystem;
use bd_core::{choose_splits, combine_kernel_profile, AttentionConfig, DecodeShape};
use bd_gpu_sim::{GpuArch, KernelProfile, OverlapSpec};

/// Which FlashAttention generation the kernel uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FlashVersion {
    /// SM80-era kernels (`mma.m16n8k16`, `cp.async`).
    V2,
    /// Hopper kernels (`wgmma`, TMA, warp specialization).
    V3,
}

/// The FP16 fused attention baseline.
#[derive(Clone, Copy, Debug)]
pub struct FlashDecoding {
    /// Kernel generation.
    pub version: FlashVersion,
}

impl FlashDecoding {
    /// FlashDecoding-v2 (the universal baseline).
    pub const fn v2() -> Self {
        FlashDecoding {
            version: FlashVersion::V2,
        }
    }

    /// FlashDecoding/FlashAttention-v3 (Hopper only).
    pub const fn v3() -> Self {
        FlashDecoding {
            version: FlashVersion::V3,
        }
    }
}

impl DecodeSystem for FlashDecoding {
    fn label(&self) -> String {
        match self.version {
            FlashVersion::V2 => "FlashDecoding-v2".to_owned(),
            FlashVersion::V3 => "FlashDecoding-v3".to_owned(),
        }
    }

    fn kv_bytes_per_token(&self, attn: &AttentionConfig) -> f64 {
        2.0 * attn.heads_kv as f64 * attn.head_dim as f64 * 2.0
    }

    fn plan(&self, shape: &DecodeShape, arch: &GpuArch) -> Vec<KernelProfile> {
        let d = shape.attn.head_dim as f64;
        let groups = shape.kv_groups() as f64;
        let rows = shape.total_rows() as f64;
        let mut p = KernelProfile::new(self.label());

        p.dram_read_bytes = shape.fp16_kv_bytes() + rows * d * 2.0;
        p.dram_write_bytes = rows * d * 2.0 + groups * 2.0 * d * 2.0;

        // Query transform is standard in FA2/FA3 decode kernels: gq rows
        // per KV group padded to 16-row MMA tiles.
        let mrows = (shape.rows_per_group().div_ceil(16) * 16) as f64;
        let mut macs = 2.0 * mrows * d * shape.seq_len as f64 * groups;
        if self.version == FlashVersion::V2 && arch.gen.supports_wgmma() {
            macs *= 1.35; // legacy SM80 instruction penalty on Hopper+
            p.bw_derate = 0.65; // cp.async vs TMA load-path penalty
        }
        p.tc_macs_fp16 = macs;

        let softmax_rows = rows * shape.seq_len as f64;
        p.cuda.exp = softmax_rows;
        p.cuda.reduce = 0.25 * softmax_rows;
        p.cuda.misc = 0.75 * softmax_rows;

        p.smem_transactions = p.dram_read_bytes * 2.0 / 128.0;

        let warps = 4.0;
        let splits = choose_splits(arch, shape, warps);
        p.ctas = groups * splits as f64;
        p.warps_per_cta = warps;
        p.overlap = match self.version {
            FlashVersion::V2 => OverlapSpec {
                tc_cuda: 0.85,
                mem_compute: 0.90,
            },
            FlashVersion::V3 => OverlapSpec {
                tc_cuda: 0.95,
                mem_compute: 0.95,
            },
        };

        let mut plan = vec![p];
        if splits > 1 {
            plan.push(combine_kernel_profile(shape, splits));
        }
        plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bd_core::AttentionConfig;

    fn shape(batch: usize, len: usize) -> DecodeShape {
        DecodeShape::new(batch, AttentionConfig::gqa(32, 8, 128), len)
    }

    #[test]
    fn fp16_baseline_is_memory_bound_at_long_context() {
        let arch = GpuArch::rtx4090();
        let lat = FlashDecoding::v2().latency(&shape(8, 32768), &arch);
        assert!(
            lat.t_mem > lat.t_tc * 2.0,
            "mem {} tc {}",
            lat.t_mem,
            lat.t_tc
        );
        assert!(lat.mem_throughput_fraction() > 0.6);
    }

    #[test]
    fn latency_roughly_linear_in_context() {
        let arch = GpuArch::a100();
        let sys = FlashDecoding::v2();
        let t1 = sys.latency_s(&shape(8, 8192), &arch);
        let t2 = sys.latency_s(&shape(8, 32768), &arch);
        let ratio = t2 / t1;
        assert!(ratio > 3.0 && ratio < 4.5, "ratio {ratio}");
    }

    #[test]
    fn v3_beats_v2_on_hopper() {
        let arch = GpuArch::h100();
        let s = shape(64, 32768);
        let t2 = FlashDecoding::v2().latency_s(&s, &arch);
        let t3 = FlashDecoding::v3().latency_s(&s, &arch);
        assert!(t3 < t2, "v3 {t3} vs v2 {t2}");
    }

    #[test]
    fn v2_equals_v3_structure_on_ada() {
        // No legacy penalty below Hopper; only overlap differs slightly.
        let arch = GpuArch::rtx4090();
        let s = shape(8, 8192);
        let t2 = FlashDecoding::v2().latency_s(&s, &arch);
        let t3 = FlashDecoding::v3().latency_s(&s, &arch);
        assert!((t2 - t3).abs() / t2 < 0.15);
    }

    #[test]
    fn single_batch_long_context_uses_splits() {
        let arch = GpuArch::a100();
        let plan = FlashDecoding::v2().plan(&shape(1, 131072), &arch);
        assert_eq!(plan.len(), 2, "expected combine kernel");
    }
}
