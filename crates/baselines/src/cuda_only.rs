//! Fused CUDA-core-only low-bit attention: Atom and QServe (paper §II,
//! §VI-A).
//!
//! Both fuse dequantization into a FlashAttention-style kernel but execute
//! *everything* — dequant, scaling, and the matmuls themselves (as
//! FMA-based GEMV) — on CUDA cores. Because there is no Tensor-Core GEMM,
//! the kernel processes each **query head** independently: dequantization
//! and FMA work scale with `h_q`, not `h_kv`, which is why these systems
//! hold up on MHA but collapse under GQA (paper Fig. 10/11, Fig. 15).

use crate::system::DecodeSystem;
use bd_core::{choose_splits, AttentionConfig, DecodeShape};
use bd_gpu_sim::{GpuArch, KernelProfile, OverlapSpec};
use bd_kvcache::QuantScheme;

/// Which CUDA-core-only system.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CudaOnlyKind {
    /// Atom: 4-bit, page-managed, **no GQA support**.
    Atom,
    /// QServe: W4A8KV4, page-managed, GQA supported but expensive.
    QServe,
}

/// A fused CUDA-core-only decoding system (always 4-bit KV, tensor-wise,
/// matching the released systems).
#[derive(Clone, Copy, Debug)]
pub struct CudaOnly {
    kind: CudaOnlyKind,
}

impl CudaOnly {
    /// The Atom baseline.
    pub const fn atom() -> Self {
        CudaOnly {
            kind: CudaOnlyKind::Atom,
        }
    }

    /// The QServe baseline.
    pub const fn qserve() -> Self {
        CudaOnly {
            kind: CudaOnlyKind::QServe,
        }
    }

    /// Dequantization instruction slots per element: scalar unpack, cast,
    /// scale and zero-point math without the fragment-aligned `lop3` path,
    /// with the poor ILP of interleaving dequant into a GEMV inner loop.
    /// Calibrated so dequantization consumes ≈45-55% of kernel time on the
    /// paper's Fig. 15a workload; QServe's kernels are somewhat better
    /// tuned than Atom's.
    fn dequant_slots_per_elem(&self) -> f64 {
        match self.kind {
            CudaOnlyKind::Atom => 8.0,
            CudaOnlyKind::QServe => 6.0,
        }
    }

    fn scheme(&self) -> QuantScheme {
        QuantScheme::kt4()
    }
}

impl DecodeSystem for CudaOnly {
    fn label(&self) -> String {
        match self.kind {
            CudaOnlyKind::Atom => "Atom".to_owned(),
            CudaOnlyKind::QServe => "QServe".to_owned(),
        }
    }

    fn supports(&self, attn: &AttentionConfig) -> bool {
        match self.kind {
            CudaOnlyKind::Atom => attn.group_factor() == 1, // MHA only
            CudaOnlyKind::QServe => true,
        }
    }

    fn kv_bytes_per_token(&self, attn: &AttentionConfig) -> f64 {
        attn.heads_kv as f64 * self.scheme().bytes_per_token(attn.head_dim)
    }

    fn plan(&self, shape: &DecodeShape, arch: &GpuArch) -> Vec<KernelProfile> {
        let d = shape.attn.head_dim as f64;
        let l = shape.seq_len as f64;
        let groups = shape.kv_groups() as f64;
        let rows = shape.total_rows() as f64;
        let mut p = KernelProfile::new(self.label());

        // Memory: packed KV read once per KV head (page tables included).
        p.dram_read_bytes = groups * l * self.scheme().bytes_per_token(shape.attn.head_dim)
            + rows * d * 2.0
            + groups * (l / 64.0) * 8.0;
        p.dram_write_bytes = rows * d * 2.0;

        // Per-query-head processing: dequant and FMA GEMV both scale with
        // h_q (each head's thread block unpacks the KV values it consumes).
        let elems_per_head_stream = 2.0 * rows * l * d;
        p.cuda.dequant = elems_per_head_stream * self.dequant_slots_per_elem();
        p.cuda.fma = elems_per_head_stream; // QK + PV as FMA GEMV
        p.cuda.misc = elems_per_head_stream * 1.5; // loads, addresses, rescale
        p.cuda.exp = rows * l;
        p.cuda.reduce = rows * l * 0.5;

        p.smem_transactions = p.dram_read_bytes * 2.0 / 128.0;

        let warps = 8.0;
        let splits = choose_splits(arch, shape, warps);
        p.ctas = rows.max(groups) * splits as f64;
        p.warps_per_cta = warps;
        // Dequant and matmul share the same execution unit: no TC/CUDA
        // overlap exists; memory overlap is decent (fused streaming).
        p.overlap = OverlapSpec {
            tc_cuda: 0.0,
            mem_compute: 0.82,
        };
        vec![p]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flash::FlashDecoding;
    use crate::system::speedup;

    fn mha(batch: usize, len: usize) -> DecodeShape {
        DecodeShape::new(batch, AttentionConfig::mha(32, 128), len)
    }

    fn gqa(batch: usize, len: usize) -> DecodeShape {
        DecodeShape::new(batch, AttentionConfig::gqa(32, 8, 128), len)
    }

    #[test]
    fn atom_rejects_gqa() {
        assert!(!CudaOnly::atom().supports(&AttentionConfig::gqa(32, 8, 128)));
        assert!(CudaOnly::atom().supports(&AttentionConfig::mha(32, 128)));
        assert!(CudaOnly::qserve().supports(&AttentionConfig::gqa(32, 8, 128)));
    }

    #[test]
    fn qserve_wins_on_mha_bandwidth_bound() {
        let arch = GpuArch::rtx4090();
        let sp = speedup(
            &CudaOnly::qserve(),
            &FlashDecoding::v2(),
            &mha(8, 2048),
            &arch,
        );
        assert!(sp > 2.0, "QServe MHA speedup {sp}");
    }

    #[test]
    fn qserve_collapses_on_gqa() {
        let arch = GpuArch::rtx4090();
        let sp_mha = speedup(
            &CudaOnly::qserve(),
            &FlashDecoding::v2(),
            &mha(8, 2048),
            &arch,
        );
        let sp_gqa = speedup(
            &CudaOnly::qserve(),
            &FlashDecoding::v2(),
            &gqa(8, 2048),
            &arch,
        );
        assert!(
            sp_gqa < sp_mha * 0.75,
            "GQA {sp_gqa} must collapse vs MHA {sp_mha}"
        );
    }

    #[test]
    fn qserve_below_fp16_on_a100_gqa() {
        // Paper Figs. 11/13: on A100 the CUDA-only design loses to FP16
        // FlashDecoding for GQA models.
        let arch = GpuArch::a100();
        let sp = speedup(
            &CudaOnly::qserve(),
            &FlashDecoding::v2(),
            &gqa(16, 32768),
            &arch,
        );
        assert!(sp < 1.0, "QServe A100 GQA speedup {sp}");
    }

    #[test]
    fn dequant_fraction_near_half() {
        // Paper Fig. 15a: dequantization consumes nearly half the kernel
        // time in Atom/QServe.
        let arch = GpuArch::rtx4090();
        let lat = CudaOnly::qserve().latency(&mha(8, 2048), &arch);
        let frac = lat.dequant_fraction();
        assert!(frac > 0.3 && frac < 0.6, "dequant fraction {frac}");
    }

    #[test]
    fn atom_slower_than_qserve() {
        let arch = GpuArch::rtx4090();
        let s = mha(8, 2048);
        assert!(CudaOnly::atom().latency_s(&s, &arch) > CudaOnly::qserve().latency_s(&s, &arch));
    }
}
