#![warn(missing_docs)]

//! # bd-baselines — the comparison systems of the BitDecoding evaluation
//!
//! Every system the paper compares against, modelled as its kernel
//! composition on the shared `bd-gpu-sim` cost vocabulary:
//!
//! * [`FlashDecoding`] v2/v3 — the FP16 fused baselines (speedup = 1.0);
//! * [`Kivi`] — non-fused low-bit attention with standalone kernels;
//! * [`CudaOnly`] ([`CudaOnly::atom`], [`CudaOnly::qserve`]) — fused
//!   CUDA-core-only low-bit attention;
//! * [`BitDecodingSys`] — the paper's system, adapted to the same
//!   [`DecodeSystem`] interface;
//! * [`TransformKind`] — Marlin/Ladder-style weight-transform kernels for
//!   the Table II overhead comparison;
//! * [`ContinuousPacking`] — the QuaRot-style breakdown baseline (Fig. 16).

pub mod bitdecoding_sys;
pub mod continuous;
pub mod cuda_only;
pub mod flash;
pub mod kivi;
pub mod system;
pub mod transforms;

pub use bitdecoding_sys::BitDecodingSys;
pub use continuous::ContinuousPacking;
pub use cuda_only::{CudaOnly, CudaOnlyKind};
pub use flash::{FlashDecoding, FlashVersion};
pub use kivi::Kivi;
pub use system::{speedup, DecodeSystem};
pub use transforms::{table2_row, TransformKind};
