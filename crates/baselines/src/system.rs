//! The common interface every decoding system implements, so the benchmark
//! harness can sweep systems uniformly.

use bd_core::{AttentionConfig, DecodeShape};
use bd_gpu_sim::{GpuArch, KernelProfile, LatencyBreakdown};

/// A decoding system that can be priced on a GPU for a workload shape.
pub trait DecodeSystem {
    /// Display label matching the paper's legends (e.g. `"KIVI-4"`).
    fn label(&self) -> String;

    /// Whether the system supports this attention structure (Atom has no
    /// GQA support, paper §VI-A).
    fn supports(&self, attn: &AttentionConfig) -> bool {
        let _ = attn;
        true
    }

    /// The kernels one decode step launches.
    fn plan(&self, shape: &DecodeShape, arch: &GpuArch) -> Vec<KernelProfile>;

    /// Scratch memory beyond weights + cache the system needs per decode
    /// step (bytes) — non-fused systems materialize dequantized tensors and
    /// score matrices here.
    fn scratch_bytes(&self, shape: &DecodeShape) -> f64 {
        let _ = shape;
        0.0
    }

    /// Peak transient memory the system's *prefill* needs for a context of
    /// `seq_len` (bytes). Systems without block-tiled prefill attention
    /// materialize chunked score matrices here — the source of KIVI's 128K
    /// OOM in paper Fig. 12.
    fn prefill_scratch_bytes(&self, attn: &AttentionConfig, seq_len: usize) -> f64 {
        let _ = (attn, seq_len);
        0.0
    }

    /// KV-cache bytes per token per sequence for this system's storage
    /// format (all `h_kv` heads of one layer).
    fn kv_bytes_per_token(&self, attn: &AttentionConfig) -> f64;

    /// Evaluates the full decode step.
    fn latency(&self, shape: &DecodeShape, arch: &GpuArch) -> LatencyBreakdown {
        self.plan(shape, arch)
            .iter()
            .map(|p| arch.evaluate(p))
            .fold(LatencyBreakdown::default(), |acc, b| {
                if acc.total == 0.0 {
                    b
                } else {
                    acc.chain(b)
                }
            })
    }

    /// Decode-step latency in seconds.
    fn latency_s(&self, shape: &DecodeShape, arch: &GpuArch) -> f64 {
        self.latency(shape, arch).total
    }
}

/// Speedup of `system` over `baseline` on the same shape/arch.
pub fn speedup(
    system: &dyn DecodeSystem,
    baseline: &dyn DecodeSystem,
    shape: &DecodeShape,
    arch: &GpuArch,
) -> f64 {
    baseline.latency_s(shape, arch) / system.latency_s(shape, arch)
}
