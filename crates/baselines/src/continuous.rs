//! The continuous-packing baseline used in the paper's breakdown analysis
//! (Fig. 16, following QuaRot): quantize and re-pack the KV cache at every
//! generation step, with manually maintained layouts and no fused fast
//! path.

use crate::system::DecodeSystem;
use bd_core::{decode_plan, ArchPath, AttentionConfig, DecodeShape, OptimizationFlags};
use bd_gpu_sim::{GpuArch, KernelProfile, OverlapSpec};
use bd_kvcache::QuantScheme;

/// Continuous packing: every decode step re-quantizes the freshly appended
/// token *and re-packs the touched region*, then runs a low-bit attention
/// kernel without layout induction, warp parallelism, or pipelining.
#[derive(Clone, Copy, Debug)]
pub struct ContinuousPacking {
    /// Quantization scheme (the paper's breakdown uses 4-bit).
    pub scheme: QuantScheme,
}

impl ContinuousPacking {
    /// 4-bit continuous packing.
    pub const fn kc4() -> Self {
        ContinuousPacking {
            scheme: QuantScheme::kc4(),
        }
    }
}

impl DecodeSystem for ContinuousPacking {
    fn label(&self) -> String {
        "Continuous Packing".to_owned()
    }

    fn kv_bytes_per_token(&self, attn: &AttentionConfig) -> f64 {
        attn.heads_kv as f64 * self.scheme.bytes_per_token(attn.head_dim)
    }

    fn plan(&self, shape: &DecodeShape, arch: &GpuArch) -> Vec<KernelProfile> {
        // Attention with every optimization disabled (slow casts, Wn=1,
        // no software pipeline).
        let flags = OptimizationFlags {
            layout_induction: false,
            warp_parallelism: false,
            software_pipeline: false,
            cooperative_softmax: false,
        };
        let path = match ArchPath::select(arch, self.scheme) {
            ArchPath::Sm100Fp4 => ArchPath::Sm100Fp4,
            _ => ArchPath::Sm80, // no arch-specific tuning in the baseline
        };
        let mut plan = decode_plan(shape, self.scheme, arch, path, flags, false, usize::MAX);

        // Plus the per-step quantize+pack kernel: with no residual region,
        // every generation step re-quantizes the group-aligned tail window
        // (a read-modify-write of the last 128-token group, QuaRot-style)
        // and runs manual layout maintenance.
        let dim = shape.attn.head_dim as f64;
        let groups = shape.kv_groups() as f64;
        let window = 128.0_f64.min(shape.seq_len as f64);
        let elems = groups * window * dim * 2.0;
        let mut q = KernelProfile::new("continuous-quant-pack");
        q.dram_read_bytes = elems * 2.0 + elems * self.scheme.bits_per_value() as f64 / 8.0;
        q.dram_write_bytes = elems * self.scheme.bits_per_value() as f64 / 8.0;
        q.cuda.quant = elems * 4.0;
        q.cuda.misc = elems * 3.0; // manual layout maintenance
        q.launches = 2.0;
        q.ctas = groups;
        q.warps_per_cta = 4.0;
        q.overlap = OverlapSpec::STANDALONE;
        plan.push(q);
        plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bitdecoding_sys::BitDecodingSys;
    use crate::system::speedup;

    #[test]
    fn full_bitdecoding_much_faster_than_continuous_packing() {
        // Fig. 16: the full stack delivers a large gain over the
        // continuous-packing baseline on every architecture.
        let shape = DecodeShape::new(8, AttentionConfig::gqa(32, 8, 128), 8192).with_residual(64);
        for arch in [GpuArch::a100(), GpuArch::h100(), GpuArch::rtx5090()] {
            let sp = speedup(
                &BitDecodingSys::kc4(),
                &ContinuousPacking::kc4(),
                &shape,
                &arch,
            );
            assert!(sp > 2.0, "{}: breakdown speedup {sp}", arch.name);
        }
    }

    #[test]
    fn continuous_packing_has_extra_kernel() {
        let shape = DecodeShape::new(8, AttentionConfig::gqa(32, 8, 128), 8192);
        let plan = ContinuousPacking::kc4().plan(&shape, &GpuArch::a100());
        assert!(plan.iter().any(|p| p.name == "continuous-quant-pack"));
    }
}
