//! KIVI-style non-fused low-bit attention (paper §II, §VI-A).
//!
//! KIVI decomposes mixed-precision attention into standalone Triton
//! kernels (`Q·K^T` GEMV with in-kernel dequant → softmax → `P·V` GEMV →
//! residual window attention), each paying launch overhead plus
//! global-memory round trips for the full score matrix. Two structural
//! costs drive its shape:
//!
//! * **No KV-group reuse.** Each query head's GEMV walks its KV head's
//!   packed data independently — packed traffic and dequantization work
//!   scale with `h_q`, not `h_kv`, so GQA erases the low-bit bandwidth win.
//! * **Scalar dequantization.** The in-loop `static_cast` path costs
//!   quarter-rate `cvt` slots per element (no fragment-aligned `lop3`).

use crate::system::DecodeSystem;
use bd_core::{AttentionConfig, DecodeShape};
use bd_gpu_sim::{GpuArch, KernelProfile, OverlapSpec};
use bd_kvcache::QuantScheme;
use bd_lowbit::BitWidth;

/// The non-fused KIVI baseline at a given bit width (channel-wise keys).
#[derive(Clone, Copy, Debug)]
pub struct Kivi {
    /// Cache bit width (4 or 2).
    pub width: BitWidth,
}

impl Kivi {
    /// KIVI-4.
    pub const fn int4() -> Self {
        Kivi {
            width: BitWidth::B4,
        }
    }

    /// KIVI-2.
    pub const fn int2() -> Self {
        Kivi {
            width: BitWidth::B2,
        }
    }

    fn scheme(&self) -> QuantScheme {
        match self.width {
            BitWidth::B4 => QuantScheme::kc4(),
            BitWidth::B2 => QuantScheme::kc2(),
        }
    }
}

impl DecodeSystem for Kivi {
    fn label(&self) -> String {
        format!("KIVI-{}", self.width.bits())
    }

    fn kv_bytes_per_token(&self, attn: &AttentionConfig) -> f64 {
        attn.heads_kv as f64 * self.scheme().bytes_per_token(attn.head_dim)
    }

    fn scratch_bytes(&self, shape: &DecodeShape) -> f64 {
        let l = shape.seq_len as f64;
        let rows = shape.total_rows() as f64;
        // FP32 scores and FP16 probabilities materialized for every query
        // head (no block tiling), double-buffered by the allocator.
        rows * l * (4.0 + 2.0) * 2.0
    }

    fn prefill_scratch_bytes(&self, attn: &AttentionConfig, seq_len: usize) -> f64 {
        // Prefill attention without block tiling: a 4K-token chunk of
        // queries against the full context materializes an FP32 score
        // matrix per query head — the 128K OOM of paper Fig. 12a.
        attn.heads_q as f64 * seq_len as f64 * 4096.0 * 4.0
    }

    fn plan(&self, shape: &DecodeShape, arch: &GpuArch) -> Vec<KernelProfile> {
        let _ = arch;
        let d = shape.attn.head_dim as f64;
        let lp = shape.packed_len() as f64;
        let groups = shape.kv_groups() as f64;
        let rows = shape.total_rows() as f64;
        let gq = shape.rows_per_group() as f64;
        let scheme = self.scheme();
        let packed_half = groups * lp * scheme.bytes_per_token(shape.attn.head_dim) / 2.0;
        // Per-query-head streaming: every head re-reads its KV head's
        // packed data and dequantizes it for itself.
        let head_stream_bytes = packed_half * gq;
        let head_stream_elems = rows * lp * d;
        // The kernel tiles (head, token-block); a block covers 8K tokens.
        let ctas = rows * (lp / 8192.0).ceil().max(1.0);
        let mut plan = Vec::new();

        // (1) Q·K^T GEMV with fused scalar dequantization.
        let mut qk = KernelProfile::new("kivi-qk-gemv");
        qk.dram_read_bytes = head_stream_bytes + rows * d * 2.0;
        qk.dram_write_bytes = rows * lp * 4.0; // FP32 scores
        qk.tc_macs_fp16 = 8.0 * d * lp * rows; // M=1 GEMV padded to 8-row tiles
        qk.cuda.cvt = head_stream_elems; // static_cast path, quarter rate
        qk.cuda.misc = head_stream_elems * 0.5;
        qk.ctas = ctas;
        qk.warps_per_cta = 4.0;
        qk.overlap = OverlapSpec::STANDALONE;
        plan.push(qk);

        // (2) softmax kernel over the materialized score matrix.
        let mut sm = KernelProfile::new("kivi-softmax");
        sm.dram_read_bytes = rows * lp * 4.0;
        sm.dram_write_bytes = rows * lp * 2.0;
        sm.cuda.exp = rows * lp;
        sm.cuda.reduce = rows * lp * 0.5;
        sm.ctas = rows.max(1.0);
        sm.warps_per_cta = 4.0;
        sm.overlap = OverlapSpec::STANDALONE;
        plan.push(sm);

        // (3) P·V GEMV with fused scalar dequantization.
        let mut pv = KernelProfile::new("kivi-pv-gemv");
        pv.dram_read_bytes = head_stream_bytes + rows * lp * 2.0;
        pv.dram_write_bytes = rows * d * 2.0;
        pv.tc_macs_fp16 = 8.0 * d * lp * rows;
        pv.cuda.cvt = head_stream_elems;
        pv.cuda.misc = head_stream_elems * 0.5;
        pv.ctas = ctas;
        pv.warps_per_cta = 4.0;
        pv.overlap = OverlapSpec::STANDALONE;
        plan.push(pv);

        // (4) FP16 attention over the residual window.
        let res = shape.residual_len.max(1) as f64;
        let mut rk = KernelProfile::new("kivi-residual");
        rk.dram_read_bytes = groups * res * d * 2.0 * 2.0 + rows * d * 2.0;
        rk.dram_write_bytes = rows * d * 2.0;
        rk.tc_macs_fp16 = 2.0 * 16.0 * d * res * groups;
        rk.cuda.exp = rows * res;
        rk.ctas = groups;
        rk.warps_per_cta = 4.0;
        rk.overlap = OverlapSpec::STANDALONE;
        plan.push(rk);

        // (5) merge packed-region and residual outputs.
        let mut mg = KernelProfile::new("kivi-merge");
        mg.dram_read_bytes = rows * d * 2.0 * 2.0;
        mg.dram_write_bytes = rows * d * 2.0;
        mg.cuda.misc = rows * d * 2.0;
        mg.ctas = (rows / 8.0).max(1.0);
        mg.warps_per_cta = 4.0;
        mg.overlap = OverlapSpec::STANDALONE;
        plan.push(mg);

        plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flash::FlashDecoding;
    use crate::system::speedup;

    fn gqa_shape(batch: usize, len: usize) -> DecodeShape {
        DecodeShape::new(batch, AttentionConfig::gqa(32, 8, 128), len).with_residual(64)
    }

    fn mha_shape(batch: usize, len: usize) -> DecodeShape {
        DecodeShape::new(batch, AttentionConfig::mha(32, 128), len).with_residual(64)
    }

    #[test]
    fn kivi_launches_five_kernels() {
        let plan = Kivi::int4().plan(&gqa_shape(8, 4096), &GpuArch::rtx4090());
        assert_eq!(plan.len(), 5);
    }

    #[test]
    fn kivi_beats_fp16_on_mha_bandwidth_bound() {
        // On the bandwidth-starved 4090 with MHA, 4-bit traffic still wins
        // despite the non-fused overheads.
        let arch = GpuArch::rtx4090();
        let s = mha_shape(8, 16384);
        let sp = speedup(&Kivi::int4(), &FlashDecoding::v2(), &s, &arch);
        assert!(sp > 1.1, "KIVI-4 MHA speedup {sp}");
    }

    #[test]
    fn kivi_degrades_on_gqa() {
        // GQA multiplies KIVI's packed traffic by g_q; the win evaporates.
        let arch = GpuArch::rtx4090();
        let mha = speedup(
            &Kivi::int4(),
            &FlashDecoding::v2(),
            &mha_shape(8, 16384),
            &arch,
        );
        let gqa = speedup(
            &Kivi::int4(),
            &FlashDecoding::v2(),
            &gqa_shape(8, 16384),
            &arch,
        );
        assert!(gqa < mha * 0.6, "GQA {gqa} must collapse vs MHA {mha}");
    }

    #[test]
    fn kivi_worse_than_fp16_on_a100_gqa() {
        // Paper Fig. 11: on the high-bandwidth A100, KIVI's non-fused
        // design underperforms even the FP16 baseline.
        let arch = GpuArch::a100();
        let s = DecodeShape::new(8, AttentionConfig::gqa(128, 16, 128), 32768).with_residual(64);
        let sp = speedup(&Kivi::int4(), &FlashDecoding::v2(), &s, &arch);
        assert!(sp < 1.0, "KIVI on A100 GQA speedup {sp} should be < 1");
    }

    #[test]
    fn kivi2_reads_less_than_kivi4() {
        let s = gqa_shape(8, 8192);
        let arch = GpuArch::rtx4090();
        let b4: f64 = Kivi::int4()
            .plan(&s, &arch)
            .iter()
            .map(|p| p.dram_read_bytes)
            .sum();
        let b2: f64 = Kivi::int2()
            .plan(&s, &arch)
            .iter()
            .map(|p| p.dram_read_bytes)
            .sum();
        assert!(b2 < b4);
    }

    #[test]
    fn scratch_scales_with_context() {
        let sys = Kivi::int4();
        let near = sys.scratch_bytes(&gqa_shape(1, 32768));
        let far = sys.scratch_bytes(&gqa_shape(1, 131072));
        assert!(far > near * 3.5);
    }
}
