//! Weight-oriented mixed-precision transform kernels — Marlin- and
//! Ladder-style — applied to the KV cache, for the quantization/packing
//! overhead comparison of paper Table II.
//!
//! Both systems were designed for *static* weights: they pre-transform the
//! packed layout with standalone kernels (Marlin via a Python/Torch repack
//! chain, Ladder via compiled layout-transform kernels). Applied to a
//! *dynamic* KV cache they must re-run the transform as the cache grows,
//! which is exactly why the paper rules them out. BitDecoding's fused
//! quantize+pack touches only the new residual block.

use bd_core::DecodeShape;
use bd_gpu_sim::{GpuArch, KernelProfile, OverlapSpec};
use bd_kvcache::QuantScheme;

/// Which transform system.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TransformKind {
    /// Marlin-style repack: a long chain of element-wise/gather passes.
    Marlin,
    /// Ladder-style hardware-aware transform: a few compiled passes.
    Ladder,
    /// BitDecoding's fused in-kernel quantize+pack.
    BitDecoding,
}

impl TransformKind {
    /// Label for reports.
    pub fn label(self) -> &'static str {
        match self {
            TransformKind::Marlin => "Marlin",
            TransformKind::Ladder => "Ladder",
            TransformKind::BitDecoding => "BitDecoding",
        }
    }

    /// Full-tensor passes the transform makes over the data, and the
    /// effective-bandwidth fraction of those gather-heavy passes.
    ///
    /// Constants are fitted so the A100 magnitudes land in the range of
    /// paper Table II (Marlin 58 ms / Ladder 4.8 ms / BitDecoding 0.06 ms
    /// for a 128K prefill); the *structure* (pass counts, launch counts,
    /// gather inefficiency) follows each system's published design.
    fn passes_and_efficiency(self) -> (f64, f64) {
        match self {
            // Torch-level permute/reshape/interleave/gather chain.
            TransformKind::Marlin => (16.0, 0.015),
            // Compiled hardware-aware transform kernels, still gathering.
            TransformKind::Ladder => (3.0, 0.02),
            // Fused: one streaming pass, full efficiency.
            TransformKind::BitDecoding => (1.0, 0.85),
        }
    }

    /// Kernel launches per transform invocation.
    fn launches(self) -> f64 {
        match self {
            TransformKind::Marlin => 24.0,
            TransformKind::Ladder => 6.0,
            TransformKind::BitDecoding => 1.0,
        }
    }

    /// Profile of quantizing+packing `tokens` cached tokens (K tensor of
    /// one KV head, matching the paper's single-tensor measurement).
    pub fn quant_pack_profile(
        self,
        tokens: usize,
        dim: usize,
        scheme: QuantScheme,
    ) -> KernelProfile {
        let elems = tokens as f64 * dim as f64;
        let fp16_bytes = elems * 2.0;
        let packed_bytes = elems * scheme.bits_per_value() as f64 / 8.0;
        let (passes, eff) = self.passes_and_efficiency();

        let mut p = KernelProfile::new(format!("{}-quant-pack", self.label()));
        // Each pass reads and rewrites the tensor; inefficiency is modelled
        // as inflated effective traffic (gathers waste transactions).
        p.dram_read_bytes = passes * fp16_bytes / eff;
        p.dram_write_bytes = (passes - 1.0) * fp16_bytes / eff + packed_bytes;
        p.cuda.quant = elems * 4.0;
        p.cuda.misc = elems * passes;
        p.launches = self.launches();
        p.ctas = (elems / 4096.0).max(1.0);
        p.warps_per_cta = 8.0;
        p.overlap = OverlapSpec::STANDALONE;
        p
    }

    /// Profile of the per-decode-step packing work: Marlin/Ladder must
    /// re-transform the whole packed cache (their layouts are not
    /// incrementally maintainable); BitDecoding touches one residual block
    /// every `Nr` steps (amortized).
    pub fn decode_step_profile(
        self,
        shape: &DecodeShape,
        scheme: QuantScheme,
        residual_block: usize,
    ) -> KernelProfile {
        let dim = shape.attn.head_dim;
        match self {
            TransformKind::Marlin | TransformKind::Ladder => {
                // One full gather pass over the current *packed* cache per
                // step: these layouts are not incrementally maintainable.
                let elems = shape.seq_len as f64 * dim as f64;
                let packed_bytes = elems * scheme.bits_per_value() as f64 / 8.0;
                let (_, eff) = self.passes_and_efficiency();
                let mut p = KernelProfile::new(format!("{}-decode-repack", self.label()));
                p.dram_read_bytes = packed_bytes / eff;
                p.dram_write_bytes = packed_bytes / eff;
                p.cuda.misc = elems;
                p.launches = self.launches() / 4.0;
                p.ctas = (elems / 4096.0).max(1.0);
                p.warps_per_cta = 8.0;
                p.overlap = OverlapSpec::STANDALONE;
                p
            }
            TransformKind::BitDecoding => {
                // Amortized flush of one residual block per Nr steps,
                // fused into the Residual Kernel (≈ launch + 1/Nr of a
                // block quant).
                let elems = residual_block as f64 * dim as f64 / residual_block as f64;
                let mut p = KernelProfile::new("BitDecoding-fused-pack");
                p.dram_read_bytes = elems * 2.0;
                p.dram_write_bytes = elems * scheme.bits_per_value() as f64 / 8.0;
                p.cuda.quant = elems * 4.0;
                p.launches = 1.0;
                p.ctas = 8.0;
                p.warps_per_cta = 4.0;
                p.overlap = OverlapSpec::PIPELINED;
                p
            }
        }
    }
}

/// Table II row: `(prefill_ms, decode_ms)` for one system on one GPU.
pub fn table2_row(
    kind: TransformKind,
    arch: &GpuArch,
    seq_len: usize,
    dim: usize,
    scheme: QuantScheme,
    residual_block: usize,
) -> (f64, f64) {
    let prefill = arch.evaluate(&kind.quant_pack_profile(seq_len, dim, scheme));
    let shape = DecodeShape::new(1, bd_core::AttentionConfig::mha(1, dim), seq_len);
    let decode = arch.evaluate(&kind.decode_step_profile(&shape, scheme, residual_block));
    (prefill.total * 1e3, decode.total * 1e3)
}

#[cfg(test)]
mod tests {
    use super::*;

    const L: usize = 131072;
    const D: usize = 128;

    fn rows() -> Vec<(TransformKind, f64, f64)> {
        let arch = GpuArch::a100();
        [
            TransformKind::Marlin,
            TransformKind::Ladder,
            TransformKind::BitDecoding,
        ]
        .into_iter()
        .map(|k| {
            let (p, d) = table2_row(k, &arch, L, D, QuantScheme::kc4(), 128);
            (k, p, d)
        })
        .collect()
    }

    #[test]
    fn ordering_matches_table2() {
        let rows = rows();
        let (_, marlin_p, marlin_d) = rows[0];
        let (_, ladder_p, ladder_d) = rows[1];
        let (_, bit_p, bit_d) = rows[2];
        // Prefill: Marlin ≫ Ladder ≫ BitDecoding.
        assert!(
            marlin_p > ladder_p * 5.0,
            "marlin {marlin_p} ladder {ladder_p}"
        );
        assert!(ladder_p > bit_p * 10.0, "ladder {ladder_p} bit {bit_p}");
        // Decode: both transforms pay a full repack; BitDecoding is ~launch
        // overhead only.
        assert!(marlin_d > bit_d * 20.0);
        assert!(ladder_d > bit_d * 20.0);
    }

    #[test]
    fn magnitudes_in_paper_range() {
        let rows = rows();
        let (_, marlin_p, _) = rows[0];
        let (_, _, bit_d) = rows[2];
        // Paper: Marlin 58 ms prefill, BitDecoding 0.008 ms decode. Within
        // a factor ~3 of the reported magnitudes.
        assert!(
            marlin_p > 15.0 && marlin_p < 200.0,
            "marlin prefill {marlin_p}"
        );
        assert!(bit_d < 0.05, "bitdecoding decode {bit_d}");
    }

    #[test]
    fn bitdecoding_prefill_single_streaming_pass() {
        let arch = GpuArch::a100();
        let (p, _) = table2_row(
            TransformKind::BitDecoding,
            &arch,
            L,
            D,
            QuantScheme::kc4(),
            128,
        );
        // A streaming quantize of 32 MB of FP16 should take well under a
        // millisecond on A100.
        assert!(p < 0.5, "prefill {p} ms");
    }
}
