//! [`DecodeSystem`] adapter for BitDecoding itself, so the harness can
//! sweep it alongside the baselines.

use crate::system::DecodeSystem;
use bd_core::{decode_plan, ArchPath, AttentionConfig, DecodeShape, OptimizationFlags};
use bd_gpu_sim::{GpuArch, KernelProfile};
use bd_kvcache::{PackLayout, QuantScheme};

/// BitDecoding as a sweepable system.
#[derive(Clone, Copy, Debug)]
pub struct BitDecodingSys {
    /// Quantization scheme.
    pub scheme: QuantScheme,
    /// Optimization flags (ablations).
    pub flags: OptimizationFlags,
    /// Force the SM80 "v2" kernels even on Hopper+ (`None` = auto).
    pub force_path: Option<ArchPath>,
    /// Paged KV management.
    pub paged: bool,
}

impl BitDecodingSys {
    /// The shipping configuration for a scheme.
    pub const fn new(scheme: QuantScheme) -> Self {
        BitDecodingSys {
            scheme,
            flags: OptimizationFlags::ALL,
            force_path: None,
            paged: false,
        }
    }

    /// KC-4 default.
    pub const fn kc4() -> Self {
        Self::new(QuantScheme::kc4())
    }

    /// KC-2 default.
    pub const fn kc2() -> Self {
        Self::new(QuantScheme::kc2())
    }

    /// KT-4 default.
    pub const fn kt4() -> Self {
        Self::new(QuantScheme::kt4())
    }

    /// Builder-style paged toggle.
    pub const fn paged(mut self, paged: bool) -> Self {
        self.paged = paged;
        self
    }

    /// Builder-style path override.
    pub const fn with_path(mut self, path: ArchPath) -> Self {
        self.force_path = Some(path);
        self
    }

    /// Builder-style flag override (ablations).
    pub const fn with_flags(mut self, flags: OptimizationFlags) -> Self {
        self.flags = flags;
        self
    }
}

impl DecodeSystem for BitDecodingSys {
    fn label(&self) -> String {
        match self.force_path {
            Some(ArchPath::Sm80) => format!("BitDecoding-{} (v2)", self.scheme.label()),
            Some(ArchPath::Sm90) => format!("BitDecoding-{} (v3)", self.scheme.label()),
            _ => format!("BitDecoding-{}", self.scheme.label()),
        }
    }

    fn kv_bytes_per_token(&self, attn: &AttentionConfig) -> f64 {
        attn.heads_kv as f64 * self.scheme.bytes_per_token(attn.head_dim)
            // Half-precision residual, amortized: Nr/2 resident tokens on
            // average out of the whole context — negligible, counted as 1%.
            * 1.01
    }

    fn plan(&self, shape: &DecodeShape, arch: &GpuArch) -> Vec<KernelProfile> {
        let path = self
            .force_path
            .unwrap_or_else(|| ArchPath::select(arch, self.scheme));
        let width = self.scheme.int_width().unwrap_or(bd_lowbit::BitWidth::B4);
        let nr = PackLayout::sm80_default().residual_block(width);
        decode_plan(shape, self.scheme, arch, path, self.flags, self.paged, nr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cuda_only::CudaOnly;
    use crate::flash::FlashDecoding;
    use crate::kivi::Kivi;
    use crate::system::{speedup, DecodeSystem};

    fn gqa(batch: usize, len: usize) -> DecodeShape {
        DecodeShape::new(batch, AttentionConfig::gqa(32, 8, 128), len).with_residual(64)
    }

    #[test]
    fn bitdecoding_beats_all_baselines_on_gqa() {
        let arch = GpuArch::rtx4090();
        let s = gqa(8, 8192);
        let bd = BitDecodingSys::kc4();
        for baseline in [
            Box::new(FlashDecoding::v2()) as Box<dyn DecodeSystem>,
            Box::new(Kivi::int4()),
            Box::new(CudaOnly::qserve()),
        ] {
            let sp = speedup(&bd, baseline.as_ref(), &s, &arch);
            assert!(sp > 1.3, "vs {}: {sp}", baseline.label());
        }
    }

    #[test]
    fn kc2_faster_than_kc4_on_bandwidth_bound() {
        let arch = GpuArch::rtx4090();
        let s = gqa(8, 32768);
        let t4 = BitDecodingSys::kc4().latency_s(&s, &arch);
        let t2 = BitDecodingSys::kc2().latency_s(&s, &arch);
        assert!(t2 < t4, "KC-2 {t2} vs KC-4 {t4}");
    }

    #[test]
    fn bit_gap_narrows_on_a100() {
        // Paper Fig. 11: A100's bandwidth shifts kernels toward compute
        // bound, narrowing the 4-bit vs 2-bit gap.
        let shape = gqa(32, 8192);
        let gap_4090 = {
            let a = GpuArch::rtx4090();
            BitDecodingSys::kc4().latency_s(&shape, &a)
                / BitDecodingSys::kc2().latency_s(&shape, &a)
        };
        let gap_a100 = {
            let a = GpuArch::a100();
            BitDecodingSys::kc4().latency_s(&shape, &a)
                / BitDecodingSys::kc2().latency_s(&shape, &a)
        };
        assert!(
            gap_a100 < gap_4090,
            "A100 gap {gap_a100} should be narrower than 4090 gap {gap_4090}"
        );
    }

    #[test]
    fn v3_beats_v2_on_hopper() {
        let arch = GpuArch::h100();
        let s = gqa(64, 32768);
        let v2 = BitDecodingSys::kc4()
            .with_path(ArchPath::Sm80)
            .latency_s(&s, &arch);
        let v3 = BitDecodingSys::kc4()
            .with_path(ArchPath::Sm90)
            .latency_s(&s, &arch);
        assert!(v3 < v2, "v3 {v3} vs v2 {v2}");
    }

    #[test]
    fn labels() {
        assert_eq!(BitDecodingSys::kc4().label(), "BitDecoding-KC-4");
        assert_eq!(
            BitDecodingSys::kc4().with_path(ArchPath::Sm90).label(),
            "BitDecoding-KC-4 (v3)"
        );
    }
}
