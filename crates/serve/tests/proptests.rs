//! Property tests for the batched decode runtime.
//!
//! The two load-bearing properties from the serve design:
//!
//! 1. **Paged = contiguous, bitwise** — for any page size and any eviction
//!    order of finished sequences, decoding through [`PagedKvStore`]'s
//!    page-table indirection produces outputs identical to the contiguous
//!    [`BitDecoder::decode`] path, bit for bit.
//! 2. **Worker-count invariance** — the batch scheduler's token streams do
//!    not depend on how many threads the persistent pool runs (including
//!    the inline `workers = 0` mode).

use bd_core::{query_transform, AttentionConfig, BitDecoder};
use bd_gpu_sim::GpuArch;
use bd_kvcache::{PagedKvStore, QuantScheme, SeqId};
use bd_serve::{replay_contiguous, SequenceModel, ServeConfig, ServeSession, SynthSequence};
use proptest::prelude::*;

const ATTN: AttentionConfig = AttentionConfig {
    heads_q: 4,
    heads_kv: 2,
    head_dim: 16,
};

fn decoder(scheme: QuantScheme) -> BitDecoder {
    BitDecoder::builder(GpuArch::rtx4090())
        .attention(ATTN)
        .scheme(scheme)
        .paged(true)
        .build()
}

fn arb_scheme() -> impl Strategy<Value = QuantScheme> {
    prop_oneof![Just(QuantScheme::kc4()), Just(QuantScheme::kc2())]
}

/// Mirrors one synthetic sequence into the paged store and a contiguous
/// cache, decoding one step after every append through both paths and
/// asserting bitwise equality throughout.
fn drive_mirrored(
    dec: &BitDecoder,
    store: &mut PagedKvStore,
    seed: u64,
    prompt: usize,
    gen: usize,
) -> Result<SeqId, String> {
    let codec = dec.codec();
    let mut paged_model = SynthSequence::new(ATTN, seed, prompt, gen);
    let seq = store.admit(prompt + gen).expect("pool sized for the case");
    {
        let (pk, pv) = paged_model.prompt();
        store.prefill(seq, &pk, &pv, &codec).unwrap();
    }
    let mut cache = dec.new_cache(1);
    let mut contiguous_model = SynthSequence::new(ATTN, seed, prompt, gen);
    {
        let (pk, pv) = contiguous_model.prompt();
        for h in 0..ATTN.heads_kv {
            cache.prefill(h, &pk[h], &pv[h], &codec).unwrap();
        }
    }
    for step in 0..gen {
        // Paged path: per-head attention over page-table-gathered blocks.
        let q = paged_model.query(step);
        let grouped = query_transform(&q, &ATTN);
        let mut heads_out = Vec::new();
        for (kv, q_block) in grouped.iter().enumerate() {
            let blocks = store.packed_blocks(seq, kv);
            let (rk, rv) = store.residual(seq, kv);
            let (rows, _) = dec.attend_head(q_block, &blocks, rk, rv);
            heads_out.push(rows);
        }
        let paged_out = bd_core::ungroup_outputs(&heads_out, &ATTN);

        // Contiguous path: the decode front end.
        let cq = contiguous_model.query(step);
        let cont_out = dec.decode(std::slice::from_ref(&cq), &cache).unwrap();

        prop_assert_eq!(&paged_out, &cont_out.outputs[0], "step {}", step);

        let pkv = paged_model.advance(step, &paged_out);
        let ckv = contiguous_model.advance(step, &cont_out.outputs[0]);
        prop_assert_eq!(pkv.token, ckv.token);
        store.append_step(seq, &pkv.k, &pkv.v, &codec).unwrap();
        for h in 0..ATTN.heads_kv {
            cache.append_token(h, &ckv.k[h], &ckv.v[h], &codec).unwrap();
        }
        prop_assert!(
            store.matches_cache(seq, &cache, 0),
            "contiguous-equivalence violated at step {}",
            step
        );
    }
    Ok(seq)
}

proptest! {
    /// Paged decode over ANY page size is bitwise identical to contiguous
    /// decode, and the store stays contiguous-equivalent throughout.
    #[test]
    fn paged_decode_matches_contiguous_for_any_page_size(
        page_tokens in 1usize..300,
        prompt in 1usize..300,
        gen in 1usize..5,
        scheme in arb_scheme(),
        seed: u64,
    ) {
        let dec = decoder(scheme);
        let pages = (prompt + gen).div_ceil(page_tokens) + 1;
        let mut store = PagedKvStore::new(
            dec.cache_config(), ATTN.heads_kv, pages, page_tokens);
        drive_mirrored(&dec, &mut store, seed, prompt, gen)?;
    }

    /// Random evictions of finished sequences recycle pages without
    /// corrupting survivors: sequences admitted into recycled pages still
    /// decode bitwise-identically to contiguous.
    #[test]
    fn evictions_recycle_pages_without_corruption(
        page_tokens in 1usize..160,
        evict_mask in 0u8..8,
        seed: u64,
    ) {
        let dec = decoder(QuantScheme::kc4());
        // Room for three resident sequences of ≤ 180 tokens each.
        let pages = 3 * 180usize.div_ceil(page_tokens) + 3;
        let mut store = PagedKvStore::new(
            dec.cache_config(), ATTN.heads_kv, pages, page_tokens);
        let sizes = [(150usize, 2usize), (170, 3), (129, 2)];
        let mut live: Vec<SeqId> = Vec::new();
        for (i, (prompt, gen)) in sizes.iter().enumerate() {
            live.push(drive_mirrored(&dec, &mut store, seed ^ i as u64, *prompt, *gen)?);
        }
        // Evict the masked subset (they are finished), then admit fresh
        // sequences into the recycled pages and verify them end-to-end.
        let mut freed = 0;
        for (i, seq) in live.into_iter().enumerate() {
            if evict_mask & (1 << i) != 0 {
                store.seal(seq).unwrap();
                store.evict(seq);
                freed += 1;
            }
        }
        for i in 0..freed {
            drive_mirrored(&dec, &mut store, seed ^ (0xA0 + i as u64), 140, 2)?;
        }
    }

    /// The full batched session emits identical token streams at any
    /// worker count, and they match the per-sequence contiguous replay.
    #[test]
    fn session_streams_invariant_to_worker_count(
        scheme in arb_scheme(),
        n_seqs in 1usize..5,
        seed: u64,
    ) {
        let streams_at = |workers: usize| -> Vec<Vec<u32>> {
            let mut session = ServeSession::new(
                decoder(scheme), ServeConfig::new(512, 64, workers, 8));
            let ids: Vec<_> = (0..n_seqs)
                .map(|i| {
                    let prompt = 90 + 37 * i;
                    session
                        .submit(Box::new(SynthSequence::new(ATTN, seed ^ i as u64, prompt, 3)))
                        .unwrap()
                })
                .collect();
            session.run_to_completion();
            ids.iter().map(|id| session.stream(*id).unwrap().to_vec()).collect()
        };
        let inline = streams_at(0);
        prop_assert_eq!(&inline, &streams_at(1));
        prop_assert_eq!(&inline, &streams_at(3));
        for (i, stream) in inline.iter().enumerate() {
            let want = replay_contiguous(
                &decoder(scheme),
                &mut SynthSequence::new(ATTN, seed ^ i as u64, 90 + 37 * i, 3),
            );
            prop_assert_eq!(stream, &want, "sequence {}", i);
        }
    }
}
