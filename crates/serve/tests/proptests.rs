//! Property tests for the batched decode runtime.
//!
//! The load-bearing properties from the serve design:
//!
//! 1. **Paged = contiguous, bitwise** — for any page size and any eviction
//!    order of finished sequences, decoding through [`PagedKvStore`]'s
//!    page-table indirection produces outputs identical to the contiguous
//!    [`BitDecoder::decode`] path, bit for bit.
//! 2. **Worker-count invariance** — the batch scheduler's token streams do
//!    not depend on how many threads the persistent pool runs (including
//!    the inline `workers = 0` mode).
//! 3. **Sharded = single-device, bitwise** — for any device count (1–8),
//!    head partitioning, page size, and worker count, decoding over
//!    [`ShardedKvStore`]'s per-device arenas with the per-head all-reduce
//!    merge produces token streams identical to the single-device session
//!    and to per-sequence contiguous replay, bit for bit.
//! 4. **Preemption is invisible in the values** — any interleaving of
//!    preempt / swap-out / swap-in produced by any scheduling policy
//!    yields token streams bitwise identical to uninterrupted contiguous
//!    decode, for devices 1–4 × partitioning × page size; and the
//!    storage-level swap round trip itself is bitwise at any page size,
//!    paged and sharded.
//! 5. **Chaos is invisible in the values** — any *seeded fault schedule*
//!    (device losses, swap-blob corruption, transient link failures,
//!    timed pool exhaustion) layered over any policy × devices 1–4 ×
//!    partitioning × page size × fork/preempt interleaving still
//!    completes every request with streams bitwise identical to
//!    uninterrupted contiguous replay, and leaks no pages.
//! 6. **Grouping is invisible in the values** — cascade shared-prefix
//!    grouping (walking shared packed prefix pages once per group) on
//!    vs off produces bitwise identical streams under the same
//!    fork/preempt/fault interleavings, both equal to contiguous
//!    replay; disabling the gate forms zero groups.
//! 7. **Content dedup is invisible in the values** — the radix prefix
//!    cache on vs off produces bitwise identical streams for
//!    identical-prompt tenants (no `fork` anywhere) under faults,
//!    preemption, and eviction, both equal to contiguous replay; on a
//!    fault-free schedule every tenant after the first must hit.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use bd_core::{query_transform, AttentionConfig, BitDecoder};
use bd_gpu_sim::GpuArch;
use bd_kvcache::{
    DeviceId, PagedKvStore, Partitioning, Placement, QuantScheme, SeqId, ShardedKvStore,
};
use bd_serve::{
    replay_contiguous, FaultPlan, FcfsPreempt, SequenceModel, ServeConfig, ServeSession,
    ShortestRemainingFirst, SynthSequence,
};
use proptest::prelude::*;

const ATTN: AttentionConfig = AttentionConfig {
    heads_q: 4,
    heads_kv: 2,
    head_dim: 16,
};

fn decoder(scheme: QuantScheme) -> BitDecoder {
    BitDecoder::builder(GpuArch::rtx4090())
        .attention(ATTN)
        .scheme(scheme)
        .paged(true)
        .build()
}

fn arb_scheme() -> impl Strategy<Value = QuantScheme> {
    prop_oneof![Just(QuantScheme::kc4()), Just(QuantScheme::kc2())]
}

/// Mirrors one synthetic sequence into the paged store and a contiguous
/// cache, decoding one step after every append through both paths and
/// asserting bitwise equality throughout.
fn drive_mirrored(
    dec: &BitDecoder,
    store: &mut PagedKvStore,
    seed: u64,
    prompt: usize,
    gen: usize,
) -> Result<SeqId, String> {
    let codec = dec.codec();
    let mut paged_model = SynthSequence::new(ATTN, seed, prompt, gen);
    let seq = store.admit(prompt + gen).expect("pool sized for the case");
    {
        let (pk, pv) = paged_model.prompt();
        store.prefill(seq, &pk, &pv, &codec).unwrap();
    }
    let mut cache = dec.new_cache(1);
    let mut contiguous_model = SynthSequence::new(ATTN, seed, prompt, gen);
    {
        let (pk, pv) = contiguous_model.prompt();
        for h in 0..ATTN.heads_kv {
            cache.prefill(h, &pk[h], &pv[h], &codec).unwrap();
        }
    }
    for step in 0..gen {
        // Paged path: per-head attention over page-table-gathered blocks.
        let q = paged_model.query(step);
        let grouped = query_transform(&q, &ATTN);
        let mut heads_out = Vec::new();
        for (kv, q_block) in grouped.iter().enumerate() {
            let blocks = store.packed_blocks(seq, kv);
            let (rk, rv) = store.residual(seq, kv);
            let (rows, _) = dec.attend_head(q_block, &blocks, rk, rv);
            heads_out.push(rows);
        }
        let paged_out = bd_core::ungroup_outputs(&heads_out, &ATTN);

        // Contiguous path: the decode front end.
        let cq = contiguous_model.query(step);
        let cont_out = dec.decode(std::slice::from_ref(&cq), &cache).unwrap();

        prop_assert_eq!(&paged_out, &cont_out.outputs[0], "step {}", step);

        let pkv = paged_model.advance(step, &paged_out);
        let ckv = contiguous_model.advance(step, &cont_out.outputs[0]);
        prop_assert_eq!(pkv.token, ckv.token);
        store.append_step(seq, &pkv.k, &pkv.v, &codec).unwrap();
        for h in 0..ATTN.heads_kv {
            cache.append_token(h, &ckv.k[h], &ckv.v[h], &codec).unwrap();
        }
        prop_assert!(
            store.matches_cache(seq, &cache, 0),
            "contiguous-equivalence violated at step {}",
            step
        );
    }
    Ok(seq)
}

/// Eight KV heads so device counts up to 8 are all distinct placements.
const ATTN_WIDE: AttentionConfig = AttentionConfig {
    heads_q: 8,
    heads_kv: 8,
    head_dim: 16,
};

/// Four KV heads: device counts 1–4 are all distinct placements (the
/// preemption property's required range) at half the width of
/// [`ATTN_WIDE`].
const ATTN_QUAD: AttentionConfig = AttentionConfig {
    heads_q: 4,
    heads_kv: 4,
    head_dim: 16,
};

fn arb_partitioning() -> impl Strategy<Value = Partitioning> {
    prop_oneof![
        Just(Partitioning::HeadModulo),
        Just(Partitioning::HeadContiguous),
        Just(Partitioning::Weighted),
    ]
}

proptest! {
    /// The full tensor-parallel session: for ANY device count (1–8), head
    /// partitioning, page size, and worker count, the sharded session's
    /// token streams equal the single-device session's AND the
    /// per-sequence contiguous replay, bit for bit.
    #[test]
    fn sharded_session_matches_single_device_bitwise(
        devices in 1usize..9,
        partitioning in arb_partitioning(),
        page_tokens in 1usize..160,
        workers in 0usize..3,
        n_seqs in 1usize..4,
        scheme in arb_scheme(),
        seed: u64,
    ) {
        let prompt = |i: usize| 60 + 47 * i;
        let streams_at = |devices: usize, partitioning: Partitioning, workers: usize| {
            // Per-device pages for the largest request, times the batch.
            let pages = n_seqs * 230usize.div_ceil(page_tokens) + 1;
            let config = ServeConfig::new(pages, page_tokens, workers, 8)
                .with_devices(devices, partitioning);
            let dec = BitDecoder::builder(GpuArch::rtx4090())
                .attention(ATTN_WIDE)
                .scheme(scheme)
                .paged(true)
                .build();
            let mut session = ServeSession::new(dec, config);
            let ids: Vec<_> = (0..n_seqs)
                .map(|i| {
                    session
                        .submit(Box::new(SynthSequence::new(
                            ATTN_WIDE, seed ^ i as u64, prompt(i), 2)))
                        .unwrap()
                })
                .collect();
            let summary = session.run_to_completion();
            assert_eq!(summary.completed, n_seqs);
            ids.iter().map(|id| session.stream(*id).unwrap().to_vec()).collect::<Vec<_>>()
        };
        let single = streams_at(1, partitioning, 0);
        prop_assert_eq!(
            &single,
            &streams_at(devices, partitioning, workers),
            "devices={} {:?} workers={}", devices, partitioning, workers
        );
        for (i, stream) in single.iter().enumerate() {
            let dec = BitDecoder::builder(GpuArch::rtx4090())
                .attention(ATTN_WIDE)
                .scheme(scheme)
                .paged(true)
                .build();
            let want = replay_contiguous(
                &dec,
                &mut SynthSequence::new(ATTN_WIDE, seed ^ i as u64, prompt(i), 2),
            );
            prop_assert_eq!(stream, &want, "sequence {}", i);
        }
    }

    /// Storage-level sharding invariant: for any device count and
    /// partitioning, every global head's blocks/residuals gathered from
    /// the sharded store equal the single-device [`PagedKvStore`]'s
    /// bitwise, and attention over the two gathers is identical.
    #[test]
    fn sharded_store_gathers_match_single_device_bitwise(
        devices in 1usize..9,
        partitioning in arb_partitioning(),
        page_tokens in 1usize..140,
        tokens in 1usize..300,
        seed: u64,
    ) {
        let dec = BitDecoder::builder(GpuArch::rtx4090())
            .attention(ATTN_WIDE)
            .scheme(QuantScheme::kc4())
            .paged(true)
            .build();
        let codec = dec.codec();
        let heads = ATTN_WIDE.heads_kv;
        let pages = tokens.div_ceil(page_tokens) + 1;
        let placement = Placement::new(devices, partitioning, heads);
        let mut sharded = ShardedKvStore::new(dec.cache_config(), placement, pages, page_tokens);
        let mut single = PagedKvStore::new(dec.cache_config(), heads, pages, page_tokens);
        let sseq = sharded.admit(tokens).unwrap();
        let pseq = single.admit(tokens).unwrap();
        let mut model = SynthSequence::new(ATTN_WIDE, seed, tokens, 1);
        let (pk, pv) = model.prompt();
        sharded.prefill(sseq, &pk, &pv, &codec).unwrap();
        single.prefill(pseq, &pk, &pv, &codec).unwrap();

        let q = model.query(0);
        let grouped = query_transform(&q, &ATTN_WIDE);
        for (head, q_block) in grouped.iter().enumerate() {
            let sb = sharded.packed_blocks(sseq, head);
            let pb = single.packed_blocks(pseq, head);
            prop_assert_eq!(sb.len(), pb.len());
            for (a, b) in sb.iter().zip(&pb) {
                prop_assert!(*a == *b, "head {} block payload differs", head);
            }
            let (srk, srv) = sharded.residual(sseq, head);
            let (prk, prv) = single.residual(pseq, head);
            prop_assert_eq!(srk, prk);
            prop_assert_eq!(srv, prv);
            let (s_rows, s_ops) = dec.attend_head(q_block, &sb, srk, srv);
            let (p_rows, p_ops) = dec.attend_head(q_block, &pb, prk, prv);
            prop_assert_eq!(s_rows, p_rows, "head {} attention differs", head);
            prop_assert_eq!(s_ops, p_ops);
        }
    }

    /// Paged decode over ANY page size is bitwise identical to contiguous
    /// decode, and the store stays contiguous-equivalent throughout.
    #[test]
    fn paged_decode_matches_contiguous_for_any_page_size(
        page_tokens in 1usize..300,
        prompt in 1usize..300,
        gen in 1usize..5,
        scheme in arb_scheme(),
        seed: u64,
    ) {
        let dec = decoder(scheme);
        let pages = (prompt + gen).div_ceil(page_tokens) + 1;
        let mut store = PagedKvStore::new(
            dec.cache_config(), ATTN.heads_kv, pages, page_tokens);
        drive_mirrored(&dec, &mut store, seed, prompt, gen)?;
    }

    /// Random evictions of finished sequences recycle pages without
    /// corrupting survivors: sequences admitted into recycled pages still
    /// decode bitwise-identically to contiguous.
    #[test]
    fn evictions_recycle_pages_without_corruption(
        page_tokens in 1usize..160,
        evict_mask in 0u8..8,
        seed: u64,
    ) {
        let dec = decoder(QuantScheme::kc4());
        // Room for three resident sequences of ≤ 180 tokens each.
        let pages = 3 * 180usize.div_ceil(page_tokens) + 3;
        let mut store = PagedKvStore::new(
            dec.cache_config(), ATTN.heads_kv, pages, page_tokens);
        let sizes = [(150usize, 2usize), (170, 3), (129, 2)];
        let mut live: Vec<SeqId> = Vec::new();
        for (i, (prompt, gen)) in sizes.iter().enumerate() {
            live.push(drive_mirrored(&dec, &mut store, seed ^ i as u64, *prompt, *gen)?);
        }
        // Evict the masked subset (they are finished), then admit fresh
        // sequences into the recycled pages and verify them end-to-end.
        let mut freed = 0;
        for (i, seq) in live.into_iter().enumerate() {
            if evict_mask & (1 << i) != 0 {
                store.seal(seq).unwrap();
                store.evict(seq);
                freed += 1;
            }
        }
        for i in 0..freed {
            drive_mirrored(&dec, &mut store, seed ^ (0xA0 + i as u64), 140, 2)?;
        }
    }

    /// Any interleaving of preempt / swap-out / swap-in produced by any
    /// shipped scheduling policy yields token streams bitwise identical to
    /// uninterrupted contiguous decode — devices 1–4 × partitioning ×
    /// page size × scheme. Along the way, every step's occupancy metrics
    /// must agree with the store's actual (post-evict) free-page counts.
    #[test]
    fn preempted_streams_match_contiguous_bitwise(
        devices in 1usize..5,
        partitioning in arb_partitioning(),
        page_tokens in 1usize..80,
        policy_id in 0usize..3,
        scheme in arb_scheme(),
        seed: u64,
    ) {
        // Three staggered arrivals into a pool sized for the biggest
        // single request plus one page: over-subscribed for the offered
        // load, so admission queues and (under FcfsPreempt) preempts.
        let sizes = [(70usize, 3usize), (40, 2), (25, 4)];
        let arrivals = [0usize, 1, 3];
        let pages = 73usize.div_ceil(page_tokens) + 1;
        let config = ServeConfig::new(pages, page_tokens, 0, 8)
            .with_devices(devices, partitioning);
        let dec = BitDecoder::builder(GpuArch::rtx4090())
            .attention(ATTN_QUAD)
            .scheme(scheme)
            .paged(true)
            .build();
        let session = ServeSession::new(dec.clone(), config);
        let mut session = match policy_id {
            0 => session,
            1 => session.with_policy(FcfsPreempt::default()),
            _ => session.with_policy(ShortestRemainingFirst),
        };
        let ids: Vec<_> = sizes
            .iter()
            .zip(arrivals)
            .enumerate()
            .map(|(i, (&(prompt, gen), at))| {
                session
                    .submit_at(at, Box::new(SynthSequence::new(
                        ATTN_QUAD, seed ^ i as u64, prompt, gen)))
                    .unwrap()
            })
            .collect();
        while let Some(m) = session.step() {
            let store = session.store();
            prop_assert!(
                (m.pool_utilization - store.utilization()).abs() < 1e-12,
                "step {}: pool occupancy is not the post-evict state", m.step
            );
            for d in &m.per_device {
                let stats = store.device_stats(DeviceId(d.device as u32));
                prop_assert!(
                    (d.page_occupancy - stats.utilization).abs() < 1e-12,
                    "step {}: device {} occupancy is not the post-evict state",
                    m.step, d.device
                );
            }
        }
        for (i, (id, &(prompt, gen))) in ids.iter().zip(&sizes).enumerate() {
            prop_assert!(session.is_finished(*id), "request {} unserved", i);
            let want = replay_contiguous(
                &dec,
                &mut SynthSequence::new(ATTN_QUAD, seed ^ i as u64, prompt, gen),
            );
            prop_assert_eq!(
                session.stream(*id).unwrap(), &want[..],
                "policy {} request {}", session.policy_label(), i
            );
        }
        // Everything drained: all pages back on every device.
        prop_assert_eq!(session.store().free_pages(), session.store().total_pages());
    }

    /// Shared-prompt forks are bitwise invisible: a parent, two children
    /// admitted through `submit_forked` (their prompt pages aliased
    /// copy-on-write off the live parent), and a late fresh request that
    /// over-subscribes the pool, decoded across devices 1–4 ×
    /// partitioning × page size × every scheduling policy. The fork steps
    /// and the late `submit_at` arrival co-vary in one schedule, so
    /// mid-run fresh admissions interleave with CoW forks at every
    /// relative offset. Whatever CoW, preemption, and swap interleaving
    /// the run produces, every stream must equal the **unshared**
    /// per-sequence contiguous replay bit for bit, and every refcount
    /// must drain.
    #[test]
    fn forked_streams_match_unshared_contiguous_replay_bitwise(
        devices in 1usize..5,
        partitioning in arb_partitioning(),
        page_tokens in 1usize..80,
        policy_id in 0usize..3,
        fork_at in 1usize..5,
        late_gap in 0usize..4,
        scheme in arb_scheme(),
        seed: u64,
    ) {
        let prompt = 128usize;
        let parent_gen = 8usize;
        let child_gens = [4usize, 5];
        // Pool: the parent, both children's private tails, and one spare —
        // the late fresh request (40 + 3 tokens) over-subscribes it, so a
        // preempting policy swaps a sharing sequence out and back in.
        let shared_slots = prompt.div_ceil(page_tokens);
        let child_new = |g: usize| {
            (prompt + g).div_ceil(page_tokens).max(shared_slots) - shared_slots
        };
        let pages = (prompt + parent_gen).div_ceil(page_tokens)
            + child_new(child_gens[0])
            + child_new(child_gens[1])
            + 1;
        let config = ServeConfig::new(pages, page_tokens, 0, 8)
            .with_devices(devices, partitioning);
        let dec = BitDecoder::builder(GpuArch::rtx4090())
            .attention(ATTN_QUAD)
            .scheme(scheme)
            .paged(true)
            .build();
        let session = ServeSession::new(dec.clone(), config);
        let mut session = match policy_id {
            0 => session,
            1 => session.with_policy(FcfsPreempt::default()),
            _ => session.with_policy(ShortestRemainingFirst),
        };
        let parent = session
            .submit(Box::new(SynthSequence::forked(
                ATTN_QUAD, seed, seed ^ 1, prompt, parent_gen)))
            .unwrap();
        let mut ids = vec![(parent, seed ^ 1, prompt, parent_gen)];
        for (i, &gen) in child_gens.iter().enumerate() {
            let id = session
                .submit_forked_at(fork_at + i, parent, Box::new(SynthSequence::forked(
                    ATTN_QUAD, seed, seed ^ (2 + i as u64), prompt, gen)))
                .unwrap();
            ids.push((id, seed ^ (2 + i as u64), prompt, gen));
        }
        // Strictly after both forks, so the page pressure it brings never
        // swaps the parent out before the children alias its prompt.
        let late = session
            .submit_at(fork_at + 2 + late_gap, Box::new(SynthSequence::forked(
                ATTN_QUAD, seed ^ 9, seed ^ 9, 40, 3)))
            .unwrap();
        ids.push((late, seed ^ 9, 40, 3));
        let summary = session.run_to_completion();
        prop_assert_eq!(summary.completed, 4);
        // The children arrive while the parent is decoding and their
        // private tails are reserved in the pool, so both must have been
        // admitted by forking (the prompt is reachable under every scheme:
        // Nr-aligned at KC-4, within the residual window at KC-2).
        prop_assert_eq!(
            summary.forks, 2,
            "policy {} devices {}: children did not fork", session.policy_label(), devices
        );
        for (i, (id, gen_seed, p, g)) in ids.iter().enumerate() {
            let want = replay_contiguous(
                &dec,
                &mut SynthSequence::forked(
                    ATTN_QUAD, if i < 3 { seed } else { seed ^ 9 }, *gen_seed, *p, *g),
            );
            prop_assert_eq!(
                session.stream(*id).unwrap(), &want[..],
                "policy {} request {}: forked stream diverged", session.policy_label(), i
            );
        }
        prop_assert_eq!(
            session.store().free_pages(), session.store().total_pages(),
            "refcounts did not drain"
        );
    }

    /// The storage-level swap round trip is bitwise for any page size and
    /// any device count/partitioning: swap-out frees every page, swap-in
    /// restores blocks and residual windows byte-for-byte, and the
    /// restored sequence keeps accepting appends that stay
    /// contiguous-equivalent.
    #[test]
    fn swap_round_trip_is_bitwise_at_storage_level(
        devices in 1usize..5,
        partitioning in arb_partitioning(),
        page_tokens in 1usize..160,
        tokens in 1usize..260,
        extra in 1usize..4,
        seed: u64,
    ) {
        let dec = BitDecoder::builder(GpuArch::rtx4090())
            .attention(ATTN_QUAD)
            .scheme(QuantScheme::kc4())
            .paged(true)
            .build();
        let codec = dec.codec();
        let heads = ATTN_QUAD.heads_kv;
        let budget = tokens + extra;
        let pages = budget.div_ceil(page_tokens) + 1;
        let placement = Placement::new(devices, partitioning, heads);
        let mut sharded = ShardedKvStore::new(dec.cache_config(), placement, pages, page_tokens);
        let mut single = PagedKvStore::new(dec.cache_config(), heads, pages, page_tokens);
        let mut cache = dec.new_cache(1);
        let mut model = SynthSequence::new(ATTN_QUAD, seed, tokens, 1);
        let (pk, pv) = model.prompt();
        let sseq = sharded.admit(budget).unwrap();
        let pseq = single.admit(budget).unwrap();
        sharded.prefill(sseq, &pk, &pv, &codec).unwrap();
        single.prefill(pseq, &pk, &pv, &codec).unwrap();
        for h in 0..heads {
            cache.prefill(h, &pk[h], &pv[h], &codec).unwrap();
        }

        let sblob = sharded.swap_out(sseq).unwrap();
        let pblob = single.swap_out(pseq).unwrap();
        prop_assert_eq!(sharded.free_pages(), sharded.total_pages());
        prop_assert_eq!(single.free_pages(), single.total_pages());
        prop_assert_eq!(sblob.host_bytes(), pblob.host_bytes(),
            "sharding must not change the swapped payload size");

        let sback = sharded.swap_in(&sblob).unwrap();
        let pback = single.swap_in(&pblob).unwrap();
        prop_assert!(sharded.matches_cache(sback, &cache, 0), "sharded round trip");
        prop_assert!(single.matches_cache(pback, &cache, 0), "paged round trip");

        // The restored reservation still covers post-resume appends.
        for t in 0..extra {
            let k: Vec<Vec<f32>> = (0..heads)
                .map(|h| (0..16).map(|c| ((seed as usize + h * 31 + t * 7 + c) as f32 * 0.11).sin()).collect())
                .collect();
            sharded.append_step(sback, &k, &k, &codec).unwrap();
            single.append_step(pback, &k, &k, &codec).unwrap();
            for (h, kh) in k.iter().enumerate() {
                cache.append_token(h, kh, kh, &codec).unwrap();
            }
        }
        prop_assert!(sharded.matches_cache(sback, &cache, 0), "post-resume sharded");
        prop_assert!(single.matches_cache(pback, &cache, 0), "post-resume paged");
    }

    /// The full batched session emits identical token streams at any
    /// worker count, and they match the per-sequence contiguous replay.
    #[test]
    fn session_streams_invariant_to_worker_count(
        scheme in arb_scheme(),
        n_seqs in 1usize..5,
        seed: u64,
    ) {
        let streams_at = |workers: usize| -> Vec<Vec<u32>> {
            let mut session = ServeSession::new(
                decoder(scheme), ServeConfig::new(512, 64, workers, 8));
            let ids: Vec<_> = (0..n_seqs)
                .map(|i| {
                    let prompt = 90 + 37 * i;
                    session
                        .submit(Box::new(SynthSequence::new(ATTN, seed ^ i as u64, prompt, 3)))
                        .unwrap()
                })
                .collect();
            session.run_to_completion();
            ids.iter().map(|id| session.stream(*id).unwrap().to_vec()).collect()
        };
        let inline = streams_at(0);
        prop_assert_eq!(&inline, &streams_at(1));
        prop_assert_eq!(&inline, &streams_at(3));
        for (i, stream) in inline.iter().enumerate() {
            let want = replay_contiguous(
                &decoder(scheme),
                &mut SynthSequence::new(ATTN, seed ^ i as u64, 90 + 37 * i, 3),
            );
            prop_assert_eq!(stream, &want, "sequence {}", i);
        }
    }

    /// The chaos property: a *seeded fault schedule* — device losses,
    /// swap-blob corruption, transient link failures, timed pool
    /// exhaustion — layered over any scheduling policy × devices 1–4 ×
    /// partitioning × page size × the radix prefix cache on/off × a
    /// fork/preempt-inducing workload never changes which tokens any
    /// stream carries: the session completes every request, each stream
    /// equals its uninterrupted **unshared** contiguous replay bit for
    /// bit, no request fails, and every page drains once the run ends.
    /// The twin tenant repeats the parent's prompt without forking, so
    /// with the cache on the run exercises content adoption, pinned-page
    /// eviction under pressure, and page recycling across device-loss
    /// rebuilds (the recycled-generation staleness path).
    #[test]
    fn chaos_schedules_never_change_completed_streams(
        devices in 1usize..5,
        partitioning in arb_partitioning(),
        page_tokens in 1usize..80,
        policy_id in 0usize..3,
        prefix_cache in any::<bool>(),
        n_faults in 1usize..6,
        fault_seed: u64,
        seed: u64,
    ) {
        // The preemption workload plus a shared-prompt fork and an
        // identical-prompt twin: staggered arrivals into a pool sized for
        // the biggest request + one page, so admission queues, forks CoW,
        // the twin content-dedups when the geometry seals a whole page
        // run, and (under FcfsPreempt) preempts — then the fault schedule
        // kicks it while it is down.
        let pages = 143usize.div_ceil(page_tokens) + 1;
        let config = ServeConfig::new(pages, page_tokens, 0, 8)
            .with_devices(devices, partitioning)
            .with_prefix_cache(prefix_cache);
        let dec = BitDecoder::builder(GpuArch::rtx4090())
            .attention(ATTN_QUAD)
            .scheme(QuantScheme::kc4())
            .paged(true)
            .build();
        let session = ServeSession::new(dec.clone(), config)
            .with_faults(FaultPlan::seeded(fault_seed, n_faults, 12, devices));
        let mut session = match policy_id {
            0 => session,
            1 => session.with_policy(FcfsPreempt::default()),
            _ => session.with_policy(ShortestRemainingFirst),
        };
        let parent = session
            .submit(Box::new(SynthSequence::forked(ATTN_QUAD, seed, seed ^ 1, 140, 3)))
            .unwrap();
        let child = session
            .submit_forked_at(
                1,
                parent,
                Box::new(SynthSequence::forked(ATTN_QUAD, seed, seed ^ 2, 140, 2)),
            )
            .unwrap();
        let twin = session
            .submit_at(
                2,
                Box::new(SynthSequence::forked(ATTN_QUAD, seed, seed ^ 4, 140, 2)),
            )
            .unwrap();
        let late = session
            .submit_at(3, Box::new(SynthSequence::new(ATTN_QUAD, seed ^ 3, 25, 4)))
            .unwrap();
        let summary = session.run_to_completion();
        prop_assert_eq!(summary.completed, 4, "a fault aborted a request");
        prop_assert_eq!(summary.requests_failed, 0);
        if !prefix_cache {
            prop_assert_eq!(
                summary.prefix_cache_hits + summary.prefix_pages_reused, 0,
                "the cache gate leaked"
            );
        }
        let cases = [
            (parent, Some(seed ^ 1), 140usize, 3usize),
            (child, Some(seed ^ 2), 140, 2),
            (twin, Some(seed ^ 4), 140, 2),
            (late, None, 25, 4),
        ];
        for (i, (id, gen_seed, prompt, gen)) in cases.iter().enumerate() {
            let mut model = match gen_seed {
                Some(g) => SynthSequence::forked(ATTN_QUAD, seed, *g, *prompt, *gen),
                None => SynthSequence::new(ATTN_QUAD, seed ^ 3, *prompt, *gen),
            };
            let want = replay_contiguous(&dec, &mut model);
            prop_assert_eq!(
                session.stream(*id).unwrap(), &want[..],
                "request {} diverged under fault schedule {:#x}×{} ({} faults injected)",
                i, fault_seed, n_faults, summary.faults_injected
            );
        }
        prop_assert_eq!(
            session.store().free_pages(), session.store().total_pages(),
            "pages leaked across fault recovery"
        );
    }

    /// Cascade grouping is an optimization, never a correctness
    /// requirement: the same fork/preempt/swap/fault workload run with
    /// shared-prefix grouping ON and OFF — devices 1–4 × partitioning ×
    /// page size × scheme × policy × a seeded fault schedule — produces
    /// bitwise identical token streams, both equal to the uninterrupted
    /// per-sequence contiguous replay. The OFF run must form zero groups
    /// and save zero prefix pages, and the ON run's group accounting must
    /// stay internally consistent (pages saved only when groups formed).
    #[test]
    fn cascade_grouping_on_off_and_contiguous_replay_agree_bitwise(
        devices in 1usize..5,
        partitioning in arb_partitioning(),
        page_tokens in 1usize..80,
        policy_id in 0usize..3,
        fork_at in 1usize..4,
        late_gap in 0usize..4,
        scheme in arb_scheme(),
        n_faults in 1usize..4,
        fault_seed: u64,
        seed: u64,
    ) {
        let prompt = 96usize;
        let gens = [5usize, 3, 2];
        // Parent plus both children's private tails plus one spare page —
        // the late fresh request (40 + 3 tokens) over-subscribes the pool
        // so a preempting policy swaps a group member out mid-run.
        let shared_slots = prompt.div_ceil(page_tokens);
        let child_new = |g: usize| {
            (prompt + g).div_ceil(page_tokens).max(shared_slots) - shared_slots
        };
        let pages = (prompt + gens[0]).div_ceil(page_tokens)
            + child_new(gens[1])
            + child_new(gens[2])
            + 1;
        let dec = BitDecoder::builder(GpuArch::rtx4090())
            .attention(ATTN_QUAD)
            .scheme(scheme)
            .paged(true)
            .build();
        let run = |grouping: bool| {
            let config = ServeConfig::new(pages, page_tokens, 0, 8)
                .with_devices(devices, partitioning)
                .with_shared_attn(grouping);
            let session = ServeSession::new(dec.clone(), config)
                .with_faults(FaultPlan::seeded(fault_seed, n_faults, 12, devices));
            let mut session = match policy_id {
                0 => session,
                1 => session.with_policy(FcfsPreempt::default()),
                _ => session.with_policy(ShortestRemainingFirst),
            };
            let parent = session
                .submit(Box::new(SynthSequence::forked(
                    ATTN_QUAD, seed, seed ^ 1, prompt, gens[0])))
                .unwrap();
            let mut ids = vec![parent];
            for (i, &gen) in gens[1..].iter().enumerate() {
                ids.push(session
                    .submit_forked_at(fork_at + i, parent, Box::new(SynthSequence::forked(
                        ATTN_QUAD, seed, seed ^ (2 + i as u64), prompt, gen)))
                    .unwrap());
            }
            // The fresh mid-run arrival co-varies with the fork steps but
            // always lands after both forks.
            ids.push(session
                .submit_at(
                    fork_at + 2 + late_gap,
                    Box::new(SynthSequence::new(ATTN_QUAD, seed ^ 9, 40, 3)))
                .unwrap());
            let summary = session.run_to_completion();
            let streams: Vec<Vec<u32>> = ids
                .iter()
                .map(|id| session.stream(*id).unwrap().to_vec())
                .collect();
            let drained = session.store().free_pages() == session.store().total_pages();
            (streams, summary, drained)
        };
        let (on_streams, on_summary, on_drained) = run(true);
        let (off_streams, off_summary, off_drained) = run(false);
        prop_assert_eq!(on_summary.completed, 4, "grouped run lost a request");
        prop_assert_eq!(off_summary.completed, 4, "ungrouped run lost a request");
        prop_assert_eq!(
            &on_streams, &off_streams,
            "grouping changed token values (devices={} pt={} policy={})",
            devices, page_tokens, policy_id
        );
        // Both agree with the uninterrupted unshared contiguous replay.
        let cases = [
            (seed, seed ^ 1, prompt, gens[0]),
            (seed, seed ^ 2, prompt, gens[1]),
            (seed, seed ^ 3, prompt, gens[2]),
            (seed ^ 9, seed ^ 9, 40, 3),
        ];
        for (i, (prompt_seed, gen_seed, p, g)) in cases.iter().enumerate() {
            let want = replay_contiguous(
                &dec,
                &mut SynthSequence::forked(ATTN_QUAD, *prompt_seed, *gen_seed, *p, *g),
            );
            prop_assert_eq!(
                &on_streams[i], &want,
                "request {} diverged from contiguous replay with grouping on", i
            );
        }
        // The gate is real: OFF forms no groups and saves nothing.
        prop_assert_eq!(off_summary.shared_attn_groups, 0);
        prop_assert_eq!(off_summary.prefix_pages_walked_saved, 0);
        // ON accounting is internally consistent: a walk is only ever
        // saved by a formed group.
        if on_summary.shared_attn_groups == 0 {
            prop_assert_eq!(on_summary.prefix_pages_walked_saved, 0);
        }
        prop_assert!(on_drained && off_drained, "refcounts did not drain");
    }

    /// Heterogeneity is bitwise invisible: a session on an arbitrary
    /// mixed-architecture fleet — 4 devices of any builtin profiles,
    /// split across 1–4 islands, heads apportioned UNEVENLY by modeled
    /// throughput via `with_topology` — emits token streams identical to
    /// per-sequence contiguous replay, for any page size and worker
    /// count, while the weighted placement covers all KV heads exactly.
    #[test]
    fn weighted_uneven_fleet_matches_contiguous_replay_bitwise(
        islands in 1usize..5,
        arch_pick in prop::collection::vec(0usize..5, 4),
        page_tokens in 1usize..80,
        workers in 0usize..3,
        n_seqs in 1usize..4,
        scheme in arb_scheme(),
        seed: u64,
    ) {
        let profiles = ["a100", "rtx4090", "h100", "rtx5090", "rtx_pro6000"];
        let mut text = String::from(
            "[topology]\nname = prop_fleet\ncross_link = ib\nhost_link = pcie\n\
             [link nvlink]\ngbs = 450\nlatency_us = 3\n\
             [link ib]\ngbs = 50\nlatency_us = 5\n\
             [link pcie]\ngbs = 64\nlatency_us = 10\n",
        );
        // 4 devices dealt round-robin across the islands.
        for i in 0..islands {
            let members: Vec<&str> = (i..4)
                .step_by(islands)
                .map(|d| profiles[arch_pick[d]])
                .collect();
            if members.is_empty() {
                continue;
            }
            text.push_str(&format!(
                "[island i{i}]\ndevices = {}\nlink = nvlink\n",
                members.join(", ")
            ));
        }
        let topo = bd_gpu_sim::TopologySpec::parse(&text)
            .expect("generated fleet parses")
            .resolve()
            .expect("builtin profiles resolve");
        let prompt = |i: usize| 60 + 47 * i;
        let pages = n_seqs * 230usize.div_ceil(page_tokens) + 1;
        let config = ServeConfig::new(pages, page_tokens, workers, 8).with_topology(topo);
        prop_assert_eq!(config.devices, 4);
        prop_assert_eq!(config.partitioning, Partitioning::Weighted);
        let dec = BitDecoder::builder(GpuArch::rtx4090())
            .attention(ATTN_WIDE)
            .scheme(scheme)
            .paged(true)
            .build();
        let mut session = ServeSession::new(dec.clone(), config);
        let heads_assigned: usize = (0..session.devices())
            .map(|d| session.store().device_stats(DeviceId(d as u32)).heads)
            .sum();
        prop_assert_eq!(heads_assigned, ATTN_WIDE.heads_kv, "weighted cover incomplete");
        let ids: Vec<_> = (0..n_seqs)
            .map(|i| {
                session
                    .submit(Box::new(SynthSequence::new(
                        ATTN_WIDE, seed ^ i as u64, prompt(i), 2)))
                    .unwrap()
            })
            .collect();
        let summary = session.run_to_completion();
        prop_assert_eq!(summary.completed, n_seqs);
        for (i, id) in ids.iter().enumerate() {
            let want = replay_contiguous(
                &dec,
                &mut SynthSequence::new(ATTN_WIDE, seed ^ i as u64, prompt(i), 2),
            );
            prop_assert_eq!(
                session.stream(*id).unwrap(), &want[..],
                "sequence {} diverged on the mixed fleet", i
            );
        }
    }

    /// The radix prefix cache is bitwise invisible under chaos: N
    /// independent identical-prompt tenants (no `fork` anywhere) plus a
    /// distinct late arrival, run with the content-addressed cache ON and
    /// OFF under the same seeded fault schedule — devices 1–4 ×
    /// partitioning × page size × scheme × policy — emit identical token
    /// streams, both equal to the uninterrupted contiguous replay. On a
    /// fault-free schedule every tenant after the first must adopt the
    /// sealed prompt runs on every device, and pages never leak either
    /// way.
    #[test]
    fn radix_prefix_cache_chaos_streams_match_uncached_bitwise(
        devices in 1usize..5,
        partitioning in arb_partitioning(),
        pt_pick in 0usize..4,
        policy_id in 0usize..3,
        scheme in arb_scheme(),
        n_tenants in 2usize..5,
        n_faults in 0usize..4,
        fault_seed: u64,
        seed: u64,
    ) {
        // Page sizes that divide both schemes' packed-run geometry, so a
        // 256-token prompt always seals at least one whole page run and
        // the guaranteed-hit assertion below is exact.
        let page_tokens = [8usize, 16, 32, 64][pt_pick];
        let prompt = 256usize;
        let gen = |i: usize| 2 + (i % 3);
        // Generous pool: everything fits, so the chaos comes from the
        // fault schedule (device loss, link failures, blob corruption),
        // not page pressure — the over-subscribed cache-under-pressure
        // grid lives in `chaos_schedules_never_change_completed_streams`.
        let pages = n_tenants * 260usize.div_ceil(page_tokens)
            + 43usize.div_ceil(page_tokens)
            + 2;
        let dec = BitDecoder::builder(GpuArch::rtx4090())
            .attention(ATTN_QUAD)
            .scheme(scheme)
            .paged(true)
            .build();
        let run = |cache: bool| {
            let config = ServeConfig::new(pages, page_tokens, 0, 8)
                .with_devices(devices, partitioning)
                .with_prefix_cache(cache);
            let session = ServeSession::new(dec.clone(), config)
                .with_faults(FaultPlan::seeded(fault_seed, n_faults, 12, devices));
            let mut session = match policy_id {
                0 => session,
                1 => session.with_policy(FcfsPreempt::default()),
                _ => session.with_policy(ShortestRemainingFirst),
            };
            let mut ids = Vec::new();
            for i in 0..n_tenants {
                ids.push(session
                    .submit(Box::new(SynthSequence::forked(
                        ATTN_QUAD, seed, seed ^ (1 + i as u64), prompt, gen(i))))
                    .unwrap());
            }
            ids.push(session
                .submit_at(2, Box::new(SynthSequence::new(ATTN_QUAD, seed ^ 99, 40, 3)))
                .unwrap());
            let summary = session.run_to_completion();
            let streams: Vec<Vec<u32>> = ids
                .iter()
                .map(|id| session.stream(*id).unwrap().to_vec())
                .collect();
            let drained = session.store().free_pages() == session.store().total_pages();
            (streams, summary, drained)
        };
        let (on_streams, on_summary, on_drained) = run(true);
        let (off_streams, off_summary, off_drained) = run(false);
        prop_assert_eq!(on_summary.completed, n_tenants + 1, "cached run lost a request");
        prop_assert_eq!(off_summary.completed, n_tenants + 1, "uncached run lost a request");
        prop_assert_eq!(on_summary.requests_failed + off_summary.requests_failed, 0);
        prop_assert_eq!(
            &on_streams, &off_streams,
            "the prefix cache changed token values (devices={} pt={} policy={})",
            devices, page_tokens, policy_id
        );
        for (i, stream) in on_streams.iter().enumerate() {
            let mut model = if i < n_tenants {
                SynthSequence::forked(
                    ATTN_QUAD, seed, seed ^ (1 + i as u64), prompt, gen(i))
            } else {
                SynthSequence::new(ATTN_QUAD, seed ^ 99, 40, 3)
            };
            let want = replay_contiguous(&dec, &mut model);
            prop_assert_eq!(
                stream, &want,
                "request {} diverged under fault schedule {:#x}×{} ({} injected)",
                i, fault_seed, n_faults, on_summary.faults_injected
            );
        }
        // The gate is real: OFF never touches the cache.
        prop_assert_eq!(
            off_summary.prefix_cache_hits
                + off_summary.prefix_cache_misses
                + off_summary.prefix_pages_reused,
            0
        );
        // Fault-free schedules adopt deterministically: no rebuild ever
        // cleared the index, so every tenant after the first hits once
        // per device and reuses at least the sealed prompt runs.
        if n_faults == 0 {
            prop_assert_eq!(on_summary.prefix_cache_hits, (n_tenants - 1) * devices);
            prop_assert!(on_summary.prefix_pages_reused > 0);
        }
        prop_assert!(on_drained && off_drained, "refcounts did not drain");
    }
}
