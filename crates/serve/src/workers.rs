//! The persistent decode worker pool.
//!
//! Every decode step fans one [`WorkUnit`] per `(sequence, kv-head)` pair
//! over long-lived OS threads. A unit gathers its sequence's packed blocks
//! **through the page table** ([`PagedKvStore::packed_blocks`]) and runs
//! [`BitDecoder::attend_head`] — which internally applies the kernel's own
//! split-K thread sharding for long contexts — so batch-, head- and
//! split-K-level parallelism compose. Because each unit is an independent,
//! deterministic computation, results are **invariant to the worker
//! count** (including the inline `workers = 0` mode), bit for bit.
//!
//! Sharing discipline: the store and decoder cross into workers as [`Arc`]s
//! cloned per task. The attention phase of a step never mutates the store;
//! a worker drops its clones *before* reporting its result, so once the
//! scheduler has collected every result it is again the sole owner and can
//! mutate the store (appends, evictions) without locks — the
//! compute/mutate phase separation a real serving engine enforces with
//! stream ordering.

use bd_core::BitDecoder;
use bd_kvcache::{PagedKvStore, SeqId};
use bd_lowbit::fastpath::FastDequantOps;
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

/// One `(sequence, kv-head)` attention work unit for the current step.
#[derive(Clone, Debug)]
pub struct WorkUnit {
    /// Dense index of this unit within the step (results slot).
    pub unit: usize,
    /// The sequence to attend over.
    pub seq: SeqId,
    /// The KV head within the sequence.
    pub head: usize,
    /// The grouped `g_q × d` query block for this head.
    pub q_block: Vec<Vec<f32>>,
}

struct Task {
    unit: WorkUnit,
    store: Arc<PagedKvStore>,
    decoder: Arc<BitDecoder>,
}

/// One unit's finished attention output.
#[derive(Clone, Debug)]
pub struct UnitResult {
    /// The unit index this result fills.
    pub unit: usize,
    /// Normalized `g_q × d` attention rows.
    pub rows: Vec<Vec<f32>>,
    /// Fast-dequant instructions the fused kernel streamed for this unit.
    pub ops: FastDequantOps,
}

/// Executes one work unit: page-table-indirect block gather + the decode
/// path's per-head attention body. Consumes (and drops) the task — and its
/// `Arc`s — before the caller sends the result, preserving the
/// sole-ownership hand-back described in the [module docs](self).
fn run_unit(task: Task) -> UnitResult {
    let blocks = task.store.packed_blocks(task.unit.seq, task.unit.head);
    let (res_k, res_v) = task.store.residual(task.unit.seq, task.unit.head);
    let (rows, ops) = task
        .decoder
        .attend_head(&task.unit.q_block, &blocks, res_k, res_v);
    UnitResult {
        unit: task.unit.unit,
        rows,
        ops,
    }
}

/// A persistent pool of decode workers (see the [module docs](self)).
///
/// With `workers = 0` the pool runs every unit inline on the caller's
/// thread — same results, no threads; useful for tests and profiling.
pub struct WorkerPool {
    task_tx: Option<Sender<Task>>,
    result_rx: Receiver<UnitResult>,
    handles: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawns `workers` persistent threads (0 = inline execution).
    pub fn new(workers: usize) -> Self {
        let (task_tx, task_rx) = channel::<Task>();
        let (result_tx, result_rx) = channel::<UnitResult>();
        let task_rx = Arc::new(Mutex::new(task_rx));
        let handles = (0..workers)
            .map(|_| {
                let task_rx = Arc::clone(&task_rx);
                let result_tx = result_tx.clone();
                std::thread::spawn(move || loop {
                    // Hold the queue lock only for the dequeue, never
                    // across the attention itself.
                    let next = { task_rx.lock().expect("task queue").recv() };
                    let Ok(task) = next else { break };
                    let result = run_unit(task);
                    if result_tx.send(result).is_err() {
                        break;
                    }
                })
            })
            .collect();
        WorkerPool {
            task_tx: Some(task_tx),
            result_rx,
            handles,
        }
    }

    /// Number of worker threads (0 = inline mode).
    pub fn workers(&self) -> usize {
        self.handles.len()
    }

    /// Runs one step's units to completion and returns the results ordered
    /// by unit index. Blocks until every unit has finished.
    ///
    /// # Panics
    ///
    /// Panics if a worker thread died (poisoned queue / closed channel).
    pub fn run_step(
        &self,
        units: Vec<WorkUnit>,
        store: &Arc<PagedKvStore>,
        decoder: &Arc<BitDecoder>,
    ) -> Vec<UnitResult> {
        let n = units.len();
        let mut out: Vec<Option<UnitResult>> = (0..n).map(|_| None).collect();
        if self.handles.is_empty() {
            for unit in units {
                let r = run_unit(Task {
                    unit,
                    store: Arc::clone(store),
                    decoder: Arc::clone(decoder),
                });
                let slot = r.unit;
                out[slot] = Some(r);
            }
        } else {
            let tx = self.task_tx.as_ref().expect("pool is live");
            for unit in units {
                tx.send(Task {
                    unit,
                    store: Arc::clone(store),
                    decoder: Arc::clone(decoder),
                })
                .expect("worker pool alive");
            }
            for _ in 0..n {
                let r = self.result_rx.recv().expect("worker result");
                let slot = r.unit;
                out[slot] = Some(r);
            }
        }
        out.into_iter()
            .map(|r| r.expect("every unit produced a result"))
            .collect()
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Closing the task channel ends every worker loop.
        self.task_tx.take();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bd_core::{query_transform, AttentionConfig, BitDecoder};
    use bd_gpu_sim::GpuArch;
    use bd_kvcache::{CacheConfig, PackLayout, QuantScheme, TokenMatrix};

    fn setup() -> (Arc<BitDecoder>, Arc<PagedKvStore>, Vec<WorkUnit>) {
        let attn = AttentionConfig::gqa(4, 2, 16);
        let decoder = BitDecoder::builder(GpuArch::rtx4090())
            .attention(attn)
            .scheme(QuantScheme::kc4())
            .build();
        let cfg = CacheConfig::new(16, QuantScheme::kc4(), PackLayout::sm80_default());
        let mut store = PagedKvStore::new(cfg, attn.heads_kv, 64, 32);
        let codec = decoder.codec();
        let seq = store.admit(0).unwrap();
        let len = 128 + 11;
        let k: Vec<TokenMatrix> = (0..2)
            .map(|h| TokenMatrix::from_fn(len, 16, |t, c| ((h + t * 16 + c) as f32 * 0.3).sin()))
            .collect();
        store.prefill(seq, &k, &k, &codec).unwrap();
        let q: Vec<Vec<f32>> = (0..4)
            .map(|h| (0..16).map(|c| ((h * 16 + c) as f32 * 0.7).sin()).collect())
            .collect();
        let units: Vec<WorkUnit> = query_transform(&q, &attn)
            .into_iter()
            .enumerate()
            .map(|(head, q_block)| WorkUnit {
                unit: head,
                seq,
                head,
                q_block,
            })
            .collect();
        (Arc::new(decoder), Arc::new(store), units)
    }

    #[test]
    fn threaded_results_match_inline_bitwise() {
        let (decoder, store, units) = setup();
        let inline = WorkerPool::new(0).run_step(units.clone(), &store, &decoder);
        for workers in [1, 3] {
            let pool = WorkerPool::new(workers);
            let threaded = pool.run_step(units.clone(), &store, &decoder);
            for (a, b) in inline.iter().zip(&threaded) {
                assert_eq!(a.unit, b.unit);
                assert_eq!(a.rows, b.rows, "workers={workers}");
                assert_eq!(a.ops, b.ops);
            }
        }
    }

    #[test]
    fn pool_survives_multiple_steps_and_store_regains_sole_ownership() {
        let (decoder, store, units) = setup();
        let mut store = store;
        let pool = WorkerPool::new(2);
        for _ in 0..3 {
            let _ = pool.run_step(units.clone(), &store, &decoder);
            // All task Arcs were dropped before results were sent.
            while Arc::strong_count(&store) > 1 {
                std::thread::yield_now();
            }
            assert!(Arc::get_mut(&mut store).is_some());
        }
    }
}
