//! The persistent, device-pinned decode worker pool.
//!
//! Every decode step fans one [`WorkUnit`] per `(sequence, kv-head,
//! device)` triple — or, when the scheduler detects sequences aliasing
//! the same sealed prefix pages, one **cascade unit** per `(prefix-group,
//! kv-head, device)` carrying every sharer's query block — over
//! long-lived OS threads. Workers are organized into **per-device
//! groups**: each group has its own task queue and only ever executes
//! units whose KV head is placed on its device, so a worker touches
//! exactly one device's page arena — the simulated analogue of a
//! tensor-parallel rank that can only dereference its own HBM. A unit
//! gathers its head's packed blocks through the owning device's page table
//! ([`bd_kvcache::PagedKvStore::packed_blocks`] on
//! [`ShardedKvStore::device`]) and runs
//! [`BitDecoder::attend_head_partial`] (solo) or
//! [`BitDecoder::attend_head_partial_multi`] (cascade: the shared packed
//! prefix pages stream through the dequant LUTs **once** for all
//! sharers) — the per-head body of the decode path *without* the final
//! normalization, so the scheduler can combine per-device and per-sharer
//! partials through `OnlineSoftmax::merge` (the simulated all-reduce)
//! before normalizing once.
//!
//! Because each unit is an independent, deterministic computation and the
//! merge of a head's partial set is exact, results are **invariant to the
//! worker count and the device count** (including the inline `workers = 0`
//! mode), bit for bit.
//!
//! Sharing discipline: the store and decoder cross into workers as [`Arc`]s
//! cloned per task. The attention phase of a step never mutates the store;
//! a worker drops its clones *before* reporting its result, so once the
//! scheduler has collected every result it is again the sole owner and can
//! mutate the store (appends, evictions) without locks — the
//! compute/mutate phase separation a real serving engine enforces with
//! stream ordering.

use bd_core::{BitDecoder, OnlineSoftmax, PrefixSharer};
use bd_kvcache::{DeviceId, PackedBlock, SeqId, ShardedKvStore, StoreError};
use bd_lowbit::fastpath::FastDequantOps;
use bd_obs::{device_lane, SpanTracer};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::JoinHandle;

/// Runtime execution errors of the serve layer — the typed replacements
/// for what used to be fail-stop panics. The session handles each by
/// degrading service (failing the affected request, retrying the step)
/// instead of aborting the run.
#[derive(Clone, Debug, PartialEq)]
pub enum ServeError {
    /// A work unit was routed to a device that does not own its KV head —
    /// the device-locality contract a real TP rank enforces physically.
    Misrouted {
        /// The sequence of the offending unit.
        seq: SeqId,
        /// The unit's global KV head.
        head: usize,
        /// The device the unit was (wrongly) routed to.
        routed: DeviceId,
        /// The device the placement says owns the head.
        owner: DeviceId,
    },
    /// A worker thread or its channel died mid-step.
    WorkerLost,
    /// A step finished without producing a result for every unit.
    MissingResult {
        /// The unit index with no result.
        unit: usize,
    },
    /// A store operation failed while serving the request.
    Store(StoreError),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Misrouted {
                seq,
                head,
                routed,
                owner,
            } => write!(
                f,
                "unit for {seq:?} head {head} routed to {routed:?}, \
                 which does not own the head ({owner:?} does)"
            ),
            ServeError::WorkerLost => write!(f, "a worker thread or its channel died mid-step"),
            ServeError::MissingResult { unit } => {
                write!(f, "step finished without a result for unit {unit}")
            }
            ServeError::Store(e) => write!(f, "store operation failed: {e}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<StoreError> for ServeError {
    fn from(e: StoreError) -> Self {
        ServeError::Store(e)
    }
}

/// One sequence's slice of a work unit: its identity and its grouped
/// `g_q × d` query block for the unit's head.
#[derive(Clone, Debug)]
pub struct UnitSharer {
    /// The sequence to attend over.
    pub seq: SeqId,
    /// The grouped `g_q × d` query block for the unit's head.
    pub q_block: Vec<Vec<f32>>,
}

/// One attention work unit for the current step: classically a
/// `(sequence, kv-head, device)` triple (one sharer, no shared prefix),
/// or — when the scheduler detects sequences aliasing the same sealed
/// prefix pages — a cascade `(prefix-group, kv-head, device)` unit whose
/// leading `prefix_blocks` packed blocks stream through the dequant LUTs
/// once for all sharers.
#[derive(Clone, Debug)]
pub struct WorkUnit {
    /// Dense index of this unit within the step (results slot).
    pub unit: usize,
    /// The **global** KV head within the sequences.
    pub head: usize,
    /// The device owning that head's KV shard — the worker group this
    /// unit is routed to.
    pub device: DeviceId,
    /// Leading packed blocks every sharer reads from the same physical
    /// pages (`0` for solo units).
    pub prefix_blocks: usize,
    /// The sequences this unit attends for; one entry is the classic
    /// per-sequence unit.
    pub sharers: Vec<UnitSharer>,
}

impl WorkUnit {
    /// The classic single-sequence unit.
    pub fn solo(
        unit: usize,
        seq: SeqId,
        head: usize,
        device: DeviceId,
        q_block: Vec<Vec<f32>>,
    ) -> Self {
        WorkUnit {
            unit,
            head,
            device,
            prefix_blocks: 0,
            sharers: vec![UnitSharer { seq, q_block }],
        }
    }

    /// The unit's first sharer — the sequence blamed in routing errors.
    pub fn primary_seq(&self) -> SeqId {
        self.sharers[0].seq
    }
}

struct Task {
    unit: WorkUnit,
    store: Arc<ShardedKvStore>,
    decoder: Arc<BitDecoder>,
    /// Clone of the session's span tracer: workers record per-unit
    /// `execute` spans on their device lane (a relaxed atomic load when
    /// tracing is off).
    tracer: SpanTracer,
}

/// One unit's finished attention partials.
#[derive(Clone, Debug)]
pub struct UnitResult {
    /// The unit index this result fills.
    pub unit: usize,
    /// The device that computed it.
    pub device: DeviceId,
    /// One un-normalized softmax partial per sharer, in the unit's sharer
    /// order — the all-reduce payload. The scheduler merges each
    /// sequence's per-device partials with `OnlineSoftmax::merge` and
    /// normalizes once. Solo units carry exactly one.
    pub partials: Vec<OnlineSoftmax>,
    /// Fast-dequant instructions the fused kernel streamed for this unit
    /// (deduped: a shared prefix block counts once, not once per sharer).
    pub ops: FastDequantOps,
}

/// Executes one work unit on its owning device: local-arena block gather +
/// the decode path's per-head attention body, un-normalized. Consumes (and
/// drops) the task — and its `Arc`s — before the caller sends the result,
/// preserving the sole-ownership hand-back described in the
/// [module docs](self).
///
/// Solo units run [`BitDecoder::attend_head_partial`] exactly as before;
/// group units run the cascade
/// [`BitDecoder::attend_head_partial_multi`], which walks the shared
/// prefix blocks once and returns a bitwise-identical partial per sharer.
///
/// Returns [`ServeError::Misrouted`] — computing nothing — if the unit's
/// head is not placed on the unit's device: the device-locality contract a
/// real TP rank enforces physically.
fn run_unit(task: Task) -> Result<UnitResult, ServeError> {
    let placement = task.store.placement();
    let owner = placement.device_of(task.unit.head);
    if owner != task.unit.device {
        return Err(ServeError::Misrouted {
            seq: task.unit.primary_seq(),
            head: task.unit.head,
            routed: task.unit.device,
            owner,
        });
    }
    // Read ONLY this device's arena: the gather goes through the local
    // store and the head's local slot, never through another device.
    let local = placement.local_index(task.unit.head);
    let span = task.tracer.begin();
    let dev_store = task.store.device(task.unit.device);
    let (partials, ops) = if task.unit.sharers.len() == 1 {
        let sharer = &task.unit.sharers[0];
        let blocks = dev_store.packed_blocks(sharer.seq, local);
        let (res_k, res_v) = dev_store.residual(sharer.seq, local);
        let (partial, ops) =
            task.decoder
                .attend_head_partial(&sharer.q_block, &blocks, res_k, res_v);
        task.tracer.end_with(
            span,
            "execute",
            device_lane(task.unit.device.0 as usize),
            vec![
                ("unit", task.unit.unit as f64),
                ("head", task.unit.head as f64),
            ],
        );
        (vec![partial], ops)
    } else {
        let p = task.unit.prefix_blocks;
        let gathers: Vec<Vec<&PackedBlock>> = task
            .unit
            .sharers
            .iter()
            .map(|s| dev_store.packed_blocks(s.seq, local))
            .collect();
        // The scheduler only groups sequences whose first `p` blocks
        // alias the same physical pages — so the gathers agree not just
        // bitwise but by identity.
        debug_assert!(gathers.iter().all(|g| {
            g.len() >= p
                && g[..p]
                    .iter()
                    .zip(&gathers[0][..p])
                    .all(|(a, b)| std::ptr::eq(*a, *b))
        }));
        let prefix = &gathers[0][..p];
        let inputs: Vec<PrefixSharer<'_, &PackedBlock>> = task
            .unit
            .sharers
            .iter()
            .zip(&gathers)
            .map(|(s, g)| {
                let (res_k, res_v) = dev_store.residual(s.seq, local);
                PrefixSharer {
                    q_block: &s.q_block,
                    suffix: &g[p..],
                    res_k,
                    res_v,
                }
            })
            .collect();
        let (partials, ops) = task.decoder.attend_head_partial_multi(prefix, &inputs);
        task.tracer.end_with(
            span,
            "shared_attn",
            device_lane(task.unit.device.0 as usize),
            vec![
                ("unit", task.unit.unit as f64),
                ("head", task.unit.head as f64),
                ("sharers", task.unit.sharers.len() as f64),
                ("prefix_blocks", p as f64),
            ],
        );
        (partials, ops)
    };
    Ok(UnitResult {
        unit: task.unit.unit,
        device: task.unit.device,
        partials,
        ops,
    })
}

/// One device's worker group: its own task queue, its own threads.
struct DeviceGroup {
    task_tx: Option<Sender<Task>>,
    handles: Vec<JoinHandle<()>>,
}

/// A persistent pool of device-pinned decode workers (see the
/// [module docs](self)).
///
/// With `workers_per_device = 0` the pool runs every unit inline on the
/// caller's thread — same results, no threads; useful for tests and
/// profiling.
pub struct WorkerPool {
    groups: Vec<DeviceGroup>,
    result_rx: Receiver<Result<UnitResult, ServeError>>,
    workers_per_device: usize,
}

impl WorkerPool {
    /// Spawns `workers_per_device` persistent threads for each of
    /// `devices` device groups (0 = inline execution).
    pub fn new(workers_per_device: usize, devices: usize) -> Self {
        let (result_tx, result_rx) = channel::<Result<UnitResult, ServeError>>();
        let groups = (0..devices.max(1))
            .map(|_| {
                let (task_tx, task_rx) = channel::<Task>();
                let task_rx = Arc::new(Mutex::new(task_rx));
                let handles = (0..workers_per_device)
                    .map(|_| {
                        let task_rx = Arc::clone(&task_rx);
                        let result_tx = result_tx.clone();
                        std::thread::spawn(move || loop {
                            // Hold the queue lock only for the dequeue,
                            // never across the attention itself. A poisoned
                            // lock (a sibling panicked mid-dequeue) still
                            // yields a usable receiver.
                            let next = {
                                task_rx
                                    .lock()
                                    .unwrap_or_else(PoisonError::into_inner)
                                    .recv()
                            };
                            let Ok(task) = next else { break };
                            let result = run_unit(task);
                            if result_tx.send(result).is_err() {
                                break;
                            }
                        })
                    })
                    .collect();
                DeviceGroup {
                    task_tx: Some(task_tx),
                    handles,
                }
            })
            .collect();
        WorkerPool {
            groups,
            result_rx,
            workers_per_device,
        }
    }

    /// Worker threads per device group (0 = inline mode).
    pub fn workers(&self) -> usize {
        self.workers_per_device
    }

    /// Device groups in the pool.
    pub fn devices(&self) -> usize {
        self.groups.len()
    }

    /// Runs one step's units to completion and returns the results ordered
    /// by unit index. Each unit is dispatched to its device's group; the
    /// call blocks until every unit has finished.
    ///
    /// # Errors
    ///
    /// Returns the first [`ServeError`] encountered — a misrouted unit, a
    /// dead worker, or a missing result. On error every already-dispatched
    /// unit is still drained from the result channel first, so a failed
    /// step never leaves stale results behind to pollute the next one,
    /// and the store's sole-ownership hand-back still holds.
    pub fn run_step(
        &self,
        units: Vec<WorkUnit>,
        store: &Arc<ShardedKvStore>,
        decoder: &Arc<BitDecoder>,
        tracer: &SpanTracer,
    ) -> Result<Vec<UnitResult>, ServeError> {
        let n = units.len();
        let mut out: Vec<Option<UnitResult>> = (0..n).map(|_| None).collect();
        if self.workers_per_device == 0 {
            for unit in units {
                let r = run_unit(Task {
                    unit,
                    store: Arc::clone(store),
                    decoder: Arc::clone(decoder),
                    tracer: tracer.clone(),
                })?;
                let slot = r.unit;
                out[slot] = Some(r);
            }
        } else {
            let mut first_err = None;
            let mut dispatched = 0usize;
            for unit in units {
                let Some(group) = self.groups.get(unit.device.0 as usize) else {
                    first_err = Some(ServeError::Misrouted {
                        seq: unit.primary_seq(),
                        head: unit.head,
                        routed: unit.device,
                        owner: store.placement().device_of(unit.head),
                    });
                    break;
                };
                let Some(tx) = group.task_tx.as_ref() else {
                    first_err = Some(ServeError::WorkerLost);
                    break;
                };
                if tx
                    .send(Task {
                        unit,
                        store: Arc::clone(store),
                        decoder: Arc::clone(decoder),
                        tracer: tracer.clone(),
                    })
                    .is_err()
                {
                    first_err = Some(ServeError::WorkerLost);
                    break;
                }
                dispatched += 1;
            }
            // Drain EVERY dispatched unit even after an error, so no stale
            // result crosses into the next step.
            for _ in 0..dispatched {
                match self.result_rx.recv() {
                    Ok(Ok(r)) => {
                        let slot = r.unit;
                        if slot < n {
                            out[slot] = Some(r);
                        }
                    }
                    Ok(Err(e)) => first_err = first_err.or(Some(e)),
                    Err(_) => {
                        first_err = first_err.or(Some(ServeError::WorkerLost));
                        break;
                    }
                }
            }
            if let Some(e) = first_err {
                return Err(e);
            }
        }
        out.into_iter()
            .enumerate()
            .map(|(unit, r)| r.ok_or(ServeError::MissingResult { unit }))
            .collect()
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Closing the task channels ends every worker loop.
        for group in &mut self.groups {
            group.task_tx.take();
        }
        for group in &mut self.groups {
            for h in group.handles.drain(..) {
                let _ = h.join();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bd_core::{query_transform, AttentionConfig, BitDecoder};
    use bd_gpu_sim::GpuArch;
    use bd_kvcache::{CacheConfig, PackLayout, Partitioning, Placement, QuantScheme, TokenMatrix};

    fn setup(devices: usize) -> (Arc<BitDecoder>, Arc<ShardedKvStore>, Vec<WorkUnit>) {
        let attn = AttentionConfig::gqa(4, 2, 16);
        let decoder = BitDecoder::builder(GpuArch::rtx4090())
            .attention(attn)
            .scheme(QuantScheme::kc4())
            .build();
        let cfg = CacheConfig::new(16, QuantScheme::kc4(), PackLayout::sm80_default());
        let placement = Placement::new(devices, Partitioning::HeadModulo, attn.heads_kv);
        let mut store = ShardedKvStore::new(cfg, placement.clone(), 64, 32);
        let codec = decoder.codec();
        let seq = store.admit(0).unwrap();
        let len = 128 + 11;
        let k: Vec<TokenMatrix> = (0..2)
            .map(|h| TokenMatrix::from_fn(len, 16, |t, c| ((h + t * 16 + c) as f32 * 0.3).sin()))
            .collect();
        store.prefill(seq, &k, &k, &codec).unwrap();
        let q: Vec<Vec<f32>> = (0..4)
            .map(|h| (0..16).map(|c| ((h * 16 + c) as f32 * 0.7).sin()).collect())
            .collect();
        let units: Vec<WorkUnit> = query_transform(&q, &attn)
            .into_iter()
            .enumerate()
            .map(|(head, q_block)| {
                WorkUnit::solo(head, seq, head, placement.device_of(head), q_block)
            })
            .collect();
        (Arc::new(decoder), Arc::new(store), units)
    }

    #[test]
    fn threaded_results_match_inline_bitwise_at_any_device_count() {
        let (decoder, store1, units1) = setup(1);
        let inline = WorkerPool::new(0, 1)
            .run_step(units1, &store1, &decoder, &SpanTracer::disabled())
            .unwrap();
        for devices in [1usize, 2] {
            let (_, store, units) = setup(devices);
            for workers in [0usize, 1, 3] {
                let pool = WorkerPool::new(workers, devices);
                let got = pool
                    .run_step(units.clone(), &store, &decoder, &SpanTracer::disabled())
                    .unwrap();
                for (a, b) in inline.iter().zip(&got) {
                    assert_eq!(a.unit, b.unit);
                    assert_eq!(
                        a.partials[0].clone().finish(),
                        b.partials[0].clone().finish(),
                        "devices={devices} workers={workers}"
                    );
                    assert_eq!(a.ops, b.ops);
                }
            }
        }
    }

    #[test]
    fn units_are_routed_to_owning_device_groups() {
        let (decoder, store, units) = setup(2);
        let pool = WorkerPool::new(2, 2);
        assert_eq!(pool.devices(), 2);
        let results = pool
            .run_step(units.clone(), &store, &decoder, &SpanTracer::disabled())
            .unwrap();
        for (u, r) in units.iter().zip(&results) {
            assert_eq!(r.device, u.device);
            assert_eq!(r.device, store.placement().device_of(u.head));
        }
    }

    #[test]
    fn grouped_unit_partials_match_solo_units_bitwise() {
        // Three sequences forked off one block-aligned 256-token prompt
        // alias the same sealed prefix pages; a cascade unit over all
        // three must return, per sharer, exactly the partial its solo
        // unit returns — at every head, on every device, threaded or not.
        let attn = AttentionConfig::gqa(4, 2, 16);
        let decoder = Arc::new(
            BitDecoder::builder(GpuArch::rtx4090())
                .attention(attn)
                .scheme(QuantScheme::kc4())
                .build(),
        );
        let cfg = CacheConfig::new(16, QuantScheme::kc4(), PackLayout::sm80_default());
        let placement = Placement::new(2, Partitioning::HeadModulo, attn.heads_kv);
        let mut store = ShardedKvStore::new(cfg, placement.clone(), 128, 32);
        let codec = decoder.codec();
        let parent = store.admit(512).unwrap();
        let k: Vec<TokenMatrix> = (0..2)
            .map(|h| TokenMatrix::from_fn(256, 16, |t, c| ((h + t * 16 + c) as f32 * 0.3).sin()))
            .collect();
        store.prefill(parent, &k, &k, &codec).unwrap();
        let seqs = [
            parent,
            store.fork(parent, 256, 512).unwrap(),
            store.fork(parent, 256, 512).unwrap(),
        ];
        // Diverge each lineage inside its residual window.
        for (i, &seq) in seqs.iter().enumerate() {
            for t in 0..(4 + i * 3) {
                let rows: Vec<Vec<f32>> = (0..2)
                    .map(|h| {
                        (0..16)
                            .map(|c| ((i * 1000 + t * 16 + c + h) as f32 * 0.11).cos())
                            .collect()
                    })
                    .collect();
                store.append_step(seq, &rows, &rows, &codec).unwrap();
            }
        }
        let store = Arc::new(store);
        let pool = WorkerPool::new(2, 2);
        for head in 0..attn.heads_kv {
            let device = placement.device_of(head);
            let run = store.shared_block_run(device, &seqs);
            assert_eq!(run, 2, "head {head}");
            let q_of = |i: usize| -> Vec<Vec<f32>> {
                let q: Vec<Vec<f32>> = (0..4)
                    .map(|h| {
                        (0..16)
                            .map(|c| ((i * 31 + h * 16 + c) as f32 * 0.7).sin())
                            .collect()
                    })
                    .collect();
                query_transform(&q, &attn).swap_remove(head)
            };
            let solo_units: Vec<WorkUnit> = seqs
                .iter()
                .enumerate()
                .map(|(i, &seq)| WorkUnit::solo(i, seq, head, device, q_of(i)))
                .collect();
            let solo = pool
                .run_step(solo_units, &store, &decoder, &SpanTracer::disabled())
                .unwrap();
            let group = WorkUnit {
                unit: 0,
                head,
                device,
                prefix_blocks: run,
                sharers: seqs
                    .iter()
                    .enumerate()
                    .map(|(i, &seq)| UnitSharer {
                        seq,
                        q_block: q_of(i),
                    })
                    .collect(),
            };
            let grouped = pool
                .run_step(vec![group], &store, &decoder, &SpanTracer::disabled())
                .unwrap();
            assert_eq!(grouped[0].partials.len(), seqs.len());
            let mut solo_ops = FastDequantOps::default();
            for (i, r) in solo.iter().enumerate() {
                assert_eq!(
                    grouped[0].partials[i].clone().finish(),
                    r.partials[0].clone().finish(),
                    "head {head}, sharer {i}"
                );
                solo_ops += r.ops;
            }
            assert!(
                grouped[0].ops.total() < solo_ops.total(),
                "head {head}: cascade walk must dedup dequant work"
            );
        }
    }

    #[test]
    fn misrouted_unit_is_rejected_with_typed_error() {
        let (decoder, store, mut units) = setup(2);
        // Head 0 lives on device 0 under head-modulo; claim device 1.
        units[0].device = DeviceId(1);
        for workers in [0usize, 2] {
            let pool = WorkerPool::new(workers, 2);
            let err = pool
                .run_step(units.clone(), &store, &decoder, &SpanTracer::disabled())
                .unwrap_err();
            assert_eq!(
                err,
                ServeError::Misrouted {
                    seq: units[0].primary_seq(),
                    head: 0,
                    routed: DeviceId(1),
                    owner: DeviceId(0),
                },
                "workers={workers}"
            );
            // The failed step left no stale results behind: a correct
            // batch on the SAME pool produces a clean, complete step.
            let fixed = {
                let mut u = units.clone();
                u[0].device = DeviceId(0);
                u
            };
            let results = pool
                .run_step(fixed, &store, &decoder, &SpanTracer::disabled())
                .unwrap();
            assert_eq!(results.len(), units.len());
            for (i, r) in results.iter().enumerate() {
                assert_eq!(r.unit, i, "workers={workers}");
            }
        }
    }

    #[test]
    fn pool_survives_multiple_steps_and_store_regains_sole_ownership() {
        let (decoder, store, units) = setup(2);
        let mut store = store;
        let pool = WorkerPool::new(2, 2);
        for _ in 0..3 {
            let _ = pool
                .run_step(units.clone(), &store, &decoder, &SpanTracer::disabled())
                .unwrap();
            // All task Arcs were dropped before results were sent.
            while Arc::strong_count(&store) > 1 {
                std::thread::yield_now();
            }
            assert!(Arc::get_mut(&mut store).is_some());
        }
    }
}
