#![warn(missing_docs)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

//! # bd-serve — the tensor-parallel batched decode runtime
//!
//! Where `bd-llm` *prices* serving analytically, this crate *executes* it:
//! many concurrent sequences decode real values through the PR-1 fused
//! flat-layout kernel over paged packed KV storage **sharded across
//! simulated devices** — the paper's "Page" serving setting (§VI-A,
//! Fig. 13) scaled out tensor-parallel, as a running system rather than a
//! cost model.
//!
//! Three layers compose, all placement-aware:
//!
//! * **Storage** — [`bd_kvcache::ShardedKvStore`]: KV heads partitioned
//!   over per-device [`bd_kvcache::PagedKvStore`] page arenas (head-modulo
//!   or head-contiguous [`bd_kvcache::Placement`]), each device with its
//!   own deterministic page pool, capacity, and eviction accounting, under
//!   the sharding invariant (every head's bytes identical to the
//!   single-device layout).
//! * **Execution** — [`workers::WorkerPool`]: persistent **device-pinned**
//!   worker groups that fan `(sequence, kv-head, device)` work units each
//!   decode step. Each unit runs [`bd_core::BitDecoder::attend_head_partial`]
//!   — the per-head body of the single-sequence decode path, un-normalized
//!   — against only its own device's arena, so batch-, head-, and
//!   device-level parallelism compose with the kernel's split-K sharding
//!   while results stay **bitwise identical** to per-sequence
//!   [`bd_core::BitDecoder::decode`], at any worker *and device* count.
//! * **Scheduling** — [`session::ServeSession`]: submit / step / stream,
//!   plus trace-driven arrivals ([`session::ServeSession::submit_at`]) so
//!   sequences join mid-run when pages free up. Admission runs under a
//!   pluggable [`scheduler::SchedulerPolicy`] — [`scheduler::Fcfs`]
//!   (default), [`scheduler::FcfsPreempt`] (under page pressure the
//!   youngest running sequence swaps out to a host blob and re-queues at
//!   the front, so due arrivals make progress), or
//!   [`scheduler::ShortestRemainingFirst`] — always reserving each
//!   request's full prompt + generation budget on every device, so a
//!   running sequence never OOMs mid-decode. Every step re-forms the
//!   batch, **merges each head's device partials** through
//!   `OnlineSoftmax::merge` — the simulated all-reduce, exact by
//!   construction — and reports [`session::ServeMetrics`] (aggregate
//!   KV-tokens/s, fast-dequant telemetry, per-device utilization and page
//!   occupancy, preemption/swap counters, and the analytic price of the
//!   step's compute, its ring-all-reduce interconnect traffic, and its
//!   swap traffic over a PCIe-class host link).
//!
//! A fourth concern cuts across all three: **resilience**. A seeded
//! [`faults::FaultPlan`] injects device loss, swap-blob corruption,
//! transient interconnect failures, and forced page-pool exhaustion at
//! chosen decode steps; the session degrades and recovers — placement
//! rebuild with recompute-from-prompt re-admission, checksum-rejected
//! blobs recomputed, priced bounded-backoff retries, typed
//! [`session::AdmissionError::Backpressure`] rejections — without ever
//! changing *which* tokens a completed stream carries, only *when* they
//! arrive.
//!
//! A fifth concern is **observability** ([`bd_obs`], re-exported here):
//! [`session::ServeSession::with_obs`] arms span tracing (exportable as a
//! Perfetto-loadable Chrome trace over dual wall/modeled timelines), a
//! structured JSONL event log, and per-request lifecycle tracking whose
//! TTFT/TBT/queue-wait/goodput distributions surface in
//! [`session::ServeSummary::slo`]. Everything defaults off, and the
//! disabled instruments cost a branch or one relaxed atomic load per
//! would-be record, so the hot path keeps them plumbed unconditionally.
//!
//! The driver supplies per-sequence behaviour through
//! [`model::SequenceModel`] — the stand-in for the transformer's QKV
//! projections and sampling. [`model::SynthSequence`] is the deterministic
//! implementation used by the demo, benches, and property tests;
//! [`model::replay_contiguous`] replays a request on a contiguous cache
//! through `BitDecoder::decode` to furnish the bitwise ground truth.
//!
//! ```
//! use bd_core::{AttentionConfig, BitDecoder};
//! use bd_gpu_sim::GpuArch;
//! use bd_kvcache::{Partitioning, QuantScheme};
//! use bd_serve::{ServeConfig, ServeSession, SynthSequence};
//!
//! let attn = AttentionConfig::gqa(4, 2, 16);
//! let dec = BitDecoder::builder(GpuArch::rtx4090())
//!     .attention(attn)
//!     .scheme(QuantScheme::kc4())
//!     .paged(true)
//!     .build();
//! let config = ServeConfig::new(256, 64, 2, 8).with_devices(2, Partitioning::HeadModulo);
//! let mut session = ServeSession::new(dec, config);
//! let id = session
//!     .submit(Box::new(SynthSequence::new(attn, 7, 40, 3)))
//!     .unwrap();
//! let summary = session.run_to_completion();
//! assert_eq!(summary.completed, 1);
//! assert_eq!(summary.devices, 2);
//! assert_eq!(session.stream(id).unwrap().len(), 3);
//! ```

pub mod faults;
pub mod model;
pub mod scheduler;
pub mod session;
pub mod workers;

pub use faults::{FaultEvent, FaultInjector, FaultKind, FaultPlan};
pub use model::{replay_contiguous, SequenceModel, StepKv, SynthSequence};
pub use scheduler::{
    Fcfs, FcfsPreempt, QueuedRequest, RunningSeq, SchedulerPolicy, ShortestRemainingFirst,
};
pub use session::{
    AdmissionError, DeviceStepMetrics, RequestId, ServeConfig, ServeMetrics, ServeSession,
    ServeSummary,
};
pub use workers::{ServeError, WorkerPool};

pub use bd_obs::{
    ClockDomain, EventLog, LifecycleTracker, LogHistogram, MetricsRegistry, ObsConfig, Quantiles,
    SloSummary, SpanTracer,
};
