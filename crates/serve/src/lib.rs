#![warn(missing_docs)]

//! # bd-serve — the batched decode runtime
//!
//! Where `bd-llm` *prices* serving analytically, this crate *executes* it:
//! many concurrent sequences decode real values through the PR-1 fused
//! flat-layout kernel over paged packed KV storage — the paper's "Page"
//! serving setting (§VI-A, Fig. 13) as a running system rather than a cost
//! model.
//!
//! Three layers compose:
//!
//! * **Storage** — [`bd_kvcache::PagedKvStore`]: physical page arenas
//!   holding packed low-bit K/V blocks plus each sequence's FP16 residual
//!   window, addressed through [`bd_kvcache::PagedPool`] page tables with a
//!   contiguous-equivalence invariant (paged content is bitwise identical
//!   to a contiguous cache with the same history).
//! * **Execution** — [`workers::WorkerPool`]: a persistent pool that fans
//!   `(sequence, kv-head)` work units across threads each decode step.
//!   Each unit runs [`bd_core::BitDecoder::attend_head`] — the exact
//!   per-head body of the single-sequence decode path — so batch- and
//!   head-level parallelism compose with the kernel's own split-K sharding
//!   while results stay **bitwise identical** to per-sequence
//!   [`bd_core::BitDecoder::decode`], at any worker count.
//! * **Scheduling** — [`session::ServeSession`]: submit / step / stream.
//!   Requests admit FCFS against the page pool (prompt + generation budget
//!   reserved up front, so a running sequence never OOMs mid-decode), every
//!   step re-forms the batch, finished sequences are sealed and evicted so
//!   their pages recycle, and each step reports [`session::ServeMetrics`]
//!   (aggregate KV-tokens/s, fast-dequant telemetry, pool utilization, and
//!   the analytic model's price for the same step shape).
//!
//! The driver supplies per-sequence behaviour through
//! [`model::SequenceModel`] — the stand-in for the transformer's QKV
//! projections and sampling. [`model::SynthSequence`] is the deterministic
//! implementation used by the demo, benches, and property tests;
//! [`model::replay_contiguous`] replays a request on a contiguous cache
//! through `BitDecoder::decode` to furnish the bitwise ground truth.
//!
//! ```
//! use bd_core::{AttentionConfig, BitDecoder};
//! use bd_gpu_sim::GpuArch;
//! use bd_kvcache::QuantScheme;
//! use bd_serve::{ServeConfig, ServeSession, SynthSequence};
//!
//! let attn = AttentionConfig::gqa(4, 2, 16);
//! let dec = BitDecoder::builder(GpuArch::rtx4090())
//!     .attention(attn)
//!     .scheme(QuantScheme::kc4())
//!     .paged(true)
//!     .build();
//! let mut session = ServeSession::new(dec, ServeConfig::new(256, 64, 2, 8));
//! let id = session
//!     .submit(Box::new(SynthSequence::new(attn, 7, 40, 3)))
//!     .unwrap();
//! let summary = session.run_to_completion();
//! assert_eq!(summary.completed, 1);
//! assert_eq!(session.stream(id).unwrap().len(), 3);
//! ```

pub mod model;
pub mod session;
pub mod workers;

pub use model::{replay_contiguous, SequenceModel, StepKv, SynthSequence};
pub use session::{RequestId, ServeConfig, ServeMetrics, ServeSession, ServeSummary, SubmitError};
pub use workers::WorkerPool;
