//! Deterministic fault injection for the serve runtime.
//!
//! A [`FaultPlan`] is a schedule of [`FaultEvent`]s — *what* breaks and at
//! *which* decode step — built explicitly or derived from a seed
//! ([`FaultPlan::seeded`]), so every chaos run is exactly reproducible.
//! [`ServeSession::with_faults`](crate::session::ServeSession::with_faults)
//! wraps the plan in a [`FaultInjector`], which the session consults as it
//! steps; the injector consumes each event the first time it is due, so a
//! fault fires exactly once no matter how the step clock jumps (idle
//! fast-forward included).
//!
//! The four fault kinds exercise the four recovery paths the runtime
//! guarantees (see `docs/ARCHITECTURE.md` § Faults & recovery):
//! device loss → placement rebuild + recompute-from-prompt, swap blob
//! corruption → checksum rejection + recompute, transient link failure →
//! priced bounded-backoff retries, pool exhaustion → typed admission
//! backpressure. None of them may ever change *which* tokens a completed
//! stream carries — only *when* they arrive.

/// What breaks. See the [module docs](self) for the recovery path each
/// kind exercises.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// A whole device dies: every KV page it held is gone. The session
    /// quarantines it, rebuilds the [`Placement`](bd_kvcache::Placement)
    /// over the survivors, and recovers every affected sequence by
    /// recompute-from-prompt re-admission at the front of the queue.
    DeviceLoss {
        /// Which device to kill (taken modulo the live device count).
        device: usize,
    },
    /// The next swap-in's host blob has suffered bit rot: one payload bit
    /// flips, the [`SwappedSeq`](bd_kvcache::SwappedSeq) checksum rejects
    /// the blob, and the sequence falls back to recompute-from-prompt.
    /// Carries forward: fires at the first swap-in at or after its step.
    CorruptSwap {
        /// Which payload bit to flip.
        bit: u64,
    },
    /// Transient interconnect failures: the step's all-reduce transfer
    /// fails `failures` times before succeeding. Each retry re-pays the
    /// transfer and a bounded exponential backoff on the modeled
    /// interconnect clock.
    TransientLink {
        /// Failed attempts before the transfer goes through.
        failures: u32,
    },
    /// Forced page-pool exhaustion: `pages` pages per device are seized
    /// for `hold_steps` steps (`None` = for the rest of the run), driving
    /// admission backpressure and, for permanent seizures, typed
    /// [`AdmissionError::Backpressure`](crate::session::AdmissionError)
    /// rejections.
    PoolExhaustion {
        /// Pages to seize per device (clamped to what is free).
        pages: usize,
        /// Steps to hold them, or `None` to hold until the run ends.
        hold_steps: Option<usize>,
    },
}

/// One fault scheduled at a decode step.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultEvent {
    /// The decode step at (or, if the clock jumps past it, after) which
    /// the fault fires.
    pub step: usize,
    /// What breaks.
    pub kind: FaultKind,
}

/// A deterministic schedule of faults. Build one explicitly with the
/// chainable constructors or derive one from a seed with
/// [`FaultPlan::seeded`]; either way the schedule is a pure value — same
/// plan, same chaos, every run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

/// SplitMix64: the statelessly seedable generator used across the repo's
/// synthetic data paths.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl FaultPlan {
    /// An empty plan (no faults).
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Adds one event to the schedule.
    #[must_use]
    pub fn at(mut self, step: usize, kind: FaultKind) -> Self {
        self.events.push(FaultEvent { step, kind });
        self.events.sort_by_key(|e| e.step);
        self
    }

    /// Schedules a whole-device loss.
    #[must_use]
    pub fn device_loss(self, step: usize, device: usize) -> Self {
        self.at(step, FaultKind::DeviceLoss { device })
    }

    /// Schedules swap-blob corruption (fires at the first swap-in at or
    /// after `step`).
    #[must_use]
    pub fn corrupt_swap(self, step: usize, bit: u64) -> Self {
        self.at(step, FaultKind::CorruptSwap { bit })
    }

    /// Schedules transient interconnect failures.
    #[must_use]
    pub fn transient_link(self, step: usize, failures: u32) -> Self {
        self.at(step, FaultKind::TransientLink { failures })
    }

    /// Schedules forced page-pool exhaustion.
    #[must_use]
    pub fn pool_exhaustion(self, step: usize, pages: usize, hold_steps: Option<usize>) -> Self {
        self.at(step, FaultKind::PoolExhaustion { pages, hold_steps })
    }

    /// The scheduled events, ordered by step.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// `true` when no faults are scheduled.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// A pseudo-random schedule of `n` faults over `steps` decode steps of
    /// a `devices`-device session, derived from `seed` by SplitMix64 —
    /// same seed, same schedule, every run. All four fault kinds appear;
    /// seized pages from generated exhaustion events always release after
    /// a bounded hold, so a seeded plan never starves the run.
    pub fn seeded(seed: u64, n: usize, steps: usize, devices: usize) -> Self {
        let mut s = seed;
        let mut plan = FaultPlan::new();
        for _ in 0..n {
            let step = (splitmix64(&mut s) as usize) % steps.max(1);
            let kind = match splitmix64(&mut s) % 4 {
                0 => FaultKind::DeviceLoss {
                    device: (splitmix64(&mut s) as usize) % devices.max(1),
                },
                1 => FaultKind::CorruptSwap {
                    bit: splitmix64(&mut s),
                },
                2 => FaultKind::TransientLink {
                    failures: 1 + (splitmix64(&mut s) % 3) as u32,
                },
                _ => FaultKind::PoolExhaustion {
                    pages: 1 + (splitmix64(&mut s) as usize) % 4,
                    hold_steps: Some(1 + (splitmix64(&mut s) as usize) % 6),
                },
            };
            plan.events.push(FaultEvent { step, kind });
        }
        plan.events.sort_by_key(|e| e.step);
        plan
    }
}

/// Consumes a [`FaultPlan`] as the session's step clock advances. Each
/// query takes (and removes) the matching events whose step is due —
/// `step ≤ now` — so faults scheduled inside an idle gap still fire, once,
/// when the clock next lands past them.
#[derive(Clone, Debug, Default)]
pub struct FaultInjector {
    events: Vec<FaultEvent>,
    injected: usize,
}

impl FaultInjector {
    /// An injector over `plan`'s schedule.
    pub fn new(plan: FaultPlan) -> Self {
        FaultInjector {
            events: plan.events,
            injected: 0,
        }
    }

    /// Events already fired.
    pub fn injected(&self) -> usize {
        self.injected
    }

    /// `true` when every scheduled event has fired.
    pub fn is_drained(&self) -> bool {
        self.events.is_empty()
    }

    /// Takes the earliest due event for which `f` returns `Some`.
    fn take_due<T>(&mut self, now: usize, f: impl Fn(FaultKind) -> Option<T>) -> Option<T> {
        let pos = self
            .events
            .iter()
            .position(|e| e.step <= now && f(e.kind).is_some())?;
        let ev = self.events.remove(pos);
        self.injected += 1;
        f(ev.kind)
    }

    /// Takes one due device-loss event, returning the device to kill. The
    /// session loops this until `None` at each step top (losing two
    /// devices in one step is two successive rebuilds).
    pub fn take_device_loss(&mut self, now: usize) -> Option<usize> {
        self.take_due(now, |k| match k {
            FaultKind::DeviceLoss { device } => Some(device),
            _ => None,
        })
    }

    /// Takes one due swap-corruption event, returning the bit to flip.
    /// Called at swap-in time, so a corruption scheduled between swap-ins
    /// waits for the next one.
    pub fn take_swap_corruption(&mut self, now: usize) -> Option<u64> {
        self.take_due(now, |k| match k {
            FaultKind::CorruptSwap { bit } => Some(bit),
            _ => None,
        })
    }

    /// Takes **all** due transient-link events, returning the total failed
    /// attempts to price into this step's interconnect time, and how many
    /// events that covered.
    pub fn take_transient_failures(&mut self, now: usize) -> (u32, usize) {
        let mut failures = 0;
        let mut events = 0;
        while let Some(f) = self.take_due(now, |k| match k {
            FaultKind::TransientLink { failures } => Some(failures),
            _ => None,
        }) {
            failures += f;
            events += 1;
        }
        (failures, events)
    }

    /// Takes one due pool-exhaustion event, returning `(pages,
    /// hold_steps)`.
    pub fn take_pool_exhaustion(&mut self, now: usize) -> Option<(usize, Option<usize>)> {
        self.take_due(now, |k| match k {
            FaultKind::PoolExhaustion { pages, hold_steps } => Some((pages, hold_steps)),
            _ => None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_fire_once_and_in_order() {
        let plan = FaultPlan::new()
            .device_loss(5, 1)
            .transient_link(3, 2)
            .transient_link(7, 1);
        let mut inj = FaultInjector::new(plan);
        assert_eq!(inj.take_device_loss(4), None);
        assert_eq!(inj.take_transient_failures(4), (2, 1));
        // Jumping the clock past both remaining events delivers both.
        assert_eq!(inj.take_device_loss(10), Some(1));
        assert_eq!(inj.take_device_loss(10), None);
        assert_eq!(inj.take_transient_failures(10), (1, 1));
        assert_eq!(inj.injected(), 3);
        assert!(inj.is_drained());
    }

    #[test]
    fn corruption_carries_forward_to_the_next_query() {
        let mut inj = FaultInjector::new(FaultPlan::new().corrupt_swap(2, 0xBEEF));
        assert_eq!(inj.take_swap_corruption(1), None);
        // First query at or after step 2 gets it, however late.
        assert_eq!(inj.take_swap_corruption(40), Some(0xBEEF));
        assert_eq!(inj.take_swap_corruption(41), None);
    }

    #[test]
    fn seeded_plans_are_reproducible_and_cover_kinds() {
        let a = FaultPlan::seeded(7, 32, 100, 4);
        let b = FaultPlan::seeded(7, 32, 100, 4);
        assert_eq!(a, b);
        assert_ne!(a, FaultPlan::seeded(8, 32, 100, 4));
        let kinds: Vec<_> = a.events().iter().map(|e| e.kind).collect();
        assert!(kinds
            .iter()
            .any(|k| matches!(k, FaultKind::DeviceLoss { .. })));
        assert!(kinds
            .iter()
            .any(|k| matches!(k, FaultKind::CorruptSwap { .. })));
        assert!(kinds
            .iter()
            .any(|k| matches!(k, FaultKind::TransientLink { .. })));
        assert!(kinds.iter().any(|k| matches!(
            k,
            FaultKind::PoolExhaustion {
                hold_steps: Some(_),
                ..
            }
        )));
        // Ordered by step, and all inside the horizon.
        assert!(a.events().windows(2).all(|w| w[0].step <= w[1].step));
        assert!(a.events().iter().all(|e| e.step < 100));
    }
}
