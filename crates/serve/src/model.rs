//! Per-sequence drivers: the stand-in for everything *around* attention.
//!
//! The serve runtime owns KV storage and attention execution; what it does
//! **not** own is the transformer around them — QKV projections, sampling,
//! detokenization. A [`SequenceModel`] supplies exactly that boundary: the
//! prompt K/V, the per-step query, and the mapping from an attention output
//! to the emitted token plus the K/V rows that token appends.
//!
//! [`SynthSequence`] is the deterministic synthetic implementation: every
//! value is a pure function of `(seed, step, position)` **and the previous
//! attention output** (the next token's K/V depend on the emitted token),
//! so any numeric divergence anywhere in the paged batched pipeline
//! propagates into visibly different token streams. That makes the
//! bitwise-equivalence tests against [`replay_contiguous`] sharp.

use bd_core::{BitDecoder, QueryHeads};
use bd_kvcache::TokenMatrix;

/// One decode step's product: the emitted token and the K/V rows (one per
/// KV head) it appends to the cache.
#[derive(Clone, Debug, PartialEq)]
pub struct StepKv {
    /// The emitted token.
    pub token: u32,
    /// New K row per KV head (`heads_kv × head_dim`).
    pub k: Vec<Vec<f32>>,
    /// New V row per KV head.
    pub v: Vec<Vec<f32>>,
}

/// Drives one sequence through the serve runtime — the request-side model
/// boundary (projections + sampling stand-in).
///
/// The runtime calls `prompt` once at admission, then alternates
/// `query(step)` → attention → `advance(step, output)` for
/// `gen_tokens()` steps, appending the returned K/V after each step.
pub trait SequenceModel: Send {
    /// Prompt K/V, one `tokens × head_dim` matrix per KV head.
    fn prompt(&mut self) -> (Vec<TokenMatrix>, Vec<TokenMatrix>);
    /// Prompt length in tokens (admission control reads this before
    /// deciding to call [`SequenceModel::prompt`]).
    fn prompt_tokens(&self) -> usize;
    /// Number of tokens to generate.
    fn gen_tokens(&self) -> usize;
    /// The single-token query (`heads_q × head_dim`) for generation step
    /// `step` (0-based).
    fn query(&mut self, step: usize) -> QueryHeads;
    /// Consumes step `step`'s attention output (`heads_q × head_dim`),
    /// returning the emitted token and the K/V rows to append.
    fn advance(&mut self, step: usize, output: &QueryHeads) -> StepKv;
    /// Restores the model to its pre-decode state so the runtime can
    /// replay the request from its prompt — the hook
    /// recompute-from-prompt fault recovery uses. After `reset`, the
    /// `prompt` → `query`/`advance` cycle must reproduce the original
    /// stream exactly. Stateless models keep the default no-op; stateful
    /// ones (like [`SynthSequence`], whose appended K/V chain through the
    /// previously emitted token) must restore their initial state or
    /// recovered streams will diverge.
    fn reset(&mut self) {}
}

/// Deterministic synthetic sequence: prompt, queries, and next-token K/V
/// are SplitMix64-hashed functions of the seed — and the K/V additionally
/// of the previously emitted token, so the token stream is sensitive to
/// every bit of every attention output that preceded it.
#[derive(Clone, Debug)]
pub struct SynthSequence {
    attn: bd_core::AttentionConfig,
    /// Seeds the prompt K/V (shared-prompt siblings share this).
    prompt_seed: u64,
    /// Seeds queries and next-token K/V (distinct per sibling).
    seed: u64,
    prompt_len: usize,
    gen: usize,
    last_token: u32,
}

/// Domain tags separating the hash streams.
const TAG_PROMPT_K: u64 = 0x11;
const TAG_PROMPT_V: u64 = 0x22;
const TAG_QUERY: u64 = 0x33;
const TAG_STEP_K: u64 = 0x44;
const TAG_STEP_V: u64 = 0x55;

/// SplitMix64-style hash of `(seed, tag, i, j)` to an f32 in `[-2, 2)`.
fn hval(seed: u64, tag: u64, i: u64, j: u64) -> f32 {
    let mut z = seed
        ^ tag.wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ i.wrapping_mul(0xBF58_476D_1CE4_E5B9)
        ^ j.wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 30;
    z = z.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z ^= z >> 27;
    z = z.wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    ((z >> 32) as u32 % 4096) as f32 / 1024.0 - 2.0
}

/// Folds an attention output into a token id (the sampling stand-in): a
/// rotate-xor over the raw f32 bit patterns, so two outputs differing in
/// any single bit almost surely emit different tokens.
pub(crate) fn hash_output(output: &QueryHeads) -> u32 {
    let mut h = 0x9E37_79B9u32;
    for row in output {
        for &x in row {
            h = h.rotate_left(5) ^ x.to_bits();
            h = h.wrapping_mul(0x0100_01B3);
        }
    }
    h
}

impl SynthSequence {
    /// A sequence with `prompt_len` prompt tokens and `gen` tokens to
    /// generate, all values derived from `seed`.
    pub fn new(attn: bd_core::AttentionConfig, seed: u64, prompt_len: usize, gen: usize) -> Self {
        SynthSequence {
            attn,
            prompt_seed: seed,
            seed,
            prompt_len,
            gen,
            last_token: 0,
        }
    }

    /// A shared-prompt sibling: the prompt K/V derive from `prompt_seed`
    /// (identical across every sibling built from it — the contract
    /// `ServeSession::submit_forked` relies on) while queries and
    /// generated K/V derive from `gen_seed`, so siblings decode distinct
    /// continuations off one shared prefix.
    pub fn forked(
        attn: bd_core::AttentionConfig,
        prompt_seed: u64,
        gen_seed: u64,
        prompt_len: usize,
        gen: usize,
    ) -> Self {
        SynthSequence {
            attn,
            prompt_seed,
            seed: gen_seed,
            prompt_len,
            gen,
            last_token: 0,
        }
    }
}

impl SequenceModel for SynthSequence {
    fn prompt(&mut self) -> (Vec<TokenMatrix>, Vec<TokenMatrix>) {
        let d = self.attn.head_dim;
        let make = |tag: u64, head: usize, seed: u64, len: usize| {
            TokenMatrix::from_fn(len, d, |t, c| {
                hval(seed, tag ^ (head as u64) << 8, t as u64, c as u64)
            })
        };
        let k = (0..self.attn.heads_kv)
            .map(|h| make(TAG_PROMPT_K, h, self.prompt_seed, self.prompt_len))
            .collect();
        let v = (0..self.attn.heads_kv)
            .map(|h| make(TAG_PROMPT_V, h, self.prompt_seed, self.prompt_len))
            .collect();
        (k, v)
    }

    fn prompt_tokens(&self) -> usize {
        self.prompt_len
    }

    fn gen_tokens(&self) -> usize {
        self.gen
    }

    fn query(&mut self, step: usize) -> QueryHeads {
        (0..self.attn.heads_q)
            .map(|h| {
                (0..self.attn.head_dim)
                    .map(|c| {
                        hval(
                            self.seed,
                            TAG_QUERY ^ (h as u64) << 8,
                            step as u64,
                            c as u64,
                        )
                    })
                    .collect()
            })
            .collect()
    }

    fn advance(&mut self, step: usize, output: &QueryHeads) -> StepKv {
        let token = hash_output(output) ^ self.last_token.rotate_left(11);
        self.last_token = token;
        // The appended K/V depend on the token: divergence anywhere in the
        // pipeline cascades into all later cache contents.
        let kv_seed = self.seed ^ u64::from(token).wrapping_mul(0x2545_F491_4F6C_DD1D);
        let row = |tag: u64, h: usize| -> Vec<f32> {
            (0..self.attn.head_dim)
                .map(|c| hval(kv_seed, tag ^ (h as u64) << 8, step as u64, c as u64))
                .collect()
        };
        StepKv {
            token,
            k: (0..self.attn.heads_kv)
                .map(|h| row(TAG_STEP_K, h))
                .collect(),
            v: (0..self.attn.heads_kv)
                .map(|h| row(TAG_STEP_V, h))
                .collect(),
        }
    }

    fn reset(&mut self) {
        self.last_token = 0;
    }
}

/// Replays one request on a **contiguous** per-sequence cache through
/// [`BitDecoder::decode`] — the single-sequence ground truth the paged
/// batched runtime must reproduce bitwise. Returns the token stream.
///
/// # Panics
///
/// Panics if the decoder and model disagree on shapes.
pub fn replay_contiguous(decoder: &BitDecoder, model: &mut dyn SequenceModel) -> Vec<u32> {
    let attn = *decoder.attention();
    let codec = decoder.codec();
    let mut cache = decoder.new_cache(1);
    let (pk, pv) = model.prompt();
    assert_eq!(pk.len(), attn.heads_kv, "prompt head count");
    for h in 0..attn.heads_kv {
        cache
            .prefill(h, &pk[h], &pv[h], &codec)
            .unwrap_or_else(|e| panic!("prompt prefill: {e}"));
    }
    let mut tokens = Vec::with_capacity(model.gen_tokens());
    for step in 0..model.gen_tokens() {
        let q = model.query(step);
        let out = decoder
            .decode(std::slice::from_ref(&q), &cache)
            .unwrap_or_else(|e| panic!("contiguous decode: {e}"));
        let step_kv = model.advance(step, &out.outputs[0]);
        for h in 0..attn.heads_kv {
            cache
                .append_token(h, &step_kv.k[h], &step_kv.v[h], &codec)
                .unwrap_or_else(|e| panic!("token append: {e}"));
        }
        tokens.push(step_kv.token);
    }
    tokens
}

#[cfg(test)]
mod tests {
    use super::*;
    use bd_core::AttentionConfig;

    #[test]
    fn synth_sequences_are_deterministic() {
        let attn = AttentionConfig::gqa(4, 2, 16);
        let mut a = SynthSequence::new(attn, 9, 20, 4);
        let mut b = SynthSequence::new(attn, 9, 20, 4);
        assert_eq!(a.prompt(), b.prompt());
        assert_eq!(a.query(3), b.query(3));
        let out: QueryHeads = (0..4).map(|h| vec![h as f32 * 0.5; 16]).collect();
        assert_eq!(a.advance(0, &out), b.advance(0, &out));
    }

    #[test]
    fn advance_is_sensitive_to_single_bit_output_changes() {
        let attn = AttentionConfig::gqa(2, 1, 8);
        let mut m1 = SynthSequence::new(attn, 1, 4, 1);
        let mut m2 = SynthSequence::new(attn, 1, 4, 1);
        let out: QueryHeads = (0..2).map(|_| vec![1.0f32; 8]).collect();
        let mut tweaked = out.clone();
        tweaked[1][7] = f32::from_bits(tweaked[1][7].to_bits() ^ 1);
        let a = m1.advance(0, &out);
        let b = m2.advance(0, &tweaked);
        assert_ne!(a.token, b.token);
        assert_ne!(a.k, b.k);
    }

    #[test]
    fn seeds_decorrelate_sequences() {
        let attn = AttentionConfig::gqa(2, 1, 8);
        let mut a = SynthSequence::new(attn, 1, 10, 1);
        let mut b = SynthSequence::new(attn, 2, 10, 1);
        assert_ne!(a.prompt().0, b.prompt().0);
        assert_ne!(a.query(0), b.query(0));
    }
}
