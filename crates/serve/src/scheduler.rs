//! Pluggable admission/preemption policy for the serve scheduler.
//!
//! [`crate::session::ServeSession`] used to hard-code FCFS admission with
//! full prompt+generation reservation — correct, but one large request at
//! the queue head starves the whole pool (head-of-line blocking). This
//! module extracts the two decisions the admission loop makes into a
//! [`SchedulerPolicy`] trait, in the PagedAttention/SGLang tradition of
//! keeping scheduling a policy layer above paged storage:
//!
//! * **which queued request to try next** ([`SchedulerPolicy::pick_next`]),
//!   given read-only [`QueuedRequest`] views of the queue, and
//! * **whether to preempt a running sequence** when that request cannot be
//!   admitted for lack of pages ([`SchedulerPolicy::pick_victim`]), given
//!   [`RunningSeq`] views of the active batch in admission order.
//!
//! A preempted sequence is swapped out — its packed pages and FP16
//! residual window serialize into a host-side blob via
//! [`bd_kvcache::ShardedKvStore::swap_out`], freeing its pages on every
//! device — and re-queued **at the front** of the pending queue with its
//! model state intact. When it is admitted again the blob swaps back in
//! bitwise, so a preempted stream is indistinguishable from an
//! uninterrupted one (the property the serve proptests pin down).
//!
//! Three policies ship:
//!
//! * [`Fcfs`] — the previous behavior, and still the default: strict
//!   arrival order, never preempts. One big request at the head blocks
//!   everyone behind it until running sequences finish.
//! * [`FcfsPreempt`] — arrival order first, but when a request that has
//!   never run is blocked on pages it preempts the **youngest** running
//!   sequence (the one admitted most recently, vLLM-style last-in
//!   victim), repeatedly if necessary, and a request that stays blocked
//!   does not stall the pass — admission backfills later queued requests
//!   that do fit — so due arrivals always make progress. Swapped-out
//!   sequences never trigger further preemption when their swap-in is
//!   blocked — that guard is what prevents two sequences from thrashing
//!   each other's pages in alternate steps — and backfill is bounded by
//!   an aging rule: a swapped-out sequence blocked for
//!   [`FcfsPreempt::with_patience`] steps pauses further admissions until
//!   it fits, so sustained fresh load cannot starve it indefinitely.
//! * [`ShortestRemainingFirst`] — picks the queued request with the
//!   fewest remaining tokens to generate (ties broken FCFS), never
//!   preempts: small late arrivals overtake big queued requests without
//!   any swap traffic, at the price of delaying the big ones.

/// Read-only view of one queued request, handed to
/// [`SchedulerPolicy::pick_next`] in queue order.
#[derive(Clone, Copy, Debug)]
pub struct QueuedRequest {
    /// The request's session-assigned id (submission order).
    pub id: u64,
    /// Prompt tokens (already in the KV blob for a swapped-out request).
    pub prompt_tokens: usize,
    /// Tokens still to generate.
    pub remaining_tokens: usize,
    /// Pages admission must reserve **per device**.
    pub needed_pages: usize,
    /// `true` when the request ran before and was preempted: it resumes
    /// by swapping its KV blob back in rather than by prefilling.
    pub resumable: bool,
}

/// Read-only view of one running sequence, handed to
/// [`SchedulerPolicy::pick_victim`] in admission order (oldest first).
#[derive(Clone, Copy, Debug)]
pub struct RunningSeq {
    /// The request's session-assigned id.
    pub id: u64,
    /// The decode step at which this sequence was (most recently)
    /// admitted.
    pub admitted_step: usize,
    /// Tokens still to generate.
    pub remaining_tokens: usize,
    /// Pages preempting this sequence would actually free per device: its
    /// exclusively-held pages. Prefix pages shared with a forked relative
    /// survive the swap-out and are not counted.
    pub held_pages: usize,
}

/// An admission/preemption policy for [`crate::session::ServeSession`] —
/// see the [module docs](self) for the contract and the shipped policies.
pub trait SchedulerPolicy: Send {
    /// Short label for metrics/bench output.
    fn label(&self) -> &'static str;

    /// Index into `queue` of the next request to try admitting, or `None`
    /// to stop admitting this step. Called repeatedly within one step
    /// until it returns `None`, the batch cap is hit, or an admission
    /// fails without a victim.
    fn pick_next(&mut self, queue: &[QueuedRequest]) -> Option<usize>;

    /// `candidate` could not be admitted for lack of pages. Return the
    /// index into `running` (admission order, oldest first) of a sequence
    /// to preempt — swap out and re-queue at the front — after which the
    /// candidate is retried; or `None` to leave the candidate queued.
    ///
    /// `step` is the current decode step; sequences with
    /// `admitted_step == step` were admitted earlier in this same
    /// admission pass, and preempting one of them would let two requests
    /// steal the same pages back and forth within a single step —
    /// policies should leave them alone.
    fn pick_victim(
        &mut self,
        candidate: &QueuedRequest,
        running: &[RunningSeq],
        step: usize,
    ) -> Option<usize>;

    /// `blocked` stayed blocked (no pages, no victim) at decode step
    /// `step`: should the admission pass keep considering **other** queued
    /// requests? `false` (the default) preserves strict queue-order
    /// blocking: the head waits and everything waits behind it. `true`
    /// lets the scheduler backfill — later requests that do fit
    /// (typically small ones behind a big blocked or swapped-out head)
    /// admit into the leftover pages, so due arrivals keep making
    /// progress. The blocked candidate keeps its queue position either
    /// way. Stateful policies use this hook to **age** chronically
    /// blocked requests: answering `false` after enough blocked steps
    /// pauses admissions so the pool drains back to them.
    ///
    /// Note the hook is only consulted on steps whose admission pass
    /// reaches the request — a full batch (or an earlier `false`) skips
    /// it entirely — so "blocked steps" must be counted from these calls,
    /// never inferred from step gaps.
    fn continue_after_block(&mut self, blocked: &QueuedRequest, step: usize) -> bool {
        let _ = (blocked, step);
        false
    }

    /// A previously preempted request swapped back in. This is the ground
    /// truth an aging policy needs to close a starvation episode —
    /// absence from `continue_after_block` calls is **not** evidence of a
    /// resume (batch-full steps never consult the policy at all).
    fn on_resumed(&mut self, id: u64) {
        let _ = id;
    }
}

impl<P: SchedulerPolicy + ?Sized> SchedulerPolicy for Box<P> {
    fn label(&self) -> &'static str {
        (**self).label()
    }

    fn pick_next(&mut self, queue: &[QueuedRequest]) -> Option<usize> {
        (**self).pick_next(queue)
    }

    fn pick_victim(
        &mut self,
        candidate: &QueuedRequest,
        running: &[RunningSeq],
        step: usize,
    ) -> Option<usize> {
        (**self).pick_victim(candidate, running, step)
    }

    fn continue_after_block(&mut self, blocked: &QueuedRequest, step: usize) -> bool {
        (**self).continue_after_block(blocked, step)
    }

    fn on_resumed(&mut self, id: u64) {
        (**self).on_resumed(id)
    }
}

/// Strict first-come-first-served admission, never preempting — the
/// original serve-loop behavior and the session default.
#[derive(Clone, Copy, Debug, Default)]
pub struct Fcfs;

impl SchedulerPolicy for Fcfs {
    fn label(&self) -> &'static str {
        "fcfs"
    }

    fn pick_next(&mut self, queue: &[QueuedRequest]) -> Option<usize> {
        (!queue.is_empty()).then_some(0)
    }

    fn pick_victim(
        &mut self,
        _candidate: &QueuedRequest,
        _running: &[RunningSeq],
        _step: usize,
    ) -> Option<usize> {
        None
    }
}

/// Aging state for one chronically blocked swapped-out sequence.
#[derive(Clone, Copy, Debug)]
struct Starved {
    id: u64,
    /// Last decode step a block was counted at (blocks within one step's
    /// admission pass count once).
    last_step: usize,
    /// Distinct decode steps the sequence has been blocked for.
    blocked_steps: usize,
}

/// FCFS admission with last-in preemption under page pressure: a blocked
/// request that has never run evicts the youngest running sequence (swap
/// out, re-queue at front) until it fits. Swapped-out requests waiting to
/// resume never preempt — see the [module docs](self) for why that guard
/// matters — and blocked requests don't stall the pass: admission
/// backfills later arrivals that fit.
///
/// Backfill alone would let a steady stream of fresh requests starve a
/// parked swapped-out sequence forever (each newcomer fits the pages the
/// victim needs, so its swap-in never does). The policy therefore
/// **ages** the blocked resumable it is tracking: after
/// [`FcfsPreempt::with_patience`] distinct blocked steps (default 8) it
/// stops backfilling past it, pausing admissions until draining
/// sequences return enough pages for the swap-in — a bounded wait, since
/// every running sequence holds its full generation budget.
#[derive(Clone, Copy, Debug)]
pub struct FcfsPreempt {
    patience: usize,
    starved: Option<Starved>,
}

impl FcfsPreempt {
    /// Default blocked-step budget before admissions pause for a starved
    /// swapped-out sequence.
    pub const DEFAULT_PATIENCE: usize = 8;

    /// Overrides the aging threshold: a swapped-out sequence blocked for
    /// `patience` distinct decode steps stops admissions until it fits.
    ///
    /// # Panics
    ///
    /// Panics if `patience` is zero (the policy would never backfill).
    pub fn with_patience(patience: usize) -> Self {
        assert!(patience > 0, "patience must be positive");
        FcfsPreempt {
            patience,
            starved: None,
        }
    }
}

impl Default for FcfsPreempt {
    fn default() -> Self {
        FcfsPreempt::with_patience(FcfsPreempt::DEFAULT_PATIENCE)
    }
}

impl SchedulerPolicy for FcfsPreempt {
    fn label(&self) -> &'static str {
        "fcfs-preempt"
    }

    fn pick_next(&mut self, queue: &[QueuedRequest]) -> Option<usize> {
        (!queue.is_empty()).then_some(0)
    }

    fn pick_victim(
        &mut self,
        candidate: &QueuedRequest,
        running: &[RunningSeq],
        step: usize,
    ) -> Option<usize> {
        if candidate.resumable {
            // A swapped-out sequence waits for pages instead of grabbing
            // them back: preempting on its behalf would thrash.
            return None;
        }
        // Youngest victim = the last running sequence not admitted within
        // this very admission pass.
        running.iter().rposition(|r| r.admitted_step < step)
    }

    fn continue_after_block(&mut self, blocked: &QueuedRequest, step: usize) -> bool {
        // Without backfill a swapped-out sequence parked at the queue head
        // would re-create the head-of-line blocking this policy exists to
        // break — everything behind it would stall until its swap-in
        // fits. But unbounded backfill starves that sequence under
        // sustained load, so the **oldest** (lowest-id) parked resumable
        // is aged: once its patience runs out, stop admitting past it.
        // The tracker is cleared only by [`SchedulerPolicy::on_resumed`] —
        // the session's explicit resume signal. Step gaps mean nothing
        // here: batch-full steps (and passes cut short by an earlier
        // pause) never consult this hook at all, so inferring a resume
        // from silence would reset the count under exactly the sustained
        // load the bound exists for.
        if !blocked.resumable {
            return true;
        }
        let fresh_episode = Starved {
            id: blocked.id,
            last_step: step,
            blocked_steps: 1,
        };
        match &mut self.starved {
            // The tracked starvee blocked again: count once per step.
            Some(s) if s.id == blocked.id => {
                if step > s.last_step {
                    s.blocked_steps += 1;
                    s.last_step = step;
                }
                s.blocked_steps < self.patience
            }
            // An older sequence than the tracked one is parked — newly
            // preempted victims land at the queue *front* and block first
            // each step, so without this arm every new victim would steal
            // the tracker and the oldest would never accumulate patience.
            Some(s) if blocked.id < s.id => {
                *s = fresh_episode;
                true
            }
            // A younger parked sequence: backfill past it; the tracker
            // stays on the oldest until `on_resumed` releases it.
            Some(_) => true,
            None => {
                self.starved = Some(fresh_episode);
                true
            }
        }
    }

    fn on_resumed(&mut self, id: u64) {
        if self.starved.is_some_and(|s| s.id == id) {
            self.starved = None;
        }
    }
}

/// Shortest-remaining-generation-first admission, never preempting. Ties
/// break FCFS (lowest id), so equal-length requests keep arrival order.
#[derive(Clone, Copy, Debug, Default)]
pub struct ShortestRemainingFirst;

impl SchedulerPolicy for ShortestRemainingFirst {
    fn label(&self) -> &'static str {
        "shortest-remaining-first"
    }

    fn pick_next(&mut self, queue: &[QueuedRequest]) -> Option<usize> {
        queue
            .iter()
            .enumerate()
            .min_by_key(|(_, q)| (q.remaining_tokens, q.id))
            .map(|(i, _)| i)
    }

    fn pick_victim(
        &mut self,
        _candidate: &QueuedRequest,
        _running: &[RunningSeq],
        _step: usize,
    ) -> Option<usize> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn queued(id: u64, remaining: usize, resumable: bool) -> QueuedRequest {
        QueuedRequest {
            id,
            prompt_tokens: 10,
            remaining_tokens: remaining,
            needed_pages: 1,
            resumable,
        }
    }

    fn running(id: u64, admitted_step: usize) -> RunningSeq {
        RunningSeq {
            id,
            admitted_step,
            remaining_tokens: 5,
            held_pages: 2,
        }
    }

    #[test]
    fn fcfs_picks_the_head_and_never_preempts() {
        let mut p = Fcfs;
        assert_eq!(p.pick_next(&[]), None);
        let q = [queued(3, 9, false), queued(4, 1, false)];
        assert_eq!(p.pick_next(&q), Some(0));
        assert_eq!(p.pick_victim(&q[0], &[running(0, 0)], 5), None);
    }

    #[test]
    fn fcfs_preempt_targets_youngest_but_spares_same_step_admits() {
        let mut p = FcfsPreempt::default();
        let q = queued(7, 4, false);
        // Youngest = rightmost in admission order…
        let active = [running(0, 0), running(1, 2), running(2, 3)];
        assert_eq!(p.pick_victim(&q, &active, 5), Some(2));
        // …unless it was admitted this very step.
        let active = [running(0, 0), running(1, 2), running(2, 5)];
        assert_eq!(p.pick_victim(&q, &active, 5), Some(1));
        // An all-fresh batch yields no victim.
        let active = [running(0, 5), running(1, 5)];
        assert_eq!(p.pick_victim(&q, &active, 5), None);
    }

    #[test]
    fn fcfs_preempt_never_preempts_for_a_swapped_request() {
        let mut p = FcfsPreempt::default();
        let q = queued(0, 4, true);
        assert_eq!(p.pick_victim(&q, &[running(9, 0)], 5), None);
    }

    #[test]
    fn backfill_flag_survives_boxing() {
        // The session stores policies as `Box<dyn SchedulerPolicy>`; the
        // Box forwarding impl must forward every method, including the
        // defaulted one (a missing forward silently reverts to the strict
        // default).
        let mut boxed: Box<dyn SchedulerPolicy> = Box::new(FcfsPreempt::default());
        assert!(boxed.continue_after_block(&queued(0, 4, false), 1));
        let mut strict: Box<dyn SchedulerPolicy> = Box::new(Fcfs);
        assert!(!strict.continue_after_block(&queued(0, 4, false), 1));
        assert!(!ShortestRemainingFirst.continue_after_block(&queued(0, 4, false), 1));
    }

    #[test]
    fn aging_pauses_backfill_after_patience_runs_out() {
        let mut p = FcfsPreempt::with_patience(3);
        let parked = queued(5, 10, true);
        // Fresh blocked candidates never pause the pass.
        assert!(p.continue_after_block(&queued(9, 2, false), 1));
        // The parked resumable gets `patience` distinct blocked steps…
        assert!(p.continue_after_block(&parked, 1));
        assert!(p.continue_after_block(&parked, 1), "same step counts once");
        assert!(p.continue_after_block(&parked, 2));
        // …then admissions pause for it.
        assert!(!p.continue_after_block(&parked, 3));
        assert!(!p.continue_after_block(&parked, 4));
        // A different resumable blocked at the same step sits behind the
        // tracked one and is backfilled past, not re-tracked.
        let mut q = FcfsPreempt::with_patience(2);
        assert!(q.continue_after_block(&parked, 1));
        assert!(q.continue_after_block(&queued(6, 10, true), 1));
        assert!(!q.continue_after_block(&parked, 2));
    }

    #[test]
    fn aging_tracks_the_oldest_victim_under_churn() {
        // Newly preempted victims block first each step (they park at the
        // queue front); they must not steal the tracker from the oldest
        // parked sequence, or the patience bound would never fire.
        let mut p = FcfsPreempt::with_patience(3);
        let oldest = queued(1, 10, true);
        assert!(p.continue_after_block(&queued(4, 10, true), 1));
        // The older sequence takes the tracker over from the newcomer.
        assert!(p.continue_after_block(&oldest, 1));
        for step in 2..4 {
            // Each step a fresh victim (ever-younger) blocks before the
            // tracked one; the oldest still accumulates.
            assert!(p.continue_after_block(&queued(3 + step as u64, 10, true), step));
            let expect_open = step < 3;
            assert_eq!(p.continue_after_block(&oldest, step), expect_open);
        }
    }

    #[test]
    fn aging_resets_between_episodes() {
        // The session's explicit resume signal closes a starvation
        // episode: a later preemption of the same request starts a fresh
        // patience budget instead of pausing instantly on stale state.
        let mut p = FcfsPreempt::with_patience(2);
        let parked = queued(5, 10, true);
        assert!(p.continue_after_block(&parked, 1));
        assert!(!p.continue_after_block(&parked, 2)); // aged out
        p.on_resumed(5);
        // Preempted again much later: full patience again.
        assert!(p.continue_after_block(&parked, 50));
        assert!(!p.continue_after_block(&parked, 51));
        // Resumes of untracked requests leave the tracker alone.
        let mut q = FcfsPreempt::with_patience(2);
        assert!(q.continue_after_block(&parked, 1));
        q.on_resumed(99);
        assert!(!q.continue_after_block(&parked, 2));
    }

    #[test]
    fn aging_counts_across_batch_cap_gaps() {
        // On batch-full steps the admission pass never consults the
        // policy, so the tracked sequence goes silent for stretches while
        // still parked. Those gaps must not reset the count — only the
        // explicit resume signal does.
        let mut p = FcfsPreempt::with_patience(3);
        let parked = queued(5, 10, true);
        assert!(p.continue_after_block(&parked, 10));
        assert!(p.continue_after_block(&parked, 11));
        // Steps 12–17: batch full, policy never called.
        assert!(!p.continue_after_block(&parked, 18), "gap reset the count");
    }

    #[test]
    fn srf_picks_fewest_remaining_with_fcfs_ties() {
        let mut p = ShortestRemainingFirst;
        let q = [
            queued(0, 9, false),
            queued(1, 2, false),
            queued(2, 2, false),
        ];
        // 1 and 2 tie on remaining; the lower id wins.
        assert_eq!(p.pick_next(&q), Some(1));
        assert_eq!(p.pick_next(&[]), None);
        assert_eq!(p.pick_victim(&q[1], &[running(0, 0)], 3), None);
    }
}
