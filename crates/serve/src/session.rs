//! The decode-step scheduler and its session front end.
//!
//! [`ServeSession`] is the runtime's control loop: requests queue FCFS
//! (either pre-filled via [`ServeSession::submit`] or joining mid-run
//! through [`ServeSession::submit_at`]'s trace-driven arrivals), admission
//! reserves each request's full prompt + generation page budget **on every
//! device** of the [`ShardedKvStore`] (so an admitted sequence never OOMs
//! mid-decode — the no-preemption discipline of the paper's Page serving
//! evaluation), and every [`ServeSession::step`] re-forms the batch, fans
//! one work unit per `(sequence, kv-head, device)` across the device-pinned
//! [`WorkerPool`] groups, **merges each head's softmax partials** (the
//! simulated all-reduce, exact by `OnlineSoftmax::merge`), appends each
//! sequence's new KV token, and retires finished sequences so their pages
//! recycle into the admission queue.
//!
//! Each step yields a [`ServeMetrics`] sample pairing the *measured*
//! aggregate KV-throughput, fast-dequant telemetry, and per-device
//! utilization with the *analytic* price of the same step shape — compute
//! from the kernel cost model, communication from the
//! [`InterconnectModel`]'s ring all-reduce of the step's output partials.

use crate::model::SequenceModel;
use crate::workers::{WorkUnit, WorkerPool};
use bd_core::{query_transform, ungroup_outputs, BitDecoder, DecodeShape, OnlineSoftmax};
use bd_gpu_sim::InterconnectModel;
use bd_kvcache::{DeviceId, Partitioning, Placement, SeqId, ShardedKvStore};
use bd_lowbit::fastpath::FastDequantOps;
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt;
use std::sync::Arc;
use std::time::Instant;

/// Identifier a [`ServeSession`] assigns to a submitted request.
pub type RequestId = u64;

/// Static configuration of a serve session.
#[derive(Clone, Copy, Debug)]
pub struct ServeConfig {
    /// Page pool capacity in pages, **per device**.
    pub total_pages: usize,
    /// Tokens per page.
    pub page_tokens: usize,
    /// Persistent decode workers per device group (0 = run units inline).
    pub workers: usize,
    /// Maximum concurrently decoding sequences.
    pub max_batch: usize,
    /// Simulated devices the KV heads shard across (clamped to the head
    /// count; 1 = the single-device runtime of earlier revisions).
    pub devices: usize,
    /// How KV heads map to devices.
    pub partitioning: Partitioning,
    /// The link model pricing the per-step output all-reduce.
    pub link: InterconnectModel,
}

impl ServeConfig {
    /// Builds a single-device config (NVLink-class link defaults apply if
    /// later sharded via [`ServeConfig::with_devices`]).
    ///
    /// # Panics
    ///
    /// Panics if `max_batch` or `page_tokens` is zero.
    pub fn new(total_pages: usize, page_tokens: usize, workers: usize, max_batch: usize) -> Self {
        assert!(max_batch > 0, "max_batch must be positive");
        assert!(page_tokens > 0, "page_tokens must be positive");
        ServeConfig {
            total_pages,
            page_tokens,
            workers,
            max_batch,
            devices: 1,
            partitioning: Partitioning::HeadContiguous,
            link: InterconnectModel::nvlink4(),
        }
    }

    /// Shards the session across `devices` simulated devices under
    /// `partitioning`.
    ///
    /// # Panics
    ///
    /// Panics if `devices` is zero.
    pub fn with_devices(mut self, devices: usize, partitioning: Partitioning) -> Self {
        assert!(devices > 0, "at least one device");
        self.devices = devices;
        self.partitioning = partitioning;
        self
    }

    /// Overrides the interconnect link model.
    pub fn with_link(mut self, link: InterconnectModel) -> Self {
        self.link = link;
        self
    }
}

/// Why a request was rejected at submission.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SubmitError {
    /// The request's prompt + generation budget exceeds a device's whole
    /// pool; it could never be admitted.
    TooLarge {
        /// Pages the request needs (per device).
        needed_pages: usize,
        /// Pages each device pool has in total.
        total_pages: usize,
    },
    /// The request asks for zero generated tokens — there is nothing to
    /// decode.
    EmptyGeneration,
}

impl fmt::Display for SubmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SubmitError::TooLarge {
                needed_pages,
                total_pages,
            } => write!(
                f,
                "request needs {needed_pages} pages but each device pool only has {total_pages}"
            ),
            SubmitError::EmptyGeneration => write!(f, "request generates zero tokens"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// One device's share of a decode step (the measured half of the
/// tensor-parallel trajectory).
#[derive(Clone, Copy, Debug)]
pub struct DeviceStepMetrics {
    /// The device.
    pub device: usize,
    /// Work units (sequence × local head) this device executed.
    pub units: usize,
    /// KV tokens this device's units attended.
    pub kv_tokens: usize,
    /// This device's attended tokens relative to the critical-path device
    /// (1.0 = on the critical path; lower = idle tail in a synchronous
    /// step).
    pub utilization: f64,
    /// Page occupancy of this device's pool after the step.
    pub page_occupancy: f64,
}

/// Per-step runtime report.
#[derive(Clone, Debug)]
pub struct ServeMetrics {
    /// Step index within the session.
    pub step: usize,
    /// Sequences decoded this step.
    pub batch: usize,
    /// Requests admitted at the top of this step.
    pub admitted: usize,
    /// Requests that finished (and were evicted) this step.
    pub completed: usize,
    /// KV tokens attended across the batch (Σ per-sequence context length).
    pub kv_tokens: usize,
    /// Measured wall-clock of the decode phases — attention fan-out,
    /// partial merge, model advance, KV append — excluding
    /// admission/prefill and the models' query construction, seconds.
    pub wall_s: f64,
    /// Aggregate measured KV-tokens per second for this step.
    pub kv_tokens_per_s: f64,
    /// Fast-dequant instructions streamed by the fused kernels this step.
    pub dequant: FastDequantOps,
    /// Aggregate page-pool utilization after the step (all devices).
    pub pool_utilization: f64,
    /// What the analytic cost model prices this step's shape at on the
    /// session's target GPU, seconds (compute only).
    pub modeled_step_s: f64,
    /// Devices the step sharded across.
    pub devices: usize,
    /// Per-device execution/occupancy breakdown.
    pub per_device: Vec<DeviceStepMetrics>,
    /// Bytes each device moved over the link to all-reduce the step's
    /// output partials (0 for a single device).
    pub allreduce_bytes_per_device: f64,
    /// What the link model prices that all-reduce at, seconds.
    pub modeled_interconnect_s: f64,
}

impl ServeMetrics {
    /// Mean per-device utilization (1.0 = perfectly balanced step).
    pub fn mean_device_utilization(&self) -> f64 {
        if self.per_device.is_empty() {
            return 0.0;
        }
        self.per_device.iter().map(|d| d.utilization).sum::<f64>() / self.per_device.len() as f64
    }
}

/// Aggregate outcome of [`ServeSession::run_to_completion`].
#[derive(Clone, Copy, Debug)]
pub struct ServeSummary {
    /// Decode steps executed.
    pub steps: usize,
    /// Requests completed.
    pub completed: usize,
    /// Total KV tokens attended.
    pub kv_tokens: u64,
    /// Total measured decode-phase wall-clock (see
    /// [`ServeMetrics::wall_s`]), seconds.
    pub wall_s: f64,
    /// Aggregate KV-tokens per second over the run.
    pub kv_tokens_per_s: f64,
    /// Total fast-dequant instructions streamed.
    pub dequant: FastDequantOps,
    /// Devices the session sharded across.
    pub devices: usize,
    /// Mean over steps of the mean per-device utilization.
    pub mean_device_utilization: f64,
    /// Total modeled all-reduce time across the run, seconds.
    pub modeled_interconnect_s: f64,
}

struct ActiveSeq {
    id: RequestId,
    seq: SeqId,
    model: Box<dyn SequenceModel>,
    step: usize,
    remaining: usize,
}

/// The batched decode runtime session — see the [module docs](self).
pub struct ServeSession {
    decoder: Arc<BitDecoder>,
    store: Arc<ShardedKvStore>,
    pool: WorkerPool,
    /// Trace arrivals not yet due, sorted by arrival step (FCFS within a
    /// step).
    arrivals: VecDeque<(usize, RequestId, Box<dyn SequenceModel>)>,
    pending: VecDeque<(RequestId, Box<dyn SequenceModel>)>,
    active: Vec<ActiveSeq>,
    streams: BTreeMap<RequestId, Vec<u32>>,
    finished: BTreeSet<RequestId>,
    metrics: Vec<ServeMetrics>,
    next_id: RequestId,
    config: ServeConfig,
    step_index: usize,
}

impl ServeSession {
    /// Creates a session serving `decoder`'s model/GPU configuration under
    /// `config`'s pool, batch, and device limits.
    pub fn new(decoder: BitDecoder, config: ServeConfig) -> Self {
        let cache_config = decoder.cache_config();
        let heads = decoder.attention().heads_kv;
        let placement = Placement::new(config.devices, config.partitioning, heads);
        ServeSession {
            decoder: Arc::new(decoder),
            store: Arc::new(ShardedKvStore::new(
                cache_config,
                placement,
                config.total_pages,
                config.page_tokens,
            )),
            pool: WorkerPool::new(config.workers, placement.devices()),
            arrivals: VecDeque::new(),
            pending: VecDeque::new(),
            active: Vec::new(),
            streams: BTreeMap::new(),
            finished: BTreeSet::new(),
            metrics: Vec::new(),
            next_id: 0,
            config,
            step_index: 0,
        }
    }

    /// The session's decoder.
    pub fn decoder(&self) -> &BitDecoder {
        &self.decoder
    }

    /// The sharded KV store (read-only view).
    pub fn store(&self) -> &ShardedKvStore {
        &self.store
    }

    /// Devices the session shards across (after placement clamping).
    pub fn devices(&self) -> usize {
        self.store.devices()
    }

    /// Requests waiting for admission (due arrivals + FCFS queue).
    pub fn pending(&self) -> usize {
        self.pending.len()
    }

    /// Requests whose arrival step has not been reached yet.
    pub fn future_arrivals(&self) -> usize {
        self.arrivals.len()
    }

    /// Sequences currently decoding.
    pub fn active(&self) -> usize {
        self.active.len()
    }

    /// The token stream emitted so far for a request.
    pub fn stream(&self, id: RequestId) -> Option<&[u32]> {
        self.streams.get(&id).map(Vec::as_slice)
    }

    /// `true` once a request has generated all its tokens.
    pub fn is_finished(&self, id: RequestId) -> bool {
        self.finished.contains(&id)
    }

    /// Per-step metrics recorded so far.
    pub fn metrics(&self) -> &[ServeMetrics] {
        &self.metrics
    }

    fn validate(&self, model: &dyn SequenceModel) -> Result<(), SubmitError> {
        if model.gen_tokens() == 0 {
            return Err(SubmitError::EmptyGeneration);
        }
        let total_tokens = model.prompt_tokens() + model.gen_tokens();
        let needed_pages = total_tokens.div_ceil(self.config.page_tokens);
        if needed_pages > self.config.total_pages {
            return Err(SubmitError::TooLarge {
                needed_pages,
                total_pages: self.config.total_pages,
            });
        }
        Ok(())
    }

    /// Queues a request. Admission happens FCFS at the next step with
    /// enough free pages; the assigned [`RequestId`] is live immediately
    /// (its [`ServeSession::stream`] starts empty).
    ///
    /// # Errors
    ///
    /// Rejects requests whose per-device page budget exceeds a whole
    /// device pool, and requests with nothing to generate.
    pub fn submit(&mut self, model: Box<dyn SequenceModel>) -> Result<RequestId, SubmitError> {
        self.validate(model.as_ref())?;
        let id = self.next_id;
        self.next_id += 1;
        self.streams.insert(id, Vec::new());
        self.pending.push_back((id, model));
        Ok(id)
    }

    /// Queues a request that **arrives** at decode step `arrival_step`
    /// (trace-driven admission): it stays invisible to the scheduler until
    /// that step, then joins the FCFS queue and is admitted when pages free
    /// up — sequences join mid-run instead of draining a pre-filled queue.
    /// An idle session fast-forwards to the next arrival rather than
    /// spinning empty steps.
    ///
    /// Arrivals at or before the current step behave exactly like
    /// [`ServeSession::submit`].
    ///
    /// # Errors
    ///
    /// Same rejection rules as [`ServeSession::submit`].
    pub fn submit_at(
        &mut self,
        arrival_step: usize,
        model: Box<dyn SequenceModel>,
    ) -> Result<RequestId, SubmitError> {
        self.validate(model.as_ref())?;
        let id = self.next_id;
        self.next_id += 1;
        self.streams.insert(id, Vec::new());
        if arrival_step <= self.step_index {
            self.pending.push_back((id, model));
        } else {
            // Sorted insert; FCFS among equal arrival steps.
            let pos = self
                .arrivals
                .partition_point(|(s, _, _)| *s <= arrival_step);
            self.arrivals.insert(pos, (arrival_step, id, model));
        }
        Ok(id)
    }

    /// Regains exclusive store access after a parallel phase. Workers drop
    /// their `Arc` clones before reporting results, so by the time every
    /// result is collected the count is (momentarily) back to one; the spin
    /// only covers the tail of that hand-back.
    fn store_mut(&mut self) -> &mut ShardedKvStore {
        while Arc::strong_count(&self.store) > 1 {
            std::thread::yield_now();
        }
        Arc::get_mut(&mut self.store).expect("no outstanding store refs")
    }

    /// Moves arrivals due at the current step into the FCFS queue, then
    /// admits pending requests while pages (on every device) and the batch
    /// cap allow; returns how many were admitted.
    fn admit_due(&mut self) -> usize {
        while let Some((step, _, _)) = self.arrivals.front() {
            if *step > self.step_index {
                break;
            }
            let (_, id, model) = self.arrivals.pop_front().expect("checked front");
            self.pending.push_back((id, model));
        }
        let mut admitted = 0;
        while self.active.len() < self.config.max_batch {
            let Some((id, mut model)) = self.pending.pop_front() else {
                break;
            };
            let reserve = model.prompt_tokens() + model.gen_tokens();
            let codec = self.decoder.codec();
            let store = self.store_mut();
            let seq = match store.admit(reserve) {
                Ok(seq) => seq,
                Err(_oom) => {
                    // Not enough pages *now*: stay queued (FCFS — later
                    // requests wait behind this one).
                    self.pending.push_front((id, model));
                    break;
                }
            };
            let (pk, pv) = model.prompt();
            store
                .prefill(seq, &pk, &pv, &codec)
                .expect("reservation covers the prompt");
            let remaining = model.gen_tokens();
            self.active.push(ActiveSeq {
                id,
                seq,
                model,
                step: 0,
                remaining,
            });
            admitted += 1;
        }
        admitted
    }

    /// Runs one decode step: admit (arrivals + FCFS queue) → batch
    /// attention over the device-pinned worker groups → merge per-head
    /// partials (the simulated all-reduce) → advance models / append KV →
    /// retire finished sequences.
    ///
    /// Returns the step's metrics, or `None` when no work remains (the
    /// session is drained). If the session is idle but future arrivals
    /// exist, it fast-forwards to the next arrival step.
    pub fn step(&mut self) -> Option<ServeMetrics> {
        let mut admitted = self.admit_due();
        while self.active.is_empty() {
            // Idle: jump to the next trace arrival (or drain).
            let &(next, _, _) = self.arrivals.front()?;
            self.step_index = next.max(self.step_index);
            admitted += self.admit_due();
        }
        let attn = *self.decoder.attention();
        let heads_kv = attn.heads_kv;
        let placement = *self.store.placement();
        let devices = placement.devices();

        // Batch formation: one unit per (sequence, kv-head, owning device).
        let mut units = Vec::with_capacity(self.active.len() * heads_kv);
        let mut kv_tokens = 0usize;
        let mut max_len = 0usize;
        let mut max_res = 0usize;
        let mut dev_units = vec![0usize; devices];
        let mut dev_tokens = vec![0usize; devices];
        for a in &mut self.active {
            let len = self.store.seq_len(a.seq).expect("active sequence");
            kv_tokens += len;
            max_len = max_len.max(len);
            max_res = max_res.max(self.store.residual_len(a.seq));
            let q = a.model.query(a.step);
            for (kv, q_block) in query_transform(&q, &attn).into_iter().enumerate() {
                let device = placement.device_of(kv);
                dev_units[device.0 as usize] += 1;
                dev_tokens[device.0 as usize] += len;
                units.push(WorkUnit {
                    unit: units.len(),
                    seq: a.seq,
                    head: kv,
                    device,
                    q_block,
                });
            }
        }
        let batch = self.active.len();
        // Time only the decode work (attention fan-out, partial merge,
        // model advance, append) — not admission/prefill or the user
        // model's query construction above, so kv_tokens_per_s reports the
        // runtime's own throughput.
        let t0 = Instant::now();
        let mut results = self.pool.run_step(units, &self.store, &self.decoder);

        // Advance every sequence and append its new KV token.
        let mut dequant = FastDequantOps::default();
        for r in &results {
            dequant += r.ops;
        }
        let codec = self.decoder.codec();
        let mut appends = Vec::with_capacity(batch);
        for (a, chunk) in self.active.iter_mut().zip(results.chunks_mut(heads_kv)) {
            // The simulated all-reduce: each head's device partials merge
            // through the exact log-sum-exp combine, then normalize once.
            // Under head placement every head has exactly one partial, so
            // the merge is the identity and the output is bitwise equal to
            // the single-device path.
            let blocks: Vec<Vec<Vec<f32>>> = chunk
                .iter_mut()
                .map(|r| {
                    let partial = std::mem::replace(&mut r.partial, OnlineSoftmax::new(0, 0));
                    Self::reduce_head_partials(std::iter::once(partial))
                })
                .collect();
            let output = ungroup_outputs(&blocks, &attn);
            let step_kv = a.model.advance(a.step, &output);
            self.streams
                .get_mut(&a.id)
                .expect("stream exists from submit")
                .push(step_kv.token);
            appends.push((a.seq, step_kv));
            a.step += 1;
            a.remaining -= 1;
        }
        {
            let store = self.store_mut();
            for (seq, step_kv) in &appends {
                store
                    .append_step(*seq, &step_kv.k, &step_kv.v, &codec)
                    .expect("reservation covers the generation");
            }
        }
        let wall_s = t0.elapsed().as_secs_f64();

        // Retire finished sequences: seal, evict, recycle pages.
        let done: Vec<(RequestId, SeqId)> = self
            .active
            .iter()
            .filter(|a| a.remaining == 0)
            .map(|a| (a.id, a.seq))
            .collect();
        {
            let store = self.store_mut();
            for (_, seq) in &done {
                store.seal(*seq).expect("active sequence");
                store.evict(*seq);
            }
        }
        for (id, _) in &done {
            self.finished.insert(*id);
        }
        self.active.retain(|a| a.remaining > 0);

        // Per-device trajectory: tokens attended vs the critical path,
        // plus each device's page occupancy.
        let max_dev_tokens = dev_tokens.iter().copied().max().unwrap_or(0);
        let per_device: Vec<DeviceStepMetrics> = (0..devices)
            .map(|d| DeviceStepMetrics {
                device: d,
                units: dev_units[d],
                kv_tokens: dev_tokens[d],
                utilization: if max_dev_tokens > 0 {
                    dev_tokens[d] as f64 / max_dev_tokens as f64
                } else {
                    0.0
                },
                page_occupancy: self.store.device_stats(DeviceId(d as u32)).utilization,
            })
            .collect();

        // The all-reduce payload: every head's un-normalized partial —
        // g_q rows of (d accumulators + m + l) f32s — for every sequence.
        let payload_bytes =
            (batch * attn.heads_q * (attn.head_dim + 2) * std::mem::size_of::<f32>()) as f64;
        let allreduce_bytes_per_device = self
            .config
            .link
            .allreduce_bytes_per_device(payload_bytes, devices);
        let modeled_interconnect_s = self.config.link.allreduce_s(payload_bytes, devices);

        let shape = DecodeShape::new(batch, attn, max_len.max(1)).with_residual(max_res);
        let m = ServeMetrics {
            step: self.step_index,
            batch,
            admitted,
            completed: done.len(),
            kv_tokens,
            wall_s,
            kv_tokens_per_s: if wall_s > 0.0 {
                kv_tokens as f64 / wall_s
            } else {
                0.0
            },
            dequant,
            pool_utilization: self.store.utilization(),
            modeled_step_s: self.decoder.latency(&shape).total_s,
            devices,
            per_device,
            allreduce_bytes_per_device,
            modeled_interconnect_s,
        };
        self.step_index += 1;
        self.metrics.push(m.clone());
        Some(m)
    }

    /// Folds one head's device partials into normalized output rows —
    /// `OnlineSoftmax::merge` over however many partials the placement
    /// produced (exactly one under head partitioning; the merge is exact
    /// for any split).
    fn reduce_head_partials(partials: impl Iterator<Item = OnlineSoftmax>) -> Vec<Vec<f32>> {
        OnlineSoftmax::merge(partials.collect()).finish()
    }

    /// Steps until every submitted request has finished, returning the
    /// aggregate summary.
    pub fn run_to_completion(&mut self) -> ServeSummary {
        let start = self.metrics.len();
        while self.step().is_some() {}
        let run = &self.metrics[start..];
        let kv_tokens: u64 = run.iter().map(|m| m.kv_tokens as u64).sum();
        let wall_s: f64 = run.iter().map(|m| m.wall_s).sum();
        let mut dequant = FastDequantOps::default();
        for m in run {
            dequant += m.dequant;
        }
        ServeSummary {
            steps: run.len(),
            completed: run.iter().map(|m| m.completed).sum(),
            kv_tokens,
            wall_s,
            kv_tokens_per_s: if wall_s > 0.0 {
                kv_tokens as f64 / wall_s
            } else {
                0.0
            },
            dequant,
            devices: self.devices(),
            mean_device_utilization: if run.is_empty() {
                0.0
            } else {
                run.iter()
                    .map(ServeMetrics::mean_device_utilization)
                    .sum::<f64>()
                    / run.len() as f64
            },
            modeled_interconnect_s: run.iter().map(|m| m.modeled_interconnect_s).sum(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{replay_contiguous, SynthSequence};
    use bd_core::AttentionConfig;
    use bd_gpu_sim::GpuArch;
    use bd_kvcache::QuantScheme;

    fn decoder(attn: AttentionConfig) -> BitDecoder {
        BitDecoder::builder(GpuArch::rtx4090())
            .attention(attn)
            .scheme(QuantScheme::kc4())
            .paged(true)
            .build()
    }

    #[test]
    fn batched_streams_match_contiguous_replay_bitwise() {
        let attn = AttentionConfig::gqa(4, 2, 16);
        let dec = decoder(attn);
        let mut session = ServeSession::new(dec.clone(), ServeConfig::new(512, 32, 2, 8));
        let ids: Vec<RequestId> = (0..4)
            .map(|i| {
                session
                    .submit(Box::new(SynthSequence::new(
                        attn,
                        i,
                        100 + 40 * i as usize,
                        4,
                    )))
                    .unwrap()
            })
            .collect();
        let summary = session.run_to_completion();
        assert_eq!(summary.completed, 4);
        for (i, id) in ids.iter().enumerate() {
            let want = replay_contiguous(
                &dec,
                &mut SynthSequence::new(attn, i as u64, 100 + 40 * i, 4),
            );
            assert_eq!(session.stream(*id).unwrap(), want, "request {i}");
            assert!(session.is_finished(*id));
        }
        // All pages recycled after completion.
        assert_eq!(session.store().free_pages(), 512);
    }

    #[test]
    fn sharded_session_streams_match_single_device_bitwise() {
        let attn = AttentionConfig::gqa(8, 4, 16);
        let streams_at = |devices: usize, part: Partitioning| -> Vec<Vec<u32>> {
            let config = ServeConfig::new(128, 32, 1, 4).with_devices(devices, part);
            let mut session = ServeSession::new(decoder(attn), config);
            let ids: Vec<_> = (0..3)
                .map(|i| {
                    session
                        .submit(Box::new(SynthSequence::new(
                            attn,
                            i,
                            80 + 30 * i as usize,
                            3,
                        )))
                        .unwrap()
                })
                .collect();
            let summary = session.run_to_completion();
            assert_eq!(summary.completed, 3);
            assert_eq!(summary.devices, devices.min(attn.heads_kv));
            ids.iter()
                .map(|id| session.stream(*id).unwrap().to_vec())
                .collect()
        };
        let single = streams_at(1, Partitioning::HeadContiguous);
        for devices in [2usize, 3, 4] {
            for part in [Partitioning::HeadModulo, Partitioning::HeadContiguous] {
                assert_eq!(
                    single,
                    streams_at(devices, part),
                    "devices={devices} {part}"
                );
            }
        }
    }

    #[test]
    fn sharded_metrics_report_per_device_breakdown() {
        let attn = AttentionConfig::gqa(4, 2, 16);
        let config = ServeConfig::new(64, 32, 0, 4).with_devices(2, Partitioning::HeadModulo);
        let mut session = ServeSession::new(decoder(attn), config);
        session
            .submit(Box::new(SynthSequence::new(attn, 7, 50, 2)))
            .unwrap();
        let m = session.step().unwrap();
        assert_eq!(m.devices, 2);
        assert_eq!(m.per_device.len(), 2);
        // One head per device: perfectly balanced.
        for d in &m.per_device {
            assert_eq!(d.units, 1);
            assert_eq!(d.kv_tokens, 50);
            assert_eq!(d.utilization, 1.0);
            assert!(d.page_occupancy > 0.0);
        }
        assert_eq!(m.mean_device_utilization(), 1.0);
        // The all-reduce is priced: 2 devices move the full partial
        // payload once around the ring.
        // batch 1 × h_q 4 × (d 16 + m,l 2) × 4 bytes.
        let payload = (4 * (16 + 2) * 4) as f64;
        assert_eq!(m.allreduce_bytes_per_device, payload);
        assert!(m.modeled_interconnect_s > 0.0);

        // Single device: no communication.
        let mut solo = ServeSession::new(decoder(attn), ServeConfig::new(64, 32, 0, 4));
        solo.submit(Box::new(SynthSequence::new(attn, 7, 50, 2)))
            .unwrap();
        let ms = solo.step().unwrap();
        assert_eq!(ms.allreduce_bytes_per_device, 0.0);
        assert_eq!(ms.modeled_interconnect_s, 0.0);
    }

    #[test]
    fn uneven_head_split_shows_in_device_utilization() {
        // 3 KV heads over 2 devices (contiguous): device 0 takes 2 heads,
        // device 1 takes 1 — its utilization is half the critical path.
        let attn = AttentionConfig::gqa(3, 3, 16);
        let config = ServeConfig::new(64, 32, 0, 4).with_devices(2, Partitioning::HeadContiguous);
        let mut session = ServeSession::new(decoder(attn), config);
        session
            .submit(Box::new(SynthSequence::new(attn, 1, 40, 1)))
            .unwrap();
        let m = session.step().unwrap();
        assert_eq!(m.per_device[0].units, 2);
        assert_eq!(m.per_device[1].units, 1);
        assert_eq!(m.per_device[0].utilization, 1.0);
        assert_eq!(m.per_device[1].utilization, 0.5);
    }

    #[test]
    fn admission_respects_pool_and_batch_limits() {
        let attn = AttentionConfig::gqa(2, 1, 16);
        // Pool fits exactly two resident requests (each needs 2 pages).
        let mut session = ServeSession::new(decoder(attn), ServeConfig::new(4, 64, 0, 8));
        for i in 0..5 {
            session
                .submit(Box::new(SynthSequence::new(attn, i, 100, 3)))
                .unwrap();
        }
        let m = session.step().unwrap();
        assert_eq!(m.batch, 2);
        assert_eq!(m.admitted, 2);
        assert_eq!(session.pending(), 3);
        let summary = session.run_to_completion();
        assert_eq!(summary.completed, 5);
        assert!(session.metrics().iter().all(|m| m.batch <= 2));

        // max_batch caps admission even with free pages.
        let mut capped = ServeSession::new(decoder(attn), ServeConfig::new(64, 64, 0, 3));
        for i in 0..5 {
            capped
                .submit(Box::new(SynthSequence::new(attn, i, 10, 2)))
                .unwrap();
        }
        assert_eq!(capped.step().unwrap().batch, 3);
    }

    #[test]
    fn trace_arrivals_join_mid_run() {
        let attn = AttentionConfig::gqa(2, 1, 16);
        let mut session = ServeSession::new(decoder(attn), ServeConfig::new(64, 32, 0, 8));
        let a = session
            .submit(Box::new(SynthSequence::new(attn, 0, 40, 4)))
            .unwrap();
        // Arrives at step 2 — must not decode earlier.
        let b = session
            .submit_at(2, Box::new(SynthSequence::new(attn, 1, 40, 3)))
            .unwrap();
        assert_eq!(session.future_arrivals(), 1);
        let m0 = session.step().unwrap();
        assert_eq!((m0.batch, m0.admitted), (1, 1));
        let m1 = session.step().unwrap();
        assert_eq!((m1.batch, m1.admitted), (1, 0));
        let m2 = session.step().unwrap();
        assert_eq!((m2.batch, m2.admitted), (2, 1), "arrival joins at step 2");
        assert_eq!(session.future_arrivals(), 0);
        let summary = session.run_to_completion();
        assert_eq!(summary.completed, 2);
        // Streams still match the per-sequence contiguous replay.
        for (id, seed, prompt, gen) in [(a, 0u64, 40usize, 4usize), (b, 1, 40, 3)] {
            let want = replay_contiguous(
                &decoder(attn),
                &mut SynthSequence::new(attn, seed, prompt, gen),
            );
            assert_eq!(session.stream(id).unwrap(), want);
        }
    }

    #[test]
    fn idle_session_fast_forwards_to_next_arrival() {
        let attn = AttentionConfig::gqa(2, 1, 16);
        let mut session = ServeSession::new(decoder(attn), ServeConfig::new(64, 32, 0, 8));
        session
            .submit_at(10, Box::new(SynthSequence::new(attn, 3, 20, 2)))
            .unwrap();
        // No work before step 10 — the session jumps there instead of
        // emitting empty steps.
        let m = session.step().unwrap();
        assert_eq!(m.step, 10);
        assert_eq!(m.batch, 1);
        assert!(session.step().is_some());
        assert!(session.step().is_none());
    }

    #[test]
    fn arrivals_wait_for_pages_to_free_up() {
        let attn = AttentionConfig::gqa(2, 1, 16);
        // One page of 64 tokens: only one 40+3-token request fits at a
        // time.
        let mut session = ServeSession::new(decoder(attn), ServeConfig::new(1, 64, 0, 8));
        session
            .submit(Box::new(SynthSequence::new(attn, 0, 40, 3)))
            .unwrap();
        session
            .submit_at(1, Box::new(SynthSequence::new(attn, 1, 40, 2)))
            .unwrap();
        let m0 = session.step().unwrap();
        assert_eq!(m0.batch, 1);
        // Step 1: the arrival is due but the pool is full — it queues.
        let m1 = session.step().unwrap();
        assert_eq!(m1.admitted, 0);
        assert_eq!(session.pending(), 1);
        let summary = session.run_to_completion();
        // Both requests finish in the remaining steps: the first completes,
        // frees its page, and the queued arrival is finally admitted.
        assert_eq!(summary.completed, 2);
        assert_eq!(session.pending(), 0);
    }

    #[test]
    fn oversized_requests_are_rejected_at_submit() {
        let attn = AttentionConfig::gqa(2, 1, 16);
        let mut session = ServeSession::new(decoder(attn), ServeConfig::new(4, 64, 0, 8));
        let err = session
            .submit(Box::new(SynthSequence::new(attn, 0, 64 * 5, 1)))
            .unwrap_err();
        assert_eq!(
            err,
            SubmitError::TooLarge {
                needed_pages: 6,
                total_pages: 4
            }
        );
    }

    #[test]
    fn zero_generation_requests_are_rejected_at_submit() {
        let attn = AttentionConfig::gqa(2, 1, 16);
        let mut session = ServeSession::new(decoder(attn), ServeConfig::new(4, 64, 0, 8));
        let err = session
            .submit(Box::new(SynthSequence::new(attn, 0, 10, 0)))
            .unwrap_err();
        assert_eq!(err, SubmitError::EmptyGeneration);
        assert!(session.step().is_none());
    }

    #[test]
    fn metrics_pair_measured_and_modeled_costs() {
        let attn = AttentionConfig::gqa(4, 2, 16);
        let mut session = ServeSession::new(decoder(attn), ServeConfig::new(256, 64, 1, 8));
        session
            .submit(Box::new(SynthSequence::new(attn, 3, 200, 2)))
            .unwrap();
        let m = session.step().unwrap();
        assert_eq!(m.batch, 1);
        assert_eq!(m.kv_tokens, 200);
        assert!(m.kv_tokens_per_s > 0.0);
        assert!(m.modeled_step_s > 0.0);
        assert!(m.dequant.total() > 0, "fused path streams dequant work");
        assert!(m.pool_utilization > 0.0);
        let m2 = session.step().unwrap();
        assert_eq!(m2.kv_tokens, 201);
        assert_eq!(m2.completed, 1);
        assert!(session.step().is_none());
    }
}
