//! The decode-step scheduler and its session front end.
//!
//! [`ServeSession`] is the runtime's control loop: requests queue FCFS,
//! admission reserves each request's full prompt + generation page budget
//! against the [`PagedKvStore`] (so an admitted sequence never OOMs
//! mid-decode — the no-preemption discipline of the paper's Page serving
//! evaluation), and every [`ServeSession::step`] re-forms the batch, fans
//! one work unit per `(sequence, kv-head)` across the persistent
//! [`WorkerPool`], appends each sequence's new KV token, and retires
//! finished sequences so their pages recycle into the admission queue.
//!
//! Each step yields a [`ServeMetrics`] sample pairing the *measured*
//! aggregate KV-throughput and fast-dequant telemetry with the *analytic*
//! price of the same step shape — the bridge between this functional
//! runtime and the `bd-llm` cost model.

use crate::model::SequenceModel;
use crate::workers::{WorkUnit, WorkerPool};
use bd_core::{query_transform, ungroup_outputs, BitDecoder, DecodeShape};
use bd_kvcache::{PagedKvStore, SeqId};
use bd_lowbit::fastpath::FastDequantOps;
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt;
use std::sync::Arc;
use std::time::Instant;

/// Identifier a [`ServeSession`] assigns to a submitted request.
pub type RequestId = u64;

/// Static configuration of a serve session.
#[derive(Clone, Copy, Debug)]
pub struct ServeConfig {
    /// Page pool capacity in pages.
    pub total_pages: usize,
    /// Tokens per page.
    pub page_tokens: usize,
    /// Persistent decode workers (0 = run units inline).
    pub workers: usize,
    /// Maximum concurrently decoding sequences.
    pub max_batch: usize,
}

impl ServeConfig {
    /// Builds a config.
    ///
    /// # Panics
    ///
    /// Panics if `max_batch` or `page_tokens` is zero.
    pub fn new(total_pages: usize, page_tokens: usize, workers: usize, max_batch: usize) -> Self {
        assert!(max_batch > 0, "max_batch must be positive");
        assert!(page_tokens > 0, "page_tokens must be positive");
        ServeConfig {
            total_pages,
            page_tokens,
            workers,
            max_batch,
        }
    }
}

/// Why a request was rejected at submission.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SubmitError {
    /// The request's prompt + generation budget exceeds the whole pool; it
    /// could never be admitted.
    TooLarge {
        /// Pages the request needs.
        needed_pages: usize,
        /// Pages the pool has in total.
        total_pages: usize,
    },
    /// The request asks for zero generated tokens — there is nothing to
    /// decode.
    EmptyGeneration,
}

impl fmt::Display for SubmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SubmitError::TooLarge {
                needed_pages,
                total_pages,
            } => write!(
                f,
                "request needs {needed_pages} pages but the pool only has {total_pages}"
            ),
            SubmitError::EmptyGeneration => write!(f, "request generates zero tokens"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// Per-step runtime report.
#[derive(Clone, Copy, Debug)]
pub struct ServeMetrics {
    /// Step index within the session.
    pub step: usize,
    /// Sequences decoded this step.
    pub batch: usize,
    /// Requests admitted at the top of this step.
    pub admitted: usize,
    /// Requests that finished (and were evicted) this step.
    pub completed: usize,
    /// KV tokens attended across the batch (Σ per-sequence context length).
    pub kv_tokens: usize,
    /// Measured wall-clock of the decode phases — attention fan-out, model
    /// advance, KV append — excluding admission/prefill and the models'
    /// query construction, seconds.
    pub wall_s: f64,
    /// Aggregate measured KV-tokens per second for this step.
    pub kv_tokens_per_s: f64,
    /// Fast-dequant instructions streamed by the fused kernels this step.
    pub dequant: FastDequantOps,
    /// Page-pool utilization after the step.
    pub pool_utilization: f64,
    /// What the analytic cost model prices this step's shape at on the
    /// session's target GPU, seconds.
    pub modeled_step_s: f64,
}

/// Aggregate outcome of [`ServeSession::run_to_completion`].
#[derive(Clone, Copy, Debug)]
pub struct ServeSummary {
    /// Decode steps executed.
    pub steps: usize,
    /// Requests completed.
    pub completed: usize,
    /// Total KV tokens attended.
    pub kv_tokens: u64,
    /// Total measured decode-phase wall-clock (see
    /// [`ServeMetrics::wall_s`]), seconds.
    pub wall_s: f64,
    /// Aggregate KV-tokens per second over the run.
    pub kv_tokens_per_s: f64,
    /// Total fast-dequant instructions streamed.
    pub dequant: FastDequantOps,
}

struct ActiveSeq {
    id: RequestId,
    seq: SeqId,
    model: Box<dyn SequenceModel>,
    step: usize,
    remaining: usize,
}

/// The batched decode runtime session — see the [module docs](self).
pub struct ServeSession {
    decoder: Arc<BitDecoder>,
    store: Arc<PagedKvStore>,
    pool: WorkerPool,
    pending: VecDeque<(RequestId, Box<dyn SequenceModel>)>,
    active: Vec<ActiveSeq>,
    streams: BTreeMap<RequestId, Vec<u32>>,
    finished: BTreeSet<RequestId>,
    metrics: Vec<ServeMetrics>,
    next_id: RequestId,
    config: ServeConfig,
    step_index: usize,
}

impl ServeSession {
    /// Creates a session serving `decoder`'s model/GPU configuration under
    /// `config`'s pool and batch limits.
    pub fn new(decoder: BitDecoder, config: ServeConfig) -> Self {
        let cache_config = decoder.cache_config();
        let heads = decoder.attention().heads_kv;
        ServeSession {
            decoder: Arc::new(decoder),
            store: Arc::new(PagedKvStore::new(
                cache_config,
                heads,
                config.total_pages,
                config.page_tokens,
            )),
            pool: WorkerPool::new(config.workers),
            pending: VecDeque::new(),
            active: Vec::new(),
            streams: BTreeMap::new(),
            finished: BTreeSet::new(),
            metrics: Vec::new(),
            next_id: 0,
            config,
            step_index: 0,
        }
    }

    /// The session's decoder.
    pub fn decoder(&self) -> &BitDecoder {
        &self.decoder
    }

    /// The paged KV store (read-only view).
    pub fn store(&self) -> &PagedKvStore {
        &self.store
    }

    /// Requests waiting for admission.
    pub fn pending(&self) -> usize {
        self.pending.len()
    }

    /// Sequences currently decoding.
    pub fn active(&self) -> usize {
        self.active.len()
    }

    /// The token stream emitted so far for a request.
    pub fn stream(&self, id: RequestId) -> Option<&[u32]> {
        self.streams.get(&id).map(Vec::as_slice)
    }

    /// `true` once a request has generated all its tokens.
    pub fn is_finished(&self, id: RequestId) -> bool {
        self.finished.contains(&id)
    }

    /// Per-step metrics recorded so far.
    pub fn metrics(&self) -> &[ServeMetrics] {
        &self.metrics
    }

    /// Queues a request. Admission happens FCFS at the next step with
    /// enough free pages; the assigned [`RequestId`] is live immediately
    /// (its [`ServeSession::stream`] starts empty).
    ///
    /// # Errors
    ///
    /// Rejects requests whose page budget exceeds the whole pool, and
    /// requests with nothing to generate.
    pub fn submit(&mut self, model: Box<dyn SequenceModel>) -> Result<RequestId, SubmitError> {
        if model.gen_tokens() == 0 {
            return Err(SubmitError::EmptyGeneration);
        }
        let total_tokens = model.prompt_tokens() + model.gen_tokens();
        let needed_pages = total_tokens.div_ceil(self.config.page_tokens);
        if needed_pages > self.config.total_pages {
            return Err(SubmitError::TooLarge {
                needed_pages,
                total_pages: self.config.total_pages,
            });
        }
        let id = self.next_id;
        self.next_id += 1;
        self.streams.insert(id, Vec::new());
        self.pending.push_back((id, model));
        Ok(id)
    }

    /// Regains exclusive store access after a parallel phase. Workers drop
    /// their `Arc` clones before reporting results, so by the time every
    /// result is collected the count is (momentarily) back to one; the spin
    /// only covers the tail of that hand-back.
    fn store_mut(&mut self) -> &mut PagedKvStore {
        while Arc::strong_count(&self.store) > 1 {
            std::thread::yield_now();
        }
        Arc::get_mut(&mut self.store).expect("no outstanding store refs")
    }

    /// Admits pending requests FCFS while pages and the batch cap allow;
    /// returns how many were admitted.
    fn try_admit(&mut self) -> usize {
        let mut admitted = 0;
        while self.active.len() < self.config.max_batch {
            let Some((id, mut model)) = self.pending.pop_front() else {
                break;
            };
            let reserve = model.prompt_tokens() + model.gen_tokens();
            let codec = self.decoder.codec();
            let store = self.store_mut();
            let seq = match store.admit(reserve) {
                Ok(seq) => seq,
                Err(_oom) => {
                    // Not enough pages *now*: stay queued (FCFS — later
                    // requests wait behind this one).
                    self.pending.push_front((id, model));
                    break;
                }
            };
            let (pk, pv) = model.prompt();
            store
                .prefill(seq, &pk, &pv, &codec)
                .expect("reservation covers the prompt");
            let remaining = model.gen_tokens();
            self.active.push(ActiveSeq {
                id,
                seq,
                model,
                step: 0,
                remaining,
            });
            admitted += 1;
        }
        admitted
    }

    /// Runs one decode step: admit → batch attention over the worker pool
    /// → advance models / append KV → retire finished sequences.
    ///
    /// Returns the step's metrics, or `None` when no work remains (the
    /// session is drained).
    pub fn step(&mut self) -> Option<ServeMetrics> {
        let admitted = self.try_admit();
        if self.active.is_empty() {
            return None;
        }
        let attn = *self.decoder.attention();
        let heads_kv = attn.heads_kv;

        // Batch formation: one unit per (sequence, kv-head).
        let mut units = Vec::with_capacity(self.active.len() * heads_kv);
        let mut kv_tokens = 0usize;
        let mut max_len = 0usize;
        let mut max_res = 0usize;
        for a in &mut self.active {
            let len = self.store.seq_len(a.seq).expect("active sequence");
            kv_tokens += len;
            max_len = max_len.max(len);
            max_res = max_res.max(self.store.residual_len(a.seq));
            let q = a.model.query(a.step);
            for (kv, q_block) in query_transform(&q, &attn).into_iter().enumerate() {
                units.push(WorkUnit {
                    unit: units.len(),
                    seq: a.seq,
                    head: kv,
                    q_block,
                });
            }
        }
        let batch = self.active.len();
        // Time only the decode work (attention fan-out, model advance,
        // append) — not admission/prefill or the user model's query
        // construction above, so kv_tokens_per_s reports the runtime's own
        // throughput.
        let t0 = Instant::now();
        let mut results = self.pool.run_step(units, &self.store, &self.decoder);

        // Advance every sequence and append its new KV token.
        let mut dequant = FastDequantOps::default();
        for r in &results {
            dequant += r.ops;
        }
        let codec = self.decoder.codec();
        let mut appends = Vec::with_capacity(batch);
        for (a, chunk) in self.active.iter_mut().zip(results.chunks_mut(heads_kv)) {
            // Move the rows out of the owned results — no per-step clone of
            // the attention outputs on the scheduler's hot loop.
            let blocks: Vec<Vec<Vec<f32>>> = chunk
                .iter_mut()
                .map(|r| std::mem::take(&mut r.rows))
                .collect();
            let output = ungroup_outputs(&blocks, &attn);
            let step_kv = a.model.advance(a.step, &output);
            self.streams
                .get_mut(&a.id)
                .expect("stream exists from submit")
                .push(step_kv.token);
            appends.push((a.seq, step_kv));
            a.step += 1;
            a.remaining -= 1;
        }
        {
            let store = self.store_mut();
            for (seq, step_kv) in &appends {
                store
                    .append_step(*seq, &step_kv.k, &step_kv.v, &codec)
                    .expect("reservation covers the generation");
            }
        }
        let wall_s = t0.elapsed().as_secs_f64();

        // Retire finished sequences: seal, evict, recycle pages.
        let done: Vec<(RequestId, SeqId)> = self
            .active
            .iter()
            .filter(|a| a.remaining == 0)
            .map(|a| (a.id, a.seq))
            .collect();
        {
            let store = self.store_mut();
            for (_, seq) in &done {
                store.seal(*seq).expect("active sequence");
                store.evict(*seq);
            }
        }
        for (id, _) in &done {
            self.finished.insert(*id);
        }
        self.active.retain(|a| a.remaining > 0);

        let shape = DecodeShape::new(batch, attn, max_len.max(1)).with_residual(max_res);
        let m = ServeMetrics {
            step: self.step_index,
            batch,
            admitted,
            completed: done.len(),
            kv_tokens,
            wall_s,
            kv_tokens_per_s: if wall_s > 0.0 {
                kv_tokens as f64 / wall_s
            } else {
                0.0
            },
            dequant,
            pool_utilization: self.store.utilization(),
            modeled_step_s: self.decoder.latency(&shape).total_s,
        };
        self.step_index += 1;
        self.metrics.push(m);
        Some(m)
    }

    /// Steps until every submitted request has finished, returning the
    /// aggregate summary.
    pub fn run_to_completion(&mut self) -> ServeSummary {
        let start = self.metrics.len();
        while self.step().is_some() {}
        let run = &self.metrics[start..];
        let kv_tokens: u64 = run.iter().map(|m| m.kv_tokens as u64).sum();
        let wall_s: f64 = run.iter().map(|m| m.wall_s).sum();
        let mut dequant = FastDequantOps::default();
        for m in run {
            dequant += m.dequant;
        }
        ServeSummary {
            steps: run.len(),
            completed: run.iter().map(|m| m.completed).sum(),
            kv_tokens,
            wall_s,
            kv_tokens_per_s: if wall_s > 0.0 {
                kv_tokens as f64 / wall_s
            } else {
                0.0
            },
            dequant,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{replay_contiguous, SynthSequence};
    use bd_core::AttentionConfig;
    use bd_gpu_sim::GpuArch;
    use bd_kvcache::QuantScheme;

    fn decoder(attn: AttentionConfig) -> BitDecoder {
        BitDecoder::builder(GpuArch::rtx4090())
            .attention(attn)
            .scheme(QuantScheme::kc4())
            .paged(true)
            .build()
    }

    #[test]
    fn batched_streams_match_contiguous_replay_bitwise() {
        let attn = AttentionConfig::gqa(4, 2, 16);
        let dec = decoder(attn);
        let mut session = ServeSession::new(dec.clone(), ServeConfig::new(512, 32, 2, 8));
        let ids: Vec<RequestId> = (0..4)
            .map(|i| {
                session
                    .submit(Box::new(SynthSequence::new(
                        attn,
                        i,
                        100 + 40 * i as usize,
                        4,
                    )))
                    .unwrap()
            })
            .collect();
        let summary = session.run_to_completion();
        assert_eq!(summary.completed, 4);
        for (i, id) in ids.iter().enumerate() {
            let want = replay_contiguous(
                &dec,
                &mut SynthSequence::new(attn, i as u64, 100 + 40 * i, 4),
            );
            assert_eq!(session.stream(*id).unwrap(), want, "request {i}");
            assert!(session.is_finished(*id));
        }
        // All pages recycled after completion.
        assert_eq!(session.store().free_pages(), 512);
    }

    #[test]
    fn admission_respects_pool_and_batch_limits() {
        let attn = AttentionConfig::gqa(2, 1, 16);
        // Pool fits exactly two resident requests (each needs 2 pages).
        let mut session = ServeSession::new(decoder(attn), ServeConfig::new(4, 64, 0, 8));
        for i in 0..5 {
            session
                .submit(Box::new(SynthSequence::new(attn, i, 100, 3)))
                .unwrap();
        }
        let m = session.step().unwrap();
        assert_eq!(m.batch, 2);
        assert_eq!(m.admitted, 2);
        assert_eq!(session.pending(), 3);
        let summary = session.run_to_completion();
        assert_eq!(summary.completed, 5);
        assert!(session.metrics().iter().all(|m| m.batch <= 2));

        // max_batch caps admission even with free pages.
        let mut capped = ServeSession::new(decoder(attn), ServeConfig::new(64, 64, 0, 3));
        for i in 0..5 {
            capped
                .submit(Box::new(SynthSequence::new(attn, i, 10, 2)))
                .unwrap();
        }
        assert_eq!(capped.step().unwrap().batch, 3);
    }

    #[test]
    fn oversized_requests_are_rejected_at_submit() {
        let attn = AttentionConfig::gqa(2, 1, 16);
        let mut session = ServeSession::new(decoder(attn), ServeConfig::new(4, 64, 0, 8));
        let err = session
            .submit(Box::new(SynthSequence::new(attn, 0, 64 * 5, 1)))
            .unwrap_err();
        assert_eq!(
            err,
            SubmitError::TooLarge {
                needed_pages: 6,
                total_pages: 4
            }
        );
    }

    #[test]
    fn zero_generation_requests_are_rejected_at_submit() {
        let attn = AttentionConfig::gqa(2, 1, 16);
        let mut session = ServeSession::new(decoder(attn), ServeConfig::new(4, 64, 0, 8));
        let err = session
            .submit(Box::new(SynthSequence::new(attn, 0, 10, 0)))
            .unwrap_err();
        assert_eq!(err, SubmitError::EmptyGeneration);
        assert!(session.step().is_none());
    }

    #[test]
    fn metrics_pair_measured_and_modeled_costs() {
        let attn = AttentionConfig::gqa(4, 2, 16);
        let mut session = ServeSession::new(decoder(attn), ServeConfig::new(256, 64, 1, 8));
        session
            .submit(Box::new(SynthSequence::new(attn, 3, 200, 2)))
            .unwrap();
        let m = session.step().unwrap();
        assert_eq!(m.batch, 1);
        assert_eq!(m.kv_tokens, 200);
        assert!(m.kv_tokens_per_s > 0.0);
        assert!(m.modeled_step_s > 0.0);
        assert!(m.dequant.total() > 0, "fused path streams dequant work");
        assert!(m.pool_utilization > 0.0);
        let m2 = session.step().unwrap();
        assert_eq!(m2.kv_tokens, 201);
        assert_eq!(m2.completed, 1);
        assert!(session.step().is_none());
    }
}
